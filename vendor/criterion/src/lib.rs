//! Benchmark harness stand-in with criterion's API shape.
//!
//! Each benchmark runs a short warmup, then up to `sample_size` timed
//! samples (bounded by a wall-clock budget so mission-length benchmarks
//! stay tractable) and prints the median time per iteration together with
//! min, standard deviation, and a median-absolute-deviation noise bound
//! (`1.4826 × MAD`, the robust σ estimate), so run-to-run deltas can be
//! judged against measurement noise instead of eyeballed. There are no
//! HTML reports or cross-run regression storage — just honest wall-clock
//! statistics on stdout.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark; slow benchmarks stop sampling early
/// (but always collect at least 3 samples).
const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

/// Top-level harness handle passed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Robust summary of one benchmark's timed samples, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n = 1).
    pub stddev_ns: f64,
    /// Robust noise bound: `1.4826 × median(|xᵢ − median|)`, the
    /// median-absolute-deviation estimate of σ. Deltas between runs
    /// smaller than a few of these are indistinguishable from noise.
    pub noise_ns: f64,
}

impl SampleStats {
    /// Computes the summary of raw samples (need not be sorted).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> SampleStats {
        assert!(!samples.is_empty(), "stats need at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let stddev = if sorted.len() > 1 {
            (sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / (sorted.len() - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        let mut dev: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
        dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
        SampleStats {
            samples: sorted.len(),
            min_ns: sorted[0],
            median_ns: median,
            stddev_ns: stddev,
            noise_ns: 1.4826 * dev[dev.len() / 2],
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    /// Sample summary, filled by `iter`.
    stats: Option<SampleStats>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, keeping the return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup (and forces lazy setup)
        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        for i in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            samples.push(t.elapsed().as_secs_f64() * 1e9);
            if i >= 2 && started.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
        self.stats = Some(SampleStats::of(&samples));
    }

    /// The statistics of the last [`Bencher::iter`] call, if any.
    pub fn stats(&self) -> Option<SampleStats> {
        self.stats
    }
}

fn scale(ns: f64) -> (f64, &'static str) {
    if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        stats: None,
        sample_size,
    };
    f(&mut b);
    let Some(s) = b.stats else {
        println!("bench {name:<48}  (no samples — closure never called iter)");
        return;
    };
    let (value, unit) = scale(s.median_ns);
    // min/sd/mad share the median's unit so columns compare at a glance.
    let div = s.median_ns / value.max(f64::MIN_POSITIVE);
    println!(
        "bench {name:<48} {value:>10.3} {unit}/iter  \
         (n={}, min {:.3}, sd {:.3}, noise ±{:.3} {unit})",
        s.samples,
        s.min_ns / div,
        s.stddev_ns / div,
        s.noise_ns / div,
    );
}

/// Declares a benchmark group: either `criterion_group!(name, fn, ...)` or
/// the long form with `config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        // 1 warmup + 5 samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn groups_prefix_names_and_override_samples() {
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::from_parameter("p1"), |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 4);
    }

    #[test]
    fn sample_stats_summarize_known_values() {
        // Unsorted on purpose; median of 5 = 3rd smallest.
        let s = SampleStats::of(&[5.0, 1.0, 9.0, 3.0, 7.0]);
        assert_eq!(s.samples, 5);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 5.0);
        // Mean 5, squared deviations 16+4+0+4+16 = 40, /4 → sqrt(10).
        assert!((s.stddev_ns - 10.0f64.sqrt()).abs() < 1e-12);
        // |x−5| sorted: 0,2,2,4,4 → MAD 2 → noise 2.9652.
        assert!((s.noise_ns - 1.4826 * 2.0).abs() < 1e-12);

        let one = SampleStats::of(&[42.0]);
        assert_eq!(one.stddev_ns, 0.0);
        assert_eq!(one.noise_ns, 0.0);
        assert_eq!(one.min_ns, 42.0);
        assert_eq!(one.median_ns, 42.0);
    }

    #[test]
    fn bencher_exposes_stats() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("stats", |b| {
            b.iter(|| 2 + 2);
            let s = b.stats().expect("iter fills stats");
            assert_eq!(s.samples, 4);
            assert!(s.min_ns <= s.median_ns);
            assert!(s.noise_ns >= 0.0);
        });
    }

    #[test]
    fn group_macro_forms_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(simple, target);
        criterion_group! {
            name = long;
            config = Criterion::default().sample_size(3);
            targets = target, target
        }
        simple();
        long();
    }
}
