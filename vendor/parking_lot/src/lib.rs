//! Minimal `parking_lot::Mutex` over `std::sync::Mutex`.
//!
//! Matches the parking_lot API shape the workspace relies on: `lock()`
//! returns the guard directly (no poisoning `Result`). A panic while a lock
//! is held clears the poison flag instead of propagating it, mirroring
//! parking_lot's poison-free semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            self.inner.clear_poison();
            poisoned.into_inner()
        })
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_shared_state() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock unusable after a panicking holder");
    }
}
