//! Minimal `BytesMut`/`Buf`/`BufMut` covering the codec and transport layers.
//!
//! Unlike the real crate there is no refcounted sharing: `BytesMut` is a
//! `Vec<u8>` plus a start offset, so `advance`/`split_to` are O(1) amortized
//! (the consumed prefix is compacted lazily once it dominates the buffer).

use std::ops::{Deref, DerefMut};

/// A growable byte buffer supporting cheap consumption from the front.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.len())
            .finish()
    }
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no bytes are readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact_if_stale();
        self.buf.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Removes all bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Resizes the readable region to `new_len`, filling any new tail
    /// bytes with `value` (transports use this to `read` directly into
    /// the buffer's own tail instead of staging through a scratch chunk).
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(self.start + new_len, value);
    }

    /// Shortens the readable region to `len`; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.buf.truncate(self.start + len);
        }
    }

    /// Splits off and returns the first `at` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(
            at <= self.len(),
            "split_to out of bounds: {at} > {}",
            self.len()
        );
        let head = self.buf[self.start..self.start + at].to_vec();
        self.start += at;
        self.compact_if_stale();
        BytesMut {
            buf: head,
            start: 0,
        }
    }

    /// Drops the consumed prefix once it outweighs the live bytes, keeping
    /// `advance`/`split_to` amortized O(1) without unbounded memory growth.
    fn compact_if_stale(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            buf: src.to_vec(),
            start: 0,
        }
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Number of readable bytes remaining.
    fn remaining(&self) -> usize;

    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian u32 and advances past it.
    fn get_u32_le(&mut self) -> u32;

    /// Reads one byte and advances past it.
    fn get_u8(&mut self) -> u8;
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance out of bounds: {cnt} > {}",
            self.len()
        );
        self.start += cnt;
        self.compact_if_stale();
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.advance(1);
        b
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, n: u32);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, n: u32) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }

    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_round_trips() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEADBEEF);
        b.put_u8(7);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 8);
        assert_eq!(b.get_u32_le(), 0xDEADBEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(&b[..], b"xyz");
    }

    #[test]
    fn split_to_consumes_prefix() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        b.advance(1);
        assert_eq!(&b[..], b"world");
    }

    #[test]
    fn resize_and_truncate_track_the_start_offset() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        b.advance(2); // readable: "cdef"
        b.resize(6, 0);
        assert_eq!(&b[..], b"cdef\0\0");
        b[4] = b'x';
        b.truncate(5);
        assert_eq!(&b[..], b"cdefx");
        b.truncate(99); // no-op
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        for i in 0..10_000u32 {
            b.put_u32_le(i);
        }
        for i in 0..9_000u32 {
            assert_eq!(b.get_u32_le(), i);
        }
        assert_eq!(b.len(), 4000);
        assert_eq!(b.get_u32_le(), 9000);
    }
}
