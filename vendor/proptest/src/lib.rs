//! Property-testing stand-in: the `proptest!` surface backed by plain
//! deterministic random sampling.
//!
//! Differences from real proptest, deliberate for an offline vendor stub:
//!
//! * no shrinking — a failing case reports its sampled inputs verbatim;
//! * the RNG seed is derived from the test name, so runs are reproducible
//!   without a persistence file;
//! * only the strategy combinators this workspace uses are provided
//!   (ranges, tuples, `any`, `prop_map`, `collection::vec`, `bool::ANY`).

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_random {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: ::std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s entire domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: ::std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    use rand::RngExt;

    /// Admissible lengths for a generated collection.
    ///
    /// A concrete type (rather than a generic strategy) so that bare
    /// integer literals in `vec(elem, 1..100)` infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive upper bound.
        end: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy with element strategy `element` and length drawn
    /// from `len` (e.g. `1..100`).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = ::std::primitive::bool;

        fn sample(&self, rng: &mut TestRng) -> ::std::primitive::bool {
            rng.random()
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

pub mod test_runner {
    //! Case-count configuration and the deterministic RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases sampled per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies: deterministic per test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from the test's name (FNV-1a), so every run of a given
        /// test replays the same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::Strategy;
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` path alias used by e.g. `prop::bool::ANY`.
    pub mod prop {
        pub use super::super::{bool, collection};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`] — one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
            for __case in 0..__cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(&::std::format!(
                        "{} = {:?}; ",
                        ::std::stringify!($arg),
                        &$arg
                    ));
                )+
                #[allow(unreachable_code)]
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __result {
                    ::std::panic!(
                        "property `{}` failed on case {}: {}\n  inputs: {}",
                        ::std::stringify!($name),
                        __case,
                        __msg,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a,
                __b
            ));
        }
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a,
                __b
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..10, b in 0u8..4) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(b < 4);
        }

        /// Tuples + prop_map compose.
        #[test]
        fn mapped_tuples(pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..25).contains(&pair));
        }

        /// Vec strategy respects its length range.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0i32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }

        /// `any` and `prop::bool::ANY` produce values.
        #[test]
        fn any_values(x in any::<u64>(), flag in prop::bool::ANY) {
            prop_assert_eq!(x ^ u64::from(flag), x ^ u64::from(flag));
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let caught = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0u8..2) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("inputs"), "message: {msg}");
    }

    #[test]
    fn same_test_name_replays_identically() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        let s = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(s.sample(&mut r1).to_bits(), s.sample(&mut r2).to_bits());
        }
    }
}
