//! Minimal crossbeam facade over std primitives.
//!
//! * [`scope`] — crossbeam-style scoped threads (`spawn` closures receive the
//!   scope for nested spawning) built on `std::thread::scope`, returning
//!   `Err` on worker panic like the real crate.
//! * [`channel`] — `unbounded` MPSC channels over `std::sync::mpsc` (the
//!   workspace never clones receivers, so true MPMC is not required).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle for spawning threads bound to the enclosing [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

// Manual impls: derive would bound them on the lifetimes' variance unhelpfully.
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope so
    /// workers can spawn further workers, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope handle and joins all spawned threads before
/// returning.
///
/// # Errors
///
/// Returns the panic payload if any spawned thread (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    //! Unbounded channels with crossbeam's module layout.

    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving half is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending half is gone and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message back if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once all senders are dropped and the queue
        /// is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scope_reports_worker_panics() {
        let r = scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn channel_delivers_in_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..16 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
