//! Slice sampling helpers (`choose`, `shuffle`).

use crate::{RngCore, RngExt};

/// Random element selection from indexable collections.
pub trait IndexedRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
