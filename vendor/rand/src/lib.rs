//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand`: a deterministic [`rngs::StdRng`]
//! (xoshiro256** seeded through splitmix64), the [`SeedableRng`] / [`RngExt`]
//! traits, and slice helpers ([`seq::IndexedRandom`], [`seq::SliceRandom`]).
//!
//! Determinism is the only contract the simulator needs: the same seed must
//! reproduce the same stream bit-for-bit, forever. Statistical quality is
//! provided by xoshiro256**, which passes BigCrush.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait used as a generic bound (`R: Rng`); methods live on
/// [`RngExt`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type that can be sampled uniformly from its full domain.
pub trait Random: Sized {
    /// Samples one value from all bits / the unit interval.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range a value can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Random>::random_from(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Random>::random_from(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value uniformly over the type's full domain
    /// (unit interval for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.random_range(0..10);
            assert!(n < 10);
            let i: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&i));
            let f: f32 = rng.random_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
