//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! `syn`/`quote` are not available offline, so this macro parses the item
//! declaration directly from the raw `proc_macro::TokenStream`. It supports
//! exactly the shapes this workspace uses — non-generic structs (named,
//! tuple, unit) and non-generic enums (unit, tuple and struct variants) —
//! and produces the same externally-tagged JSON layout real serde would:
//!
//! * named struct   → object of fields
//! * newtype struct → the inner value
//! * tuple struct   → array
//! * unit variant   → `"Variant"`
//! * newtype variant→ `{"Variant": value}`
//! * tuple variant  → `{"Variant": [..]}`
//! * struct variant → `{"Variant": {..}}`
//!
//! `#[serde(...)]` attributes are not supported (the workspace uses none);
//! generics panic with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or an enum variant.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — arity only; types are never needed (trait inference).
    Tuple(usize),
    /// No payload.
    Unit,
}

/// Parsed item: its name plus struct fields or enum variants.
enum Item {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Advances past any `#[...]` attributes (doc comments included).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i < toks.len() && is_punct(&toks[i], '#') {
        i += 1; // '#'
        if i < toks.len()
            && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
        {
            i += 1;
        }
    }
    i
}

/// Advances past `pub` / `pub(crate)` / `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len()
            && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Skips tokens until a top-level comma (tracking `<...>` nesting inside
/// type expressions) and returns the index *after* the comma, or the end.
fn skip_past_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses named-field contents `{ a: T, b: U }`.
fn parse_named_fields(group: &TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_vis(&toks, skip_attrs(&toks, i));
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("mini serde_derive: expected field name, got `{}`", toks[i]);
        };
        names.push(name.to_string());
        i += 1;
        assert!(
            i < toks.len() && is_punct(&toks[i], ':'),
            "mini serde_derive: expected `:` after field `{}`",
            names.last().unwrap()
        );
        i = skip_past_comma(&toks, i + 1);
    }
    names
}

/// Counts fields in tuple contents `(T, U)`.
fn count_tuple_fields(group: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        n += 1;
        i = skip_past_comma(&toks, i);
    }
    n
}

fn parse_variants(group: &TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = group.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "mini serde_derive: expected variant name, got `{}`",
                toks[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    Fields::Tuple(count_tuple_fields(&g.stream()))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    Fields::Named(parse_named_fields(&g.stream()))
                }
                _ => Fields::Unit,
            }
        } else {
            Fields::Unit
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if i < toks.len() && is_punct(&toks[i], '=') {
            i = skip_past_comma(&toks, i + 1);
        } else if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!(
            "mini serde_derive: expected `struct` or `enum`, got `{}`",
            toks[i]
        );
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("mini serde_derive: expected type name, got `{}`", toks[i]);
    };
    let name = name.to_string();
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("mini serde_derive: generic type `{name}` is not supported");
    }
    if is_enum {
        let TokenTree::Group(g) = &toks[i] else {
            panic!("mini serde_derive: expected enum body for `{name}`");
        };
        Item::Enum(name, parse_variants(&g.stream()))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(name, Fields::Named(parse_named_fields(&g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(name, Fields::Tuple(count_tuple_fields(&g.stream())))
            }
            _ => Item::Struct(name, Fields::Unit),
        }
    }
}

// --- Serialize codegen ---------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct(name, fields) => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Named(names) => {
                    out.push_str("    ::serde::Value::Object(::std::vec![\n");
                    for f in names {
                        out.push_str(&format!(
                            "      (::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),\n"
                        ));
                    }
                    out.push_str("    ])\n");
                }
                Fields::Tuple(1) => out.push_str("    ::serde::Serialize::to_value(&self.0)\n"),
                Fields::Tuple(n) => {
                    out.push_str("    ::serde::Value::Array(::std::vec![\n");
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "      ::serde::Serialize::to_value(&self.{idx}),\n"
                        ));
                    }
                    out.push_str("    ])\n");
                }
                Fields::Unit => out.push_str("    ::serde::Value::Null\n"),
            }
            out.push_str("  }\n}\n");
        }
        Item::Enum(name, variants) => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n    match self {{\n"
            ));
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => out.push_str(&format!(
                        "      {name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let payload = if *n == 1 {
                            format!("::serde::Serialize::to_value({})", binds[0])
                        } else {
                            format!(
                                "::serde::Value::Array(::std::vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "      {name}::{v}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let entries = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        out.push_str(&format!(
                            "      {name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(::std::vec![{entries}]))]),\n",
                            fs.join(", ")
                        ));
                    }
                }
            }
            out.push_str("    }\n  }\n}\n");
        }
    }
    out
}

// --- Deserialize codegen -------------------------------------------------

fn gen_named_build(type_path: &str, fields: &[String], source: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{ let __entries = {source}.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", {source}))?;\n"
    ));
    s.push_str(&format!("  ::std::result::Result::Ok({type_path} {{\n"));
    for f in fields {
        s.push_str(&format!(
            "    {f}: ::serde::Deserialize::from_value(::serde::get_field(__entries, \"{f}\"))?,\n"
        ));
    }
    s.push_str("  }) }\n");
    s
}

fn gen_tuple_build(type_path: &str, n: usize, source: &str) -> String {
    if n == 1 {
        return format!(
            "::std::result::Result::Ok({type_path}(::serde::Deserialize::from_value({source})?))\n"
        );
    }
    let mut s = String::new();
    s.push_str(&format!(
        "{{ let __items = {source}.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", {source}))?;\n"
    ));
    s.push_str(&format!(
        "  if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple arity\")); }}\n"
    ));
    s.push_str(&format!("  ::std::result::Result::Ok({type_path}(\n"));
    for idx in 0..n {
        s.push_str(&format!(
            "    ::serde::Deserialize::from_value(&__items[{idx}])?,\n"
        ));
    }
    s.push_str("  )) }\n");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct(name, fields) => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Named(names) => out.push_str(&gen_named_build(name, names, "__v")),
                Fields::Tuple(n) => out.push_str(&gen_tuple_build(name, *n, "__v")),
                Fields::Unit => out.push_str(&format!(
                    "    match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(::serde::Error::expected(\"null\", __v)) }}\n"
                )),
            }
            out.push_str("  }\n}\n");
        }
        Item::Enum(name, variants) => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n  fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n    match __v {{\n"
            ));
            // Unit variants arrive as plain strings.
            out.push_str("      ::serde::Value::String(__s) => match __s.as_str() {\n");
            for (v, fields) in variants {
                if matches!(fields, Fields::Unit) {
                    out.push_str(&format!(
                        "        \"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "        __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n      }},\n"
            ));
            // Payload variants arrive as single-entry objects.
            out.push_str("      ::serde::Value::Object(__entries) if __entries.len() == 1 => {\n");
            out.push_str("        let (__tag, __payload) = &__entries[0];\n");
            out.push_str("        match __tag.as_str() {\n");
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {}
                    Fields::Tuple(n) => {
                        out.push_str(&format!(
                            "          \"{v}\" => {}",
                            gen_tuple_build(&format!("{name}::{v}"), *n, "__payload")
                        ));
                        out.push_str("          ,\n");
                    }
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "          \"{v}\" => {}",
                            gen_named_build(&format!("{name}::{v}"), fs, "__payload")
                        ));
                        out.push_str("          ,\n");
                    }
                }
            }
            out.push_str(&format!(
                "          __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n        }}\n      }}\n"
            ));
            out.push_str(&format!(
                "      __other => ::std::result::Result::Err(::serde::Error::expected(\"enum {name} (string or single-key object)\", __other)),\n"
            ));
            out.push_str("    }\n  }\n}\n");
        }
    }
    out
}

/// Derives `::serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("mini serde_derive produced invalid Serialize impl")
}

/// Derives `::serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("mini serde_derive produced invalid Deserialize impl")
}
