//! JSON text layer over the vendored mini-serde `Value` model.
//!
//! Numbers keep their literal text from parse to print, so values round-trip
//! exactly (floats serialize via Rust's shortest-round-trip `Display`, and
//! re-parsing that text with `f64::from_str` recovers the identical bits).

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt;

/// Parse or serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// `Result` alias matching real serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

// --- Serialization -------------------------------------------------------

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.raw),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value_pretty(v: &Value, out: &mut String, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        _ => write_value(v, out),
    }
}

// --- Parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(Error::new(format!("invalid number at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(Error::new(format!("invalid number at byte {start}")));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(Value::Number(Number::from_raw(raw.to_string())))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain bytes up to the next
                    // quote or backslash in one slice. Multi-byte UTF-8
                    // units are all >= 0x80, so stopping on `"`/`\` never
                    // splits a code point, and validating just the run
                    // keeps large strings O(n) (validating the entire
                    // remaining input per character is quadratic).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char> {
        // self.pos is at the `u`.
        let hex4 = |p: &mut Self| -> Result<u32> {
            p.pos += 1; // past 'u' (or the second escape's 'u')
            let hex = p
                .bytes
                .get(p.pos..p.pos + 4)
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let s = std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect `\uXXXX` low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| Error::new("bad surrogate pair"));
                    }
                }
            }
            return Err(Error::new("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| Error::new("bad \\u escape"))
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -2.5e-300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "mismatch for {s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, -2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,-2,3]");
        assert_eq!(from_str::<Vec<i64>>(&s).unwrap(), v);

        let opt: Option<Vec<f32>> = Some(vec![1.5, 2.25]);
        let s = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<Vec<f32>>>(&s).unwrap(), opt);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{{{{").is_err());
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<f64>("1.e5").is_err());
    }

    #[test]
    fn pretty_prints_nested() {
        let v = vec![vec![1u8], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        // Regression: the string parser used to re-validate the entire
        // remaining input per character (quadratic), which made multi-MB
        // payloads — e.g. campaign results served over the wire — take
        // effectively forever. Mixed ASCII / multi-byte / escape content
        // keeps the run-splitting on `"` and `\` honest.
        let chunk = "avfi é😀 \\\"quoted\\\" \\n ";
        let body = chunk.repeat(200_000);
        let parsed: String = from_str(&format!("\"{body}\"")).unwrap();
        assert_eq!(parsed.len(), 200_000 * "avfi é😀 \"quoted\" \n ".len());
        assert!(parsed.starts_with("avfi é😀 \"quoted\" \n "));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }
}
