//! Offline stand-in for `serde`.
//!
//! The real serde is format-agnostic; the only format this workspace ever
//! uses is JSON (through the vendored `serde_json`). That lets the model
//! collapse to one intermediate tree, [`Value`], with two traits:
//!
//! * [`Serialize`] — convert `self` into a [`Value`];
//! * [`Deserialize`] — rebuild `Self` from a [`Value`].
//!
//! Numbers keep their JSON source text ([`Number::raw`]) so every integer
//! width and both float widths round-trip exactly: the text is produced by
//! Rust's shortest-round-trip float formatting and re-parsed with the
//! target type's own parser.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the vendored
//! `serde_derive` proc-macro (enabled by the `derive` feature), which emits
//! impls of these traits with the same external JSON shape real serde
//! would produce (objects for structs, externally tagged enums).

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON numeric literal, kept as source text for lossless round-trips.
#[derive(Debug, Clone, PartialEq)]
pub struct Number {
    /// The literal text, e.g. `-12`, `0.5`, `1e-9`.
    pub raw: String,
}

impl Number {
    /// Wraps literal text. The caller guarantees it is a valid JSON number.
    pub fn from_raw(raw: String) -> Self {
        Number { raw }
    }

    /// Parses the literal as the requested numeric type.
    pub fn parse<T: std::str::FromStr>(&self) -> Result<T, Error> {
        self.raw
            .parse::<T>()
            .map_err(|_| Error::custom(format!("invalid number literal `{}`", self.raw)))
    }
}

/// The JSON-shaped intermediate tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// derive emits fields in declaration order and lookup is linear, which is
/// faster than hashing for the small structs this workspace serializes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a field in an object's entry list; missing fields read as
/// `null` so `Option` fields deserialize leniently.
pub fn get_field<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X, got Y" convenience constructor.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_raw(self.to_string()))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n.parse(),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    // `{}` prints the shortest text that re-parses to the
                    // identical bit pattern.
                    Value::Number(Number::from_raw(self.to_string()))
                } else {
                    // JSON has no NaN/Inf; real serde_json writes null too.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n.parse(),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", other)),
        }
    }
}

// --- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        Ok(parsed.try_into().expect("length checked above"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::from_value(v)?))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K: Serialize + fmt::Display + std::cmp::Ord, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        entries
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_values_round_trip_exactly() {
        for x in [0.1f64, -1e-12, 1.0 / 3.0, f64::MAX, 5.0e-324] {
            let v = x.to_value();
            assert_eq!(f64::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
        for x in [0.1f32, 1.0 / 3.0, f32::MAX] {
            let v = x.to_value();
            assert_eq!(f32::from_value(&v).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn nan_becomes_null_and_back() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn option_round_trip() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&3u32.to_value()).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn missing_field_reads_as_null() {
        let entries = vec![("a".to_string(), 1u8.to_value())];
        assert_eq!(get_field(&entries, "b"), &Value::Null);
    }
}
