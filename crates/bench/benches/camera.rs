//! Camera ground-pass benchmark: the analytic span rasterizer (default)
//! against the per-pixel reference renderer it is proven bit-identical to
//! (see `crates/sim/tests/camera_differential.rs` and the golden corpus).
//! The `reference` numbers are the pre-span per-pixel cost; the `span`
//! numbers are what campaigns actually pay. Results feed `BENCH_pr4.json`
//! and the README performance table.

use avfi_sim::map::town::{TownConfig, TownGenerator};
use avfi_sim::map::LaneKind;
use avfi_sim::math::{Pose, Vec2};
use avfi_sim::sensors::{Billboard, Camera, CameraConfig, Image, RenderScene, Rgb};
use avfi_sim::weather::Weather;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A mid-block driving pose on the first drive lane of a 3×3 town: roads,
/// sidewalks, lane marks, an intersection and buildings are all in frame.
fn driving_pose(map: &avfi_sim::map::Map) -> Pose {
    let lane = map
        .lanes()
        .iter()
        .find(|l| l.kind() == LaneKind::Drive)
        .unwrap();
    Pose::new(lane.point_at(10.0), lane.heading_at(10.0))
}

/// A plausible actor layout: a few vehicles/pedestrians ahead plus an
/// elevated traffic-light head, matching what `World` hands the camera.
fn billboards(around: Vec2) -> Vec<Billboard> {
    let sprite = |dx: f64, dy: f64, radius: f64, base: f64, top: f64, color: Rgb| Billboard {
        position: Vec2::new(around.x + dx, around.y + dy),
        radius,
        base,
        top,
        color,
    };
    vec![
        sprite(12.0, 0.5, 0.9, 0.0, 1.5, [0.8, 0.1, 0.1]),
        sprite(25.0, -1.5, 0.9, 0.0, 1.5, [0.1, 0.1, 0.8]),
        sprite(18.0, 4.0, 0.3, 0.0, 1.8, [0.9, 0.7, 0.2]),
        sprite(8.0, -4.0, 0.3, 0.0, 1.8, [0.2, 0.7, 0.3]),
        sprite(30.0, 6.0, 0.4, 4.5, 5.5, [0.1, 0.9, 0.1]),
    ]
}

fn bench_camera_render(c: &mut Criterion) {
    let map = TownGenerator::new(TownConfig::grid(3, 3)).generate();
    let pose = driving_pose(&map);
    let sprites = billboards(pose.position);
    let camera = Camera::new(CameraConfig::default());

    let mut group = c.benchmark_group("camera_render");
    let cases: Vec<(&str, Weather, &[Billboard])> = vec![
        ("clear_bare", Weather::ClearNoon, &[]),
        ("clear_billboards", Weather::ClearNoon, &sprites),
        ("fog_bare", Weather::Fog, &[]),
        ("fog_billboards", Weather::Fog, &sprites),
    ];
    for (name, weather, bbs) in cases {
        let scene = RenderScene {
            map: &map,
            weather,
            billboards: bbs,
        };
        let mut img = Image::new(camera.config().width, camera.config().height);
        group.bench_function(format!("span/{name}"), |b| {
            b.iter(|| camera.render_into(&scene, black_box(pose), &mut img))
        });
        group.bench_function(format!("reference/{name}"), |b| {
            b.iter(|| camera.render_into_reference(&scene, black_box(pose), &mut img))
        });
    }
    group.finish();
}

criterion_group! {
    name = camera;
    config = Criterion::default().sample_size(200);
    targets = bench_camera_render
}
criterion_main!(camera);
