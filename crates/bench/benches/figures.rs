//! Criterion coverage for the paper's figures: each benchmark runs one
//! short fault-injected mission per configuration, so `cargo bench`
//! exercises every figure's code path end-to-end and reports the
//! wall-clock cost of a mission under each injector.
//!
//! The statistically meaningful reproductions (longer missions, many
//! seeds) are the `fig*` binaries; see EXPERIMENTS.md.

use avfi_bench::experiments::{neural_agent, FIG4_DELAYS};
use avfi_core::campaign::{run_single, AgentSpec};
use avfi_core::fault::input::{ImageFault, InputFault};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_sim::scenario::{Scenario, TownSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scenario() -> Scenario {
    let mut town = TownSpec::grid(3, 3);
    town.signalized = false;
    Scenario::builder(town)
        .seed(311)
        .npc_vehicles(2)
        .pedestrians(2)
        .time_budget(20.0)
        .min_route_length(100.0)
        .build()
}

fn mission(agent: &AgentSpec, fault: &FaultSpec, run: usize) -> usize {
    let result = run_single(&bench_scenario(), 0, run, fault, agent);
    result.violations.len()
}

/// Figure 2/3: one mission per input fault injector.
fn bench_fig2_fig3(c: &mut Criterion) {
    let agent = neural_agent();
    let mut group = c.benchmark_group("figure2_3_input_faults");
    group.sample_size(10);
    let mut specs = vec![FaultSpec::None];
    specs.extend(
        ImageFault::paper_suite()
            .into_iter()
            .map(|m| FaultSpec::Input(InputFault::always(m))),
    );
    for spec in specs {
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            let mut run = 0;
            b.iter(|| {
                run += 1;
                black_box(mission(&agent, &spec, run))
            })
        });
    }
    group.finish();
}

/// Figure 4: one mission per output delay.
fn bench_fig4(c: &mut Criterion) {
    let agent = neural_agent();
    let mut group = c.benchmark_group("figure4_output_delay");
    group.sample_size(10);
    for &frames in &FIG4_DELAYS {
        let spec = if frames == 0 {
            FaultSpec::None
        } else {
            FaultSpec::Timing(TimingFault::OutputDelay { frames })
        };
        group.bench_function(
            BenchmarkId::from_parameter(format!("{frames}frames")),
            |b| {
                let mut run = 0;
                b.iter(|| {
                    run += 1;
                    black_box(mission(&agent, &spec, run))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(figures, bench_fig2_fig3, bench_fig4);
criterion_main!(figures);
