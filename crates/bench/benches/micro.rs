//! Micro-benchmarks for the AVFI substrates: physics, rendering, NN
//! inference/training, codec, world stepping, and the fault-injection
//! interception overhead (a design-choice ablation from DESIGN.md).

use avfi_agent::features::image_to_tensor;
use avfi_agent::IlNetwork;
use avfi_bench::experiments::trained_weights;
use avfi_core::fault::input::{ImageFault, InputFault};
use avfi_core::fault::FaultSpec;
use avfi_core::harness::AvDriver;
use avfi_net::codec;
use avfi_net::message::Message;
use avfi_sim::map::route::{plan_route, Command};
use avfi_sim::map::town::{TownConfig, TownGenerator};
use avfi_sim::map::LaneKind;
use avfi_sim::math::{Pose, Vec2};
use avfi_sim::physics::{BicycleModel, VehicleControl, VehicleParams, VehicleState};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::sensors::{Camera, CameraConfig, Lidar, LidarConfig, RenderScene};
use avfi_sim::weather::Weather;
use avfi_sim::world::World;
use avfi_sim::FRAME_DT;
use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_physics(c: &mut Criterion) {
    let model = BicycleModel::new(VehicleParams::default());
    let state = VehicleState {
        pose: Pose::new(Vec2::new(1.0, 2.0), 0.3),
        speed: 8.0,
        steer_angle: 0.0,
    };
    let control = VehicleControl::new(0.2, 0.6, 0.0);
    c.bench_function("physics/bicycle_step", |b| {
        b.iter(|| black_box(model.step(black_box(state), control, 1.0, FRAME_DT)))
    });
}

fn bench_map_queries(c: &mut Criterion) {
    let map = TownGenerator::new(TownConfig::grid(4, 4)).generate();
    let p = Vec2::new(40.0, 1.75);
    c.bench_function("map/material_at", |b| {
        b.iter(|| black_box(map.material_at(black_box(p))))
    });
    c.bench_function("map/nearest_lane", |b| {
        b.iter(|| black_box(map.nearest_lane(black_box(p), 8.0)))
    });
    let start = map
        .lanes()
        .iter()
        .find(|l| l.kind() == LaneKind::Drive)
        .unwrap()
        .id();
    let goal = map
        .lanes()
        .iter()
        .rev()
        .find(|l| l.kind() == LaneKind::Drive)
        .unwrap()
        .id();
    c.bench_function("map/plan_route_4x4", |b| {
        b.iter(|| black_box(plan_route(&map, start, 0.0, goal)))
    });
}

fn bench_sensors(c: &mut Criterion) {
    let map = TownGenerator::new(TownConfig::grid(3, 3)).generate();
    let lane = map
        .lanes()
        .iter()
        .find(|l| l.kind() == LaneKind::Drive)
        .unwrap();
    let pose = Pose::new(lane.point_at(10.0), lane.heading_at(10.0));
    let camera = Camera::new(CameraConfig::default());
    let scene = RenderScene {
        map: &map,
        weather: Weather::ClearNoon,
        billboards: &[],
    };
    c.bench_function("sensors/camera_render_64x48", |b| {
        b.iter(|| black_box(camera.render(&scene, pose)))
    });
    let mut reused = camera.render(&scene, pose);
    c.bench_function("sensors/camera_render_into_64x48", |b| {
        b.iter(|| camera.render_into(&scene, pose, black_box(&mut reused)))
    });
    let lidar = Lidar::new(LidarConfig::default());
    let shapes: Vec<_> = map
        .buildings()
        .iter()
        .take(16)
        .map(|a| avfi_sim::physics::CollisionShape::Fixed(*a))
        .collect();
    c.bench_function("sensors/lidar_scan_36beams", |b| {
        b.iter(|| black_box(lidar.scan(pose, shapes.iter())))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut net = IlNetwork::from_weights(&trained_weights()).expect("weights");
    let map = TownGenerator::new(TownConfig::grid(2, 2)).generate();
    let lane = map
        .lanes()
        .iter()
        .find(|l| l.kind() == LaneKind::Drive)
        .unwrap();
    let camera = Camera::new(CameraConfig::default());
    let scene = RenderScene {
        map: &map,
        weather: Weather::ClearNoon,
        billboards: &[],
    };
    let img = camera.render(
        &scene,
        Pose::new(lane.point_at(10.0), lane.heading_at(10.0)),
    );
    let tensor = image_to_tensor(&img);
    c.bench_function("nn/ilnet_forward", |b| {
        b.iter(|| black_box(net.predict(black_box(&tensor), 0.5, Command::Follow)))
    });
    c.bench_function("nn/ilnet_train_step", |b| {
        b.iter(|| {
            black_box(net.loss_backward(black_box(&tensor), 0.5, Command::Follow, &[0.1, 0.4, 0.0]))
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let control = Message::Control {
        frame: 42,
        control: VehicleControl::new(0.1, 0.8, 0.0),
    };
    c.bench_function("codec/control_roundtrip", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            codec::encode(black_box(&control), &mut buf).unwrap();
            black_box(codec::decode(&mut buf).unwrap())
        })
    });
    // Full observation frame (the expensive message).
    let scenario = Scenario::builder(TownSpec::grid(2, 2))
        .seed(1)
        .npc_vehicles(0)
        .pedestrians(0)
        .build();
    let mut world = World::from_scenario(&scenario);
    let obs = Message::Observation(Box::new(world.observe()));
    c.bench_function("codec/observation_roundtrip", |b| {
        b.iter(|| {
            let mut buf = BytesMut::new();
            codec::encode(black_box(&obs), &mut buf).unwrap();
            black_box(codec::decode(&mut buf).unwrap())
        })
    });
}

/// The closed-loop frame pipeline end-to-end (expert agent, 2×2 town):
/// the loop `run_single` executes thousands of times per campaign. The
/// `frame_fps` bin reports the same loop as frames/sec for BENCH_*.json.
fn bench_full_loop(c: &mut Criterion) {
    let scenario = Scenario::builder(TownSpec::grid(2, 2))
        .seed(5)
        .npc_vehicles(2)
        .pedestrians(2)
        .time_budget(1e9)
        .build();
    let mut world = World::from_scenario(&scenario);
    let mut driver = AvDriver::expert(FaultSpec::None, 11);
    let mut obs = world.observe();
    c.bench_function("loop/observe_drive_step", |b| {
        b.iter(|| {
            let control = driver.drive_frame(black_box(&obs), &world);
            black_box(world.step(control));
            world.observe_into(&mut obs);
        })
    });
}

fn bench_world(c: &mut Criterion) {
    let scenario = Scenario::builder(TownSpec::grid(3, 3))
        .seed(2)
        .npc_vehicles(4)
        .pedestrians(4)
        .time_budget(1e9)
        .build();
    let mut world = World::from_scenario(&scenario);
    c.bench_function("world/step_with_traffic", |b| {
        b.iter(|| black_box(world.step(VehicleControl::new(0.0, 0.4, 0.0))))
    });
    c.bench_function("world/observe_full_sensor_frame", |b| {
        b.iter(|| black_box(world.observe()))
    });
}

/// Ablation: what does the fault-injection interception layer cost per
/// frame, with no fault, with a cheap fault, and with an expensive one?
fn bench_injection_overhead(c: &mut Criterion) {
    let scenario = Scenario::builder(TownSpec::grid(2, 2))
        .seed(3)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(1e9)
        .build();
    let mut world = World::from_scenario(&scenario);
    let obs = world.observe();
    let mut group = c.benchmark_group("injection_overhead");
    let cases: Vec<(&str, FaultSpec)> = vec![
        ("none", FaultSpec::None),
        (
            "gaussian",
            FaultSpec::Input(InputFault::always(ImageFault::gaussian(0.08))),
        ),
        (
            "solid_occ",
            FaultSpec::Input(InputFault::always(ImageFault::solid_occlusion(0.3))),
        ),
    ];
    for (name, spec) in cases {
        let mut driver = AvDriver::expert(spec, 7);
        group.bench_function(name, |b| {
            b.iter(|| black_box(driver.drive_frame(black_box(&obs), &world)))
        });
    }
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(30);
    targets = bench_physics, bench_map_queries, bench_sensors, bench_nn,
              bench_codec, bench_full_loop, bench_world, bench_injection_overhead
}
criterion_main!(micro);
