//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * camera resolution vs render cost (the perception-budget knob),
//! * in-process vs TCP transport per protocol cycle,
//! * expert vs neural controller per decision,
//! * town size vs map generation and route planning cost.

use avfi_agent::controller::{Driver, DriverInput, NeuralDriver};
use avfi_agent::ExpertDriver;
use avfi_bench::experiments::trained_weights;
use avfi_net::message::Message;
use avfi_net::transport::{InProcTransport, TcpTransport, Transport};
use avfi_sim::map::town::{TownConfig, TownGenerator};
use avfi_sim::map::LaneKind;
use avfi_sim::math::Pose;
use avfi_sim::physics::VehicleControl;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::sensors::{Camera, CameraConfig, RenderScene};
use avfi_sim::weather::Weather;
use avfi_sim::world::World;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::net::TcpListener;
use std::thread;

/// Camera resolution sweep: render cost scales with pixel count; the IL
/// agent uses 64×48 downsampled to 32×24.
fn bench_camera_resolutions(c: &mut Criterion) {
    let map = TownGenerator::new(TownConfig::grid(3, 3)).generate();
    let lane = map
        .lanes()
        .iter()
        .find(|l| l.kind() == LaneKind::Drive)
        .unwrap();
    let pose = Pose::new(lane.point_at(10.0), lane.heading_at(10.0));
    let scene = RenderScene {
        map: &map,
        weather: Weather::ClearNoon,
        billboards: &[],
    };
    let mut group = c.benchmark_group("ablation/camera_resolution");
    for (w, h) in [(32usize, 24usize), (64, 48), (128, 96), (256, 192)] {
        let camera = Camera::new(CameraConfig {
            width: w,
            height: h,
            ..CameraConfig::default()
        });
        group.bench_function(BenchmarkId::from_parameter(format!("{w}x{h}")), |b| {
            b.iter(|| black_box(camera.render(&scene, pose)))
        });
    }
    group.finish();
}

/// Transport cost per lockstep cycle (send control + receive echo).
fn bench_transport(c: &mut Criterion) {
    let msg = Message::Control {
        frame: 1,
        control: VehicleControl::new(0.1, 0.5, 0.0),
    };
    let mut group = c.benchmark_group("ablation/transport_cycle");

    // In-process channel pair with an echo thread.
    let (mut a, mut b) = InProcTransport::pair();
    let echo_msg = msg.clone();
    let _echo = thread::spawn(move || {
        while let Ok(m) = b.recv() {
            if b.send(m).is_err() {
                break;
            }
        }
        drop(echo_msg);
    });
    group.bench_function("inproc", |bch| {
        bch.iter(|| {
            a.send(msg.clone()).unwrap();
            black_box(a.recv().unwrap())
        })
    });

    // TCP loopback with an echo thread.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let _tcp_echo = thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream).unwrap();
        while let Ok(m) = t.recv() {
            if t.send(m).is_err() {
                break;
            }
        }
    });
    let mut tcp = TcpTransport::connect(&addr.to_string()).unwrap();
    group.bench_function("tcp_loopback", |bch| {
        bch.iter(|| {
            tcp.send(msg.clone()).unwrap();
            black_box(tcp.recv().unwrap())
        })
    });
    group.finish();
}

/// Controller decision cost: oracle rules vs CNN inference.
fn bench_controllers(c: &mut Criterion) {
    let mut town = TownSpec::grid(3, 3);
    town.signalized = false;
    let scenario = Scenario::builder(town)
        .seed(4)
        .npc_vehicles(3)
        .pedestrians(3)
        .build();
    let mut world = World::from_scenario(&scenario);
    let obs = world.observe();
    let mut group = c.benchmark_group("ablation/controller_decision");
    let mut expert = ExpertDriver::new();
    group.bench_function("expert", |b| {
        b.iter(|| black_box(expert.drive(&DriverInput::clean(&obs, &world))))
    });
    let mut neural = NeuralDriver::new(
        avfi_agent::IlNetwork::from_weights(&trained_weights()).expect("weights"),
    );
    group.bench_function("il_cnn", |b| {
        b.iter(|| black_box(neural.drive(&DriverInput::clean(&obs, &world))))
    });
    group.finish();
}

/// Town size sweep: map generation cost.
fn bench_town_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/town_generation");
    group.sample_size(20);
    for n in [2usize, 4, 6, 8] {
        group.bench_function(BenchmarkId::from_parameter(format!("{n}x{n}")), |b| {
            b.iter(|| black_box(TownGenerator::new(TownConfig::grid(n, n)).generate()))
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(30);
    targets = bench_camera_resolutions, bench_transport, bench_controllers,
              bench_town_generation
}
criterion_main!(ablation);
