//! Extension D: hardware fault sweep on commands and sensor scalars.
//!
//! §II: "AVFI injects hardware faults by injecting single-bit,
//! multiple-bit, and stuck-at faults \[…\]. For example, AVFI can
//! intercept and corrupt a control command from the IL-CNN and then
//! forward it to the server."
//!
//! Usage: `cargo run --release -p avfi-bench --bin ext_d_hw_faults
//! [--quick] [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox] [--shrink DIR]`

use avfi_bench::experiments::{
    export_json, neural_agent, run_study, shrink_after_study, ExecOptions, Scale,
};
use avfi_core::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
use avfi_core::fault::FaultSpec;
use avfi_core::trigger::Trigger;
use avfi_core::{metrics, report, stats};

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[ext-d] scale = {scale:?}, exec = {opts:?}");
    let mut specs = vec![FaultSpec::None];
    // Transient sign-bit flips on each command, 10% of frames.
    for target in [
        HardwareTarget::ControlSteer,
        HardwareTarget::ControlThrottle,
        HardwareTarget::ControlBrake,
    ] {
        specs.push(FaultSpec::Hardware(HardwareFault {
            target,
            model: BitFaultModel::SingleBitFlip { bit: 63 },
            trigger: Trigger::Bernoulli { p: 0.1 },
        }));
    }
    // Permanent stuck-at faults.
    specs.push(FaultSpec::Hardware(HardwareFault::always(
        HardwareTarget::ControlSteer,
        BitFaultModel::StuckAt { value: 0.4 },
    )));
    specs.push(FaultSpec::Hardware(HardwareFault::always(
        HardwareTarget::SensorSpeed,
        BitFaultModel::StuckAt { value: 0.0 },
    )));
    // Multi-bit exponent corruption on throttle, intermittent.
    specs.push(FaultSpec::Hardware(HardwareFault {
        target: HardwareTarget::ControlThrottle,
        model: BitFaultModel::MultiBitFlip { bits: vec![62, 61] },
        trigger: Trigger::Bernoulli { p: 0.05 },
    }));
    let results = run_study("hw-faults", neural_agent(), specs, scale, &opts);
    let mut table = report::Table::new(vec![
        "Hardware Fault",
        "MSR (%)",
        "median VPK",
        "mean VPK",
        "aggregate APK",
    ]);
    for result in &results {
        let vpk = metrics::vpk_distribution(result.runs());
        let s = stats::Summary::of(&vpk);
        table.row(vec![
            result.fault.clone(),
            format!("{:.1}", metrics::mission_success_rate(result.runs())),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
            format!("{:.2}", metrics::aggregate_apk(result.runs())),
        ]);
    }
    println!(
        "Extension D — Hardware faults on commands and sensor scalars\n\n{}",
        table.render()
    );
    export_json("ext_d_hw_faults", &results);
    shrink_after_study(&opts);
}
