//! Extension A: Accidents per KM (APK) under the input fault injectors.
//!
//! The paper defines APK in §II ("collisions with pedestrians/cars/etc.
//! per kilometer driven") but does not plot it; this harness tabulates it
//! for the same campaigns as Figures 2/3.
//!
//! Usage: `cargo run --release -p avfi-bench --bin ext_a_apk [--quick]
//! [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox] [--shrink DIR]`

use avfi_bench::experiments::{
    export_json, input_fault_study, shrink_after_study, ExecOptions, Scale,
};
use avfi_core::{metrics, report, stats};

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[ext-a] scale = {scale:?}, exec = {opts:?}");
    let results = input_fault_study(scale, &opts);
    let mut table = report::Table::new(vec![
        "Input Fault Injector",
        "aggregate APK",
        "median APK",
        "max APK",
        "collisions",
    ]);
    for r in results.iter() {
        let d = metrics::apk_distribution(r.runs());
        let s = stats::Summary::of(&d);
        let collisions: usize = r
            .runs()
            .iter()
            .flat_map(|run| &run.violations)
            .filter(|v| v.kind.is_accident())
            .count();
        table.row(vec![
            r.fault.clone(),
            format!("{:.2}", metrics::aggregate_apk(r.runs())),
            format!("{:.2}", s.median),
            format!("{:.2}", s.max),
            collisions.to_string(),
        ]);
    }
    println!(
        "Extension A — Accidents per km under input fault injectors\n\n{}",
        table.render()
    );
    export_json("ext_a_apk", &results);
    shrink_after_study(&opts);
}
