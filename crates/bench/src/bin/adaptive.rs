//! Adaptive campaign: deterministic Bayesian fault-space search.
//!
//! Replaces the uniform fault grid with a Thompson-sampling planner: a
//! Beta-Bernoulli posterior per (scenario × channel × magnitude × onset)
//! arm, batches proposed where failure probability concentrates, a fixed
//! total-run budget instead of exhaustive sweeps. The emitted trajectory
//! JSON (per-batch arms, outcomes, posterior summaries, final report) is
//! byte-identical for any `--workers` count; captured failure traces go
//! to `--trace DIR` in the standard `run-{i:06}.avtr` layout, so the
//! `triage` and `shrink` tools consume them directly.
//!
//! Usage: `cargo run --release -p avfi-bench --bin adaptive -- [--quick]
//! [--budget N] [--batch N] [--seed S] [--workers N] [--trace DIR]
//! [--out FILE]`
//!
//! Without `--out`, the trajectory lands in `results/adaptive.json`
//! (honoring `AVFI_RESULTS_DIR`).

use avfi_bench::experiments::{
    adaptive_defaults, adaptive_space, export_trajectory, render_adaptive, run_adaptive_study,
    ExecOptions, Scale,
};
use avfi_trace::write_trace_file;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    let mut config = adaptive_defaults(scale);
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    config.budget = n;
                }
            }
            "--batch" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    config.batch = n;
                }
            }
            "--seed" => {
                if let Some(s) = args.next().and_then(|v| v.parse().ok()) {
                    config.seed = s;
                }
            }
            "--out" => out = args.next().map(PathBuf::from),
            _ => {}
        }
    }
    if config.budget == 0 || config.batch == 0 {
        eprintln!("usage: adaptive [--quick] [--budget N] [--batch N] [--seed S] [--workers N] [--trace DIR] [--out FILE]");
        return ExitCode::from(2);
    }

    let space = adaptive_space(scale);
    eprintln!(
        "[adaptive] scale = {scale:?}, config = {config:?}, lattice = {} arms",
        space.arms().len()
    );
    let outcome = run_adaptive_study(&space, config, &opts);

    println!("{}", render_adaptive(&outcome.trajectory));

    if let Some(dir) = &opts.trace {
        match std::fs::create_dir_all(dir) {
            Ok(()) => {
                let mut written = 0usize;
                for (pull_index, trace) in &outcome.traces {
                    match write_trace_file(dir, *pull_index, trace) {
                        Ok(_) => written += 1,
                        Err(e) => eprintln!("[adaptive] trace write failed: {e}"),
                    }
                }
                eprintln!(
                    "[adaptive] {written} failure trace(s) → {} (triage/shrink-ready)",
                    dir.display()
                );
            }
            Err(e) => eprintln!("[adaptive] cannot create {}: {e}", dir.display()),
        }
    }

    match out {
        Some(path) => {
            let json =
                serde_json::to_string_pretty(&outcome.trajectory).expect("trajectory serializes");
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("[adaptive] cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("[adaptive] wrote {}", path.display());
        }
        None => export_trajectory("adaptive", &outcome.trajectory),
    }
    ExitCode::SUCCESS
}
