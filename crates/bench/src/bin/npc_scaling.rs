//! NPC population scaling: frame time vs town density, compat stepping
//! vs event-driven scheduling.
//!
//! Two modes:
//!
//! * **Bench** (default): sweeps the traffic population from today's
//!   default (6 NPCs + 6 pedestrians) up to 20× at `decision_horizon` 1
//!   (compat: every agent decides every tick) and 8 (event mode:
//!   cruising/walking agents sleep and integrate analytically), measuring
//!   mean wall-clock frame time of the full `step + observe` loop. Emits
//!   one JSON record on stdout — the artifact stored as `BENCH_pr7.json`
//!   at the repo root. The budget line is the paper's 15 FPS frame
//!   (66.7 ms); the gate is ≥10× the default NPC count inside it.
//! * **Campaign** (`--quick`): runs a deterministic high-density campaign
//!   (60 NPCs + 60 pedestrians, event scheduling) through the engine and
//!   exports `npc_scaling.json` via the standard results path — the
//!   smoke `density` tier golden-diffs that file and so pins the
//!   event-mode trajectory bit-for-bit.
//!
//! Usage: `cargo run --release -p avfi-bench --bin npc_scaling
//! [--quick] [--workers N] [--frames N]`

use avfi_bench::experiments::{export_json, ExecOptions};
use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::fault::FaultSpec;
use avfi_core::WorkPlan;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::world::World;
use avfi_sim::VehicleControl;
use std::time::Instant;

/// The paper's frame budget: 15 FPS.
const FRAME_BUDGET_MS: f64 = 1000.0 / 15.0;
const WARMUP_FRAMES: u64 = 30;

fn dense_scenario(seed: u64, npcs: usize, peds: usize, horizon: u32) -> Scenario {
    let mut town = TownSpec::grid(4, 4);
    town.signalized = false;
    Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(npcs)
        .pedestrians(peds)
        .pedestrian_cross_rate(0.008)
        .decision_horizon(horizon)
        .time_budget(1e9)
        .min_route_length(150.0)
        .build()
}

/// Mean frame milliseconds of the full `step + observe` loop (sensors
/// included — camera rasterization dominates at every population) and of
/// `step` alone — the traffic/actor layer the event scheduler and the
/// spatial index actually optimize.
fn measure(scenario: &Scenario, frames: u64) -> (f64, f64, usize, usize) {
    let mut world = World::from_scenario(scenario);
    let mut obs = world.observe();
    let spawned = (world.npcs().len(), world.pedestrians().len());
    for _ in 0..WARMUP_FRAMES {
        world.step(VehicleControl::coast());
        world.observe_into(&mut obs);
    }
    let start = Instant::now();
    for _ in 0..frames {
        world.step(VehicleControl::coast());
        world.observe_into(&mut obs);
    }
    let full_ms = start.elapsed().as_secs_f64() * 1000.0 / frames as f64;

    let mut world = World::from_scenario(scenario);
    for _ in 0..WARMUP_FRAMES {
        world.step(VehicleControl::coast());
    }
    let start = Instant::now();
    for _ in 0..frames {
        world.step(VehicleControl::coast());
    }
    let step_ms = start.elapsed().as_secs_f64() * 1000.0 / frames as f64;
    (full_ms, step_ms, spawned.0, spawned.1)
}

fn bench(frames: u64) {
    // (npcs requested, peds requested); 6+6 is today's scenario default.
    let populations = [(6, 6), (30, 30), (60, 60), (120, 120)];
    let horizons = [1u32, 8];
    let mut cases = Vec::new();
    for &(npcs, peds) in &populations {
        for &horizon in &horizons {
            let scenario = dense_scenario(977, npcs, peds, horizon);
            let (full_ms, step_ms, spawned_npcs, spawned_peds) = measure(&scenario, frames);
            eprintln!(
                "[npc-scaling] npcs={spawned_npcs} peds={spawned_peds} horizon={horizon}: \
                 {full_ms:.3} ms/frame full, {step_ms:.3} ms/frame step-only"
            );
            cases.push(format!(
                "    {{\"npcs\": {spawned_npcs}, \"peds\": {spawned_peds}, \
                 \"horizon\": {horizon}, \"ms_per_frame\": {full_ms:.3}, \
                 \"step_ms_per_frame\": {step_ms:.3}, \
                 \"within_15fps_budget\": {}}}",
                full_ms <= FRAME_BUDGET_MS
            ));
        }
    }
    println!(
        "{{\n  \"bench\": \"npc_scaling\",\n  \
         \"description\": \"mean frame time vs traffic population; ms_per_frame is the full \
         step+observe loop (sensor rasterization included), step_ms_per_frame isolates the \
         world step the event scheduler and spatial index optimize; horizon 1 = compat \
         per-tick stepping, horizon 8 = event-driven scheduling\",\n  \
         \"frames_per_case\": {frames},\n  \"frame_budget_ms\": {FRAME_BUDGET_MS:.1},\n  \
         \"cases\": [\n{}\n  ],\n  \
         \"notes\": \"the spatial index serves neighbor queries at every horizon (it replaced \
         the legacy O(n^2) full scans), so both modes scale near-linearly and 20x the default \
         population stays >100x inside the 15 FPS budget; horizon 8 additionally cuts agent \
         decision counts (see avfi-sim's event_mode_sleeps_agents test) at a small constant \
         scheduler overhead\"\n}}",
        cases.join(",\n")
    );
}

/// Deterministic high-density campaign for the smoke `density` tier:
/// engine-executed (worker-count invariant) and exported through the
/// standard `AVFI_RESULTS_DIR` path for golden diffing.
fn campaign(opts: &ExecOptions) {
    let scenarios = vec![
        dense_scenario(911, 60, 60, 8),
        dense_scenario(923, 60, 60, 8),
    ];
    let config = CampaignConfig::builder(scenarios)
        .runs_per_scenario(1)
        .fault(FaultSpec::None)
        .agent(AgentSpec::Expert)
        .build();
    let mut config = config;
    // High-density frames are cheap but missions are long; a tight budget
    // keeps the smoke tier fast while still crossing plenty of traffic.
    for s in &mut config.scenarios {
        s.time_budget = 40.0;
    }
    let plan = WorkPlan::new().with_study("density", vec![config]);
    let results = opts
        .execute(&plan)
        .pop()
        .expect("plan has one study")
        .campaigns;
    for r in &results {
        for run in r.runs() {
            eprintln!(
                "[npc-scaling] scenario {} run {}: {:.2} km, {} violations, {:?}",
                run.scenario_index,
                run.run_index,
                run.distance_km,
                run.violations.len(),
                run.outcome
            );
        }
    }
    export_json("npc_scaling", &results);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut frames: u64 = 300;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--frames" {
            if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                frames = n;
            }
        }
    }
    if args.iter().any(|a| a == "--quick") {
        campaign(&ExecOptions::from_args());
    } else {
        bench(frames);
    }
}
