//! Closed-loop frame-rate benchmark: the `observe → drive_frame → step`
//! loop every campaign run executes, measured end to end with the expert
//! agent on a 2×2 town. Emits one JSON object on stdout (the record format
//! stored in `BENCH_*.json` at the repo root).
//!
//! `--fault` injects a fault plan into the loop to measure the injection
//! hot path itself: `gaussian` pays the per-frame image copy + noise pass,
//! `gps` is a scalar-only plan (camera model `None`) that corrupts GPS
//! without ever touching the image — the measured gap is the cost the
//! optional camera model removes for scalar-only campaigns.
//!
//! Usage: `cargo run --release -p avfi-bench --bin frame_fps [frames]
//! [--fault none|gaussian|gps]`

use avfi_core::fault::input::{GpsFault, ImageFault, InputFault};
use avfi_core::fault::FaultSpec;
use avfi_core::harness::AvDriver;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::world::World;
use std::time::Instant;

const WARMUP_FRAMES: u64 = 200;

fn main() {
    let mut frames: u64 = 5000;
    let mut fault_name = "none".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Ok(n) = arg.parse::<u64>() {
            frames = n;
        } else if arg == "--fault" {
            fault_name = args.next().unwrap_or_default();
        }
    }
    let fault = match fault_name.as_str() {
        "none" | "" => FaultSpec::None,
        "gaussian" => FaultSpec::Input(InputFault::always(ImageFault::gaussian(0.08))),
        "gps" => FaultSpec::Input(InputFault::scalar_only().with_gps(GpsFault {
            bias_x: 3.0,
            bias_y: -2.0,
            sigma: 1.0,
        })),
        other => {
            eprintln!("unknown --fault {other:?} (use none|gaussian|gps)");
            std::process::exit(2);
        }
    };
    let label = fault.label();
    let scenario = Scenario::builder(TownSpec::grid(2, 2))
        .seed(5)
        .npc_vehicles(2)
        .pedestrians(2)
        .time_budget(1e9)
        .build();
    let mut world = World::from_scenario(&scenario);
    let mut driver = AvDriver::expert(fault, 11);

    let mut obs = world.observe();
    let mut frame_loop = |n: u64| {
        for _ in 0..n {
            let control = driver.drive_frame(&obs, &world);
            world.step(control);
            world.observe_into(&mut obs);
        }
    };
    frame_loop(WARMUP_FRAMES);
    let start = Instant::now();
    frame_loop(frames);
    let secs = start.elapsed().as_secs_f64();

    println!(
        "{{\"bench\": \"frame_loop_fps\", \"agent\": \"expert\", \"town\": \"2x2\", \
         \"fault\": \"{label}\", \"frames\": {frames}, \"seconds\": {secs:.6}, \"fps\": {:.1}}}",
        frames as f64 / secs
    );
}
