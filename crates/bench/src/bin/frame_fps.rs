//! Closed-loop frame-rate benchmark: the `observe → drive_frame → step`
//! loop every campaign run executes, measured end to end with the expert
//! agent on a 2×2 town. Emits one JSON object on stdout (the record format
//! stored in `BENCH_*.json` at the repo root).
//!
//! Usage: `cargo run --release -p avfi-bench --bin frame_fps [frames]`

use avfi_core::fault::FaultSpec;
use avfi_core::harness::AvDriver;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::world::World;
use std::time::Instant;

const WARMUP_FRAMES: u64 = 200;

fn main() {
    let frames: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    let scenario = Scenario::builder(TownSpec::grid(2, 2))
        .seed(5)
        .npc_vehicles(2)
        .pedestrians(2)
        .time_budget(1e9)
        .build();
    let mut world = World::from_scenario(&scenario);
    let mut driver = AvDriver::expert(FaultSpec::None, 11);

    let mut obs = world.observe();
    let mut frame_loop = |n: u64| {
        for _ in 0..n {
            let control = driver.drive_frame(&obs, &world);
            world.step(control);
            world.observe_into(&mut obs);
        }
    };
    frame_loop(WARMUP_FRAMES);
    let start = Instant::now();
    frame_loop(frames);
    let secs = start.elapsed().as_secs_f64();

    println!(
        "{{\"bench\": \"frame_loop_fps\", \"agent\": \"expert\", \"town\": \"2x2\", \
         \"frames\": {frames}, \"seconds\": {secs:.6}, \"fps\": {:.1}}}",
        frames as f64 / secs
    );
}
