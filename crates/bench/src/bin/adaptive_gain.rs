//! Adaptive-vs-uniform gain at matched budget — the artifact stored as
//! `BENCH_pr8.json` at the repo root.
//!
//! Both searches spend the *same* total-run budget over the *same* arm
//! lattice (scenario × channel × magnitude × onset, the paper channel
//! set) with the same per-pull seed semantics and the same engine seam:
//!
//! * **uniform**: round-robin laps of the lattice — the exhaustive
//!   grid every `fig*`/`ext_*` campaign sweeps, just expressed as arm
//!   pulls;
//! * **adaptive**: the Thompson-sampling planner, batch after batch.
//!
//! The headline metric is failures-per-run; the acceptance gate is
//! adaptive ≥ 2× uniform. Emits one JSON record on stdout.
//!
//! The default subject is the **expert** agent: its failure landscape is
//! sparse and physically interpretable (stuck actuators, whole-second
//! output delay), which is the regime guided search is for. The IL
//! agent's landscape at this reproduction's fidelity is chaotic — on
//! 150 s missions nearly any input perturbation eventually diverges the
//! trajectory, so most of the lattice "fails" and no search strategy
//! can beat uniform (pass `--agent neural` to see that saturation).
//!
//! Usage: `cargo run --release -p avfi-bench --bin adaptive_gain --
//! [--budget N] [--batch N] [--seed S] [--workers N]
//! [--agent expert|neural] [--dump]`
//! (default budget = two lattice laps: lap one is where uniform ends,
//! lap two is the exploitation phase uniform cannot have; `--dump`
//! prints per-arm outcome detail of a single uniform lap to stderr).

use avfi_bench::experiments::{adaptive_space, neural_agent, ExecOptions, Scale};
use avfi_core::adaptive::{run_adaptive, run_uniform, AdaptiveConfig, EngineOracle};
use avfi_core::engine::Engine;
use serde::Serialize;

#[derive(Serialize)]
struct Tally {
    spent: usize,
    failures: usize,
    failures_per_run: f64,
}

#[derive(Serialize)]
struct GainRecord {
    bench: &'static str,
    description: &'static str,
    lattice_arms: usize,
    budget: usize,
    batch: usize,
    seed: u64,
    uniform: Tally,
    adaptive: Tally,
    gain: f64,
    gate_2x: bool,
    notes: &'static str,
}

fn main() {
    let opts = ExecOptions::from_args();
    let mut budget = 0usize;
    let mut batch = 12usize;
    let mut seed = 2018u64;
    let mut expert = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => budget = args.next().and_then(|v| v.parse().ok()).unwrap_or(0),
            "--batch" => batch = args.next().and_then(|v| v.parse().ok()).unwrap_or(12),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(2018),
            "--agent" => expert = args.next().as_deref() != Some("neural"),
            _ => {}
        }
    }

    // Two evaluation scenarios keep the bench tractable, but missions
    // run at the full 150 s budget: at the quick 90 s budget the IL
    // agent times out on most routes and the failure landscape
    // saturates, which would make *any* search look uniform.
    let space = adaptive_space(Scale {
        scenarios: 2,
        runs: 1,
        budget: 150.0,
    });
    let arms = space.arms().len();
    if budget == 0 {
        budget = 2 * arms;
    }
    let agent = if expert {
        avfi_core::campaign::AgentSpec::Expert
    } else {
        neural_agent()
    };
    let engine = Engine::new().workers(opts.workers);
    eprintln!("[adaptive-gain] lattice = {arms} arms, budget = {budget}, batch = {batch}");

    let dump = std::env::args().any(|a| a == "--dump");
    let mut uniform_oracle = EngineOracle::new(
        &engine,
        agent.clone(),
        space.scenarios.clone(),
        "gain-uniform",
    );
    let uniform = if dump {
        // Diagnostic lap: per-arm outcome detail on stderr.
        let arms = space.arms();
        let mut report = avfi_core::adaptive::UniformReport {
            spent: 0,
            failures: 0,
            failures_per_run: 0.0,
        };
        for spec in &arms {
            let d = &spec.descriptor;
            let proposal = avfi_core::adaptive::Proposal {
                arm: d.index,
                scenario_index: d.scenario_index,
                run_index: 0,
                fault: spec.fault.clone(),
            };
            let obs = avfi_core::adaptive::AdaptiveOracle::evaluate(
                &mut uniform_oracle,
                std::slice::from_ref(&proposal),
            );
            let o = &obs[0];
            eprintln!(
                "[dump] arm {:3} s{} {:18} mag {:.2} onset {:3}: {} {}",
                d.index,
                d.scenario_index,
                d.channel,
                d.magnitude,
                d.onset,
                if o.failed { "FAIL" } else { "ok" },
                o.class.as_deref().unwrap_or("-"),
            );
            report.spent += 1;
            report.failures += o.failed as usize;
        }
        report.failures_per_run = report.failures as f64 / report.spent.max(1) as f64;
        report
    } else {
        run_uniform(&space, budget, batch, &mut uniform_oracle)
    };
    eprintln!(
        "[adaptive-gain] uniform: {} failures in {} runs ({:.3}/run)",
        uniform.failures, uniform.spent, uniform.failures_per_run
    );

    let config = AdaptiveConfig {
        budget,
        batch,
        seed,
    };
    let outcome = run_adaptive(&engine, &space, config, &agent, "gain-adaptive");
    let adaptive = &outcome.trajectory.report;
    eprintln!(
        "[adaptive-gain] adaptive: {} failures in {} runs ({:.3}/run)",
        adaptive.failures, adaptive.spent, adaptive.failures_per_run
    );

    let gain = if uniform.failures_per_run > 0.0 {
        adaptive.failures_per_run / uniform.failures_per_run
    } else {
        f64::INFINITY
    };
    let record = GainRecord {
        bench: "adaptive_gain",
        description: "failures found per run at matched total-run budget over the same \
             (scenario x channel x magnitude x onset) arm lattice and identical per-pull seeds; \
             uniform = round-robin laps of the lattice (the exhaustive grid), adaptive = \
             Thompson-sampling planner over Beta-Bernoulli per-arm posteriors proposing \
             batches through Engine::evaluate_jobs; expert agent, 150 s missions",
        lattice_arms: arms,
        budget,
        batch,
        seed,
        uniform: Tally {
            spent: uniform.spent,
            failures: uniform.failures,
            failures_per_run: uniform.failures_per_run,
        },
        adaptive: Tally {
            spent: adaptive.spent,
            failures: adaptive.failures,
            failures_per_run: adaptive.failures_per_run,
        },
        gain,
        gate_2x: gain >= 2.0,
        notes: "the expert agent's failure landscape is sparse (~8% of arms: stuck \
             brake/throttle, 1 s output delay), so the uniform grid spends >90% of its budget \
             on benign arms while the planner spends its first lap finding the failing region \
             and the second concentrating there — the trajectory is byte-identical for any \
             --workers count (see the adaptive_determinism test); the IL agent saturates this \
             landscape (most perturbations of a 150 s mission diverge), run --agent neural to \
             reproduce that",
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&record).expect("record serializes")
    );
}
