//! Deterministic run replay: re-execute recorded runs from their flight
//! recorder traces and verify bit-identity frame by frame.
//!
//! Usage: `cargo run --release -p avfi-bench --bin replay -- <TRACE>...`
//! where each `TRACE` is a `.avtr` file or a directory of them. Options:
//!
//! * `--weights PATH` — serialized IL-CNN weights for neural traces
//!   (defaults to the cached deterministic training run when needed).
//! * `--json` — print one machine-readable JSON array to stdout (per
//!   trace: match/diverged/error status, frames and events checked,
//!   first divergent frame) instead of the human lines.
//!
//! Exit status is nonzero when any trace fails to decode, cannot be
//! replayed, or replays with a divergence.

use avfi_bench::experiments::trained_weights;
use avfi_core::replay::{replay_trace, ReplayRecord, ReplayVerdict};
use avfi_trace::{list_trace_files, read_trace_file};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut weights_path: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--weights" => weights_path = args.next().map(PathBuf::from),
            "--json" => json = true,
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: replay [--weights PATH] [--json] <trace file or dir>...");
        return ExitCode::from(2);
    }

    let mut files = Vec::new();
    for input in inputs {
        if input.is_dir() {
            match list_trace_files(&input) {
                Ok(found) => files.extend(found),
                Err(e) => {
                    eprintln!("[replay] cannot list {}: {e}", input.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(input);
        }
    }
    if files.is_empty() {
        eprintln!("[replay] no .avtr files found");
        return ExitCode::from(2);
    }

    let explicit_weights = weights_path.map(|p| match std::fs::read(&p) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("[replay] cannot read weights {}: {e}", p.display());
            std::process::exit(2);
        }
    });

    let (mut matched, mut failed) = (0usize, 0usize);
    let mut records: Vec<ReplayRecord> = Vec::new();
    for path in &files {
        let file = path.display().to_string();
        let trace = match read_trace_file(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[replay] {e}");
                records.push(ReplayRecord::from_error(&file, &e));
                failed += 1;
                continue;
            }
        };
        // Neural traces need weights; the cached deterministic training
        // run is the default source (its fingerprint is verified anyway).
        let cached;
        let weights: Option<&[u8]> = if trace.header.agent == "il-cnn" {
            match &explicit_weights {
                Some(w) => Some(w),
                None => {
                    cached = trained_weights();
                    Some(cached.as_slice())
                }
            }
        } else {
            None
        };
        match replay_trace(&trace, weights) {
            Ok(verdict) => {
                records.push(ReplayRecord::from_verdict(&file, &verdict));
                match verdict {
                    ReplayVerdict::Match {
                        frames_checked,
                        events_checked,
                    } => {
                        matched += 1;
                        if !json {
                            println!(
                                "{file}: MATCH ({frames_checked} frames, \
                                 {events_checked} events bit-identical)"
                            );
                        }
                    }
                    ReplayVerdict::Diverged(d) => {
                        failed += 1;
                        if !json {
                            println!("{file}: DIVERGED at {d}");
                        }
                    }
                }
            }
            Err(e) => {
                records.push(ReplayRecord::from_error(&file, &e));
                failed += 1;
                if !json {
                    println!("{file}: ERROR {e}");
                }
            }
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&records).expect("records serialize")
        );
    }
    eprintln!(
        "[replay] {matched}/{} traces replayed bit-identically",
        files.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
