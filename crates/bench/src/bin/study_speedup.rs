//! End-to-end multi-campaign study wall-clock: sequential per-campaign
//! execution (the pre-engine path, with parallelism only *inside* each
//! campaign) vs one flattened work-stealing engine queue over the same
//! plan. Emits one JSON object on stdout (the record format stored in
//! `BENCH_pr2.json` at the repo root).
//!
//! The two paths produce bit-identical results (asserted here); only the
//! scheduling differs. On a single-core host the speedup is ≈1.0 by
//! construction — the engine's win is removing the idle tail at every
//! campaign boundary, which needs cores to idle in the first place.
//!
//! Usage: `cargo run --release -p avfi-bench --bin study_speedup
//! [--quick] [--workers N] [--neural]`

use avfi_bench::experiments::{
    neural_agent, output_delay_specs, plan_studies, ExecOptions, Scale, StudySpec,
};
use avfi_core::campaign::{AgentSpec, Campaign};
use avfi_core::engine::Engine;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    let neural = std::env::args().any(|a| a == "--neural");
    let agent = if neural {
        neural_agent()
    } else {
        AgentSpec::Expert
    };
    let studies = [
        StudySpec {
            name: "input-faults",
            agent: agent.clone(),
            faults: avfi_bench::experiments::input_fault_specs(),
        },
        StudySpec {
            name: "output-delay",
            agent,
            faults: output_delay_specs(),
        },
    ];
    let plan = plan_studies(&studies, scale);
    let engine = Engine::new().workers(opts.workers);
    let workers = engine.effective_workers(plan.total_runs());
    eprintln!(
        "[study_speedup] {} runs / {} campaigns, {workers} workers, agent = {}",
        plan.total_runs(),
        plan.total_campaigns(),
        if neural { "il-cnn" } else { "expert" }
    );

    // Warm caches (weight training, lazy tables) outside the timed region.
    let _ = Campaign::new(plan.studies()[0].campaigns[0].clone()).run();

    // (a) Pre-engine path: campaigns strictly sequential, worker threads
    // only within each campaign.
    let t = Instant::now();
    let mut sequential_results = Vec::new();
    for study in plan.studies() {
        for cfg in &study.campaigns {
            let mut cfg = cfg.clone();
            cfg.parallelism = workers;
            sequential_results.push(Campaign::new(cfg).run());
        }
    }
    let sequential_s = t.elapsed().as_secs_f64();

    // (b) The flattened engine queue.
    let t = Instant::now();
    let engine_results = engine.execute(&plan);
    let engine_s = t.elapsed().as_secs_f64();

    let flat: Vec<_> = engine_results.iter().flat_map(|s| &s.campaigns).collect();
    assert_eq!(flat.len(), sequential_results.len());
    for (a, b) in flat.iter().zip(&sequential_results) {
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "engine must be bit-identical to the sequential path"
        );
    }

    println!(
        "{{\"bench\": \"study_speedup\", \"agent\": \"{}\", \"campaigns\": {}, \
         \"runs\": {}, \"workers\": {workers}, \"sequential_s\": {sequential_s:.3}, \
         \"engine_s\": {engine_s:.3}, \"speedup\": {:.3}}}",
        if neural { "il-cnn" } else { "expert" },
        plan.total_campaigns(),
        plan.total_runs(),
        sequential_s / engine_s
    );
}
