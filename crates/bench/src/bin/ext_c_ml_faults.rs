//! Extension C: machine-learning fault sweep.
//!
//! §II: "AVFI injects faults into the neural network by adding noise into
//! the parameters of the machine learning model (e.g., weights of the
//! neural network), which is modeled on real-world hardware failures."
//! This harness sweeps weight-noise σ and weight bit-flip counts on the
//! IL-CNN and reports MSR and VPK per configuration.
//!
//! Usage: `cargo run --release -p avfi-bench --bin ext_c_ml_faults
//! [--quick] [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox] [--shrink DIR]`

use avfi_bench::experiments::{
    export_json, neural_agent, run_study, shrink_after_study, ExecOptions, Scale,
};
use avfi_core::fault::ml::MlFault;
use avfi_core::fault::FaultSpec;
use avfi_core::localizer::ParamSelector;
use avfi_core::{metrics, report, stats};

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[ext-c] scale = {scale:?}, exec = {opts:?}");
    let mut specs = vec![FaultSpec::None];
    for sigma in [0.02, 0.05, 0.1, 0.2] {
        specs.push(FaultSpec::Ml(MlFault::WeightNoise {
            sigma,
            fraction: 1.0,
            selector: ParamSelector::All,
        }));
    }
    for flips in [1usize, 5, 20] {
        specs.push(FaultSpec::Ml(MlFault::WeightBitFlip {
            flips,
            selector: ParamSelector::WeightsOnly,
        }));
    }
    let results = run_study("ml-faults", neural_agent(), specs, scale, &opts);
    let mut table = report::Table::new(vec!["ML Fault", "MSR (%)", "median VPK", "mean VPK"]);
    for result in &results {
        let vpk = metrics::vpk_distribution(result.runs());
        let s = stats::Summary::of(&vpk);
        table.row(vec![
            result.fault.clone(),
            format!("{:.1}", metrics::mission_success_rate(result.runs())),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
        ]);
    }
    println!(
        "Extension C — IL-CNN parameter faults (weight noise and bit flips)\n\n{}",
        table.render()
    );
    export_json("ext_c_ml_faults", &results);
    shrink_after_study(&opts);
}
