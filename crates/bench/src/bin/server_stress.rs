//! Campaign-service stress bench: hundreds of concurrent submitters
//! against one in-process `avfi-server` daemon sharing one worker pool.
//!
//! Every client thread opens its own TCP connection, submits plans drawn
//! from a small set of deterministic shapes, waits for completion, and
//! fetches results; every served payload is verified byte-identical to a
//! precomputed solo-engine golden for its shape (the goldens are computed
//! before the clock starts, so the timing is pure service throughput).
//! Emits one JSON object on stdout (the record format stored in
//! `BENCH_*.json` at the repo root).
//!
//! Usage: `server_stress [--clients N] [--plans-per-client M] [--workers W]`

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::WorkPlan;
use avfi_net::proto::PlanPhase;
use avfi_server::{solo_results_json, CampaignServer, ServiceClient};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::TraceLevel;
use std::time::Instant;

const SHAPES: u64 = 8;

fn shape_plan(shape: u64) -> WorkPlan {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    let scenario = Scenario::builder(town)
        .seed(64_000 + shape * 3)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(15.0)
        .min_route_length(50.0)
        .build();
    let fault = if shape.is_multiple_of(2) {
        FaultSpec::None
    } else {
        FaultSpec::Timing(TimingFault::OutputDelay {
            frames: 2 + shape as usize,
        })
    };
    let campaign = CampaignConfig::builder(vec![scenario])
        .runs_per_scenario(1)
        .fault(fault)
        .agent(AgentSpec::Expert)
        .build();
    WorkPlan::new().with_study("stress", vec![campaign])
}

fn main() {
    let mut clients: u64 = 200;
    let mut plans_per_client: u64 = 1;
    let mut workers: usize = 2;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => clients = args.next().and_then(|v| v.parse().ok()).unwrap_or(clients),
            "--plans-per-client" => {
                plans_per_client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(plans_per_client);
            }
            "--workers" => workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(workers),
            _ => {
                eprintln!(
                    "usage: server_stress [--clients N] [--plans-per-client M] [--workers W]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!("[server_stress] precomputing {SHAPES} solo goldens");
    let goldens: Vec<String> = (0..SHAPES)
        .map(|s| solo_results_json(&shape_plan(s)).expect("solo golden"))
        .collect();

    let server = CampaignServer::bind("127.0.0.1:0", workers).expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    eprintln!(
        "[server_stress] {clients} clients x {plans_per_client} plans on {workers} pool workers"
    );
    let started = Instant::now();
    let mismatches: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let addr = addr.clone();
                let goldens = &goldens;
                scope.spawn(move || {
                    let mut bad = 0u64;
                    let mut c = ServiceClient::connect(&addr).expect("connect");
                    for round in 0..plans_per_client {
                        let shape = (client * plans_per_client + round) % SHAPES;
                        let (id, _) = c
                            .submit(&shape_plan(shape), TraceLevel::Off)
                            .expect("submit");
                        assert_eq!(
                            c.wait_terminal(id).expect("wait"),
                            PlanPhase::Completed,
                            "client {client} round {round}"
                        );
                        if c.results_json(id).expect("results") != goldens[shape as usize] {
                            bad += 1;
                        }
                    }
                    bad
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let wall_ms = started.elapsed().as_millis();

    ServiceClient::connect(&addr)
        .expect("shutdown connect")
        .shutdown_server()
        .expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon run");

    let plans = clients * plans_per_client;
    let wall_s = (wall_ms as f64 / 1000.0).max(1e-9);
    println!(
        "{{\n  \"bench\": \"server_stress\",\n  \"clients\": {clients},\n  \
         \"plans_per_client\": {plans_per_client},\n  \"pool_workers\": {workers},\n  \
         \"plans\": {plans},\n  \"wall_ms\": {wall_ms},\n  \
         \"plans_per_s\": {:.2},\n  \"mismatched_payloads\": {mismatches}\n}}",
        plans as f64 / wall_s
    );
    if mismatches > 0 {
        eprintln!("[server_stress] FAIL: {mismatches} served payloads drifted from solo goldens");
        std::process::exit(1);
    }
}
