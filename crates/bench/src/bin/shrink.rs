//! Trace-driven failure minimization: delta-debug failed flight-recorder
//! traces into minimal, replay-verified repros.
//!
//! Usage: `cargo run --release -p avfi-bench --bin shrink --
//! [--workers N] [--weights PATH] [--out DIR] [--max-iterations N]
//! <TRACE>...` where each `TRACE` is a `.avtr` file or a directory of
//! them. For every failed trace the shrinker walks the reduction lattice
//! (fewer NPCs/pedestrians, shorter budget/route, simpler weather, later
//! and narrower triggers, smaller fault magnitudes), keeping a reduction
//! only when the run still fails in the same triage class and the
//! reduced run replays bit-identically. Output per trace, under `--out`
//! (default `minimized/`): `minimal-{i:06}.json` (the repro) and
//! `shrink-{i:06}.json` (the full candidate log). The result is
//! byte-identical for any `--workers` count.
//!
//! Exit status is nonzero when no trace could be minimized.

use avfi_bench::experiments::shrink_traces;
use avfi_core::shrink::ShrinkConfig;
use avfi_trace::list_trace_files;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut weights_path: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("minimized");
    let mut config = ShrinkConfig::default();
    let mut workers = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            "--weights" => weights_path = args.next().map(PathBuf::from),
            "--out" => {
                if let Some(dir) = args.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--max-iterations" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    config.max_iterations = n;
                }
            }
            _ => inputs.push(PathBuf::from(arg)),
        }
    }
    if inputs.is_empty() {
        eprintln!(
            "usage: shrink [--workers N] [--weights PATH] [--out DIR] \
             [--max-iterations N] <trace file or dir>..."
        );
        return ExitCode::from(2);
    }

    let mut files = Vec::new();
    for input in inputs {
        if input.is_dir() {
            match list_trace_files(&input) {
                Ok(found) => files.extend(found),
                Err(e) => {
                    eprintln!("[shrink] cannot list {}: {e}", input.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            files.push(input);
        }
    }
    if files.is_empty() {
        eprintln!("[shrink] no .avtr files found");
        return ExitCode::from(2);
    }

    let explicit_weights = weights_path.map(|p| match std::fs::read(&p) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("[shrink] cannot read weights {}: {e}", p.display());
            std::process::exit(2);
        }
    });

    let (minimized, skipped) = shrink_traces(
        &files,
        &out_dir,
        workers,
        &config,
        explicit_weights.as_deref(),
    );
    println!(
        "[shrink] {minimized}/{} trace(s) minimized ({skipped} skipped) → {}",
        files.len(),
        out_dir.display()
    );
    if minimized > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
