//! IL-CNN forward wall-clock: blocked lane-batched kernels vs the retained
//! scalar `forward_reference` oracles, per layer and whole-net. Bitwise
//! equality of every compared output is asserted *before* timing (the
//! `study_speedup` pattern) — a speedup over non-identical results would be
//! meaningless. Emits one JSON object on stdout (the record stored in
//! `BENCH_pr9.json` at the repo root).
//!
//! The layers are the exact production shapes of the driving agent
//! (`IlNetwork`): conv 1→8 k5 s2 p2 on 24×32, conv 8→16 k3 s2 p1, dense
//! 768→64, and one command head (65→32→3). Weights are seeded, not
//! trained — the arithmetic cost is identical.
//!
//! Usage: `cargo run --release -p avfi-bench --bin nn_forward [--quick]
//! [--frames N]`

use avfi_nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use avfi_nn::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const NET_H: usize = 24;
const NET_W: usize = 32;

struct IlLayers {
    conv1: Conv2d,
    relu1: Relu,
    conv2: Conv2d,
    relu2: Relu,
    flatten: Flatten,
    dense: Dense,
    relu3: Relu,
    head_a: Dense,
    relu4: Relu,
    head_b: Dense,
}

impl IlLayers {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        IlLayers {
            conv1: Conv2d::new(1, 8, 5, 2, 2, &mut rng),
            relu1: Relu::new(),
            conv2: Conv2d::new(8, 16, 3, 2, 1, &mut rng),
            relu2: Relu::new(),
            flatten: Flatten::new(),
            dense: Dense::new(16 * (NET_H / 4) * (NET_W / 4), 64, &mut rng),
            relu3: Relu::new(),
            head_a: Dense::new(65, 32, &mut rng),
            relu4: Relu::new(),
            head_b: Dense::new(32, 3, &mut rng),
        }
    }

    /// Whole-net inference through the blocked kernels.
    fn forward_blocked(&mut self, img: &Tensor, speed: f32) -> Tensor {
        let x = self.conv1.forward(img, false);
        let x = self.relu1.forward(&x, false);
        let x = self.conv2.forward(&x, false);
        let x = self.relu2.forward(&x, false);
        let x = self.flatten.forward(&x, false);
        let x = self.dense.forward(&x, false);
        let x = self.relu3.forward(&x, false);
        let mut head_in = Vec::with_capacity(x.len() + 1);
        head_in.extend_from_slice(x.data());
        head_in.push(speed);
        let n = head_in.len();
        let x = Tensor::from_vec(head_in, vec![n]);
        let x = self.head_a.forward(&x, false);
        let x = self.relu4.forward(&x, false);
        self.head_b.forward(&x, false)
    }

    /// Whole-net inference through the scalar reference kernels
    /// (activations/reshape are shared and already bit-identical).
    fn forward_reference(&mut self, img: &Tensor, speed: f32) -> Tensor {
        let x = self.conv1.forward_reference(img);
        let x = self.relu1.forward(&x, false);
        let x = self.conv2.forward_reference(&x);
        let x = self.relu2.forward(&x, false);
        let x = self.flatten.forward(&x, false);
        let x = self.dense.forward_reference(&x);
        let x = self.relu3.forward(&x, false);
        let mut head_in = Vec::with_capacity(x.len() + 1);
        head_in.extend_from_slice(x.data());
        head_in.push(speed);
        let n = head_in.len();
        let x = Tensor::from_vec(head_in, vec![n]);
        let x = self.head_a.forward_reference(&x);
        let x = self.relu4.forward(&x, false);
        self.head_b.forward_reference(&x)
    }
}

fn images(count: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..count)
        .map(|_| {
            Tensor::from_vec(
                (0..NET_H * NET_W)
                    .map(|_| rng.random_range(-1.0f32..1.0))
                    .collect(),
                vec![1, NET_H, NET_W],
            )
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Mean µs per call of `f` over `frames` calls.
fn time_us(frames: usize, mut f: impl FnMut(usize)) -> f64 {
    let t = Instant::now();
    for i in 0..frames {
        f(i);
    }
    t.elapsed().as_secs_f64() * 1e6 / frames as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let frames = args
        .iter()
        .position(|a| a == "--frames")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { 400 } else { 4000 });

    let mut net = IlLayers::new(42);
    let imgs = images(8);

    // Gate: every compared path must be bit-identical before timing.
    for (i, img) in imgs.iter().enumerate() {
        let speed = i as f32 * 0.1;
        let blocked = net.forward_blocked(img, speed);
        let reference = net.forward_reference(img, speed);
        assert_eq!(
            bits(&blocked),
            bits(&reference),
            "blocked whole-net logits must be bit-identical to the scalar reference"
        );
        let c1 = net.conv1.forward(img, false);
        assert_eq!(bits(&c1), bits(&net.conv1.forward_reference(img)));
        let c2_in = net.relu1.forward(&c1, false);
        let c2 = net.conv2.forward(&c2_in, false);
        assert_eq!(bits(&c2), bits(&net.conv2.forward_reference(&c2_in)));
        let d_in = net.flatten.forward(&net.relu2.forward(&c2, false), false);
        assert_eq!(
            bits(&net.dense.forward(&d_in, false)),
            bits(&net.dense.forward_reference(&d_in))
        );
    }
    eprintln!(
        "[nn_forward] bit-identity verified on {} inputs; timing {frames} frames",
        imgs.len()
    );

    // Fixed per-layer inputs (representative activations from image 0).
    let c1_out = net.conv1.forward(&imgs[0], false);
    let c2_in = net.relu1.forward(&c1_out, false);
    let c2_out = net.conv2.forward(&c2_in, false);
    let d_in = net
        .flatten
        .forward(&net.relu2.forward(&c2_out, false), false);

    let conv1_ref_us = time_us(frames, |i| {
        black_box(net.conv1.forward_reference(&imgs[i % 8]));
    });
    let conv1_blk_us = time_us(frames, |i| {
        black_box(net.conv1.forward(&imgs[i % 8], false));
    });
    let conv2_ref_us = time_us(frames, |_| {
        black_box(net.conv2.forward_reference(&c2_in));
    });
    let conv2_blk_us = time_us(frames, |_| {
        black_box(net.conv2.forward(&c2_in, false));
    });
    let dense_ref_us = time_us(frames, |_| {
        black_box(net.dense.forward_reference(&d_in));
    });
    let dense_blk_us = time_us(frames, |_| {
        black_box(net.dense.forward(&d_in, false));
    });
    let net_ref_us = time_us(frames, |i| {
        black_box(net.forward_reference(&imgs[i % 8], (i % 8) as f32 * 0.1));
    });
    let net_blk_us = time_us(frames, |i| {
        black_box(net.forward_blocked(&imgs[i % 8], (i % 8) as f32 * 0.1));
    });

    println!(
        "{{\"bench\": \"nn_forward\", \"frames\": {frames}, \
         \"conv1_reference_us\": {conv1_ref_us:.2}, \"conv1_blocked_us\": {conv1_blk_us:.2}, \
         \"conv2_reference_us\": {conv2_ref_us:.2}, \"conv2_blocked_us\": {conv2_blk_us:.2}, \
         \"dense_reference_us\": {dense_ref_us:.2}, \"dense_blocked_us\": {dense_blk_us:.2}, \
         \"net_reference_us\": {net_ref_us:.2}, \"net_blocked_us\": {net_blk_us:.2}, \
         \"net_speedup\": {:.3}}}",
        net_ref_us / net_blk_us
    );
}
