//! Figure 4 reproduction: distribution of violations per km with
//! increasing output delay between the ADA and actuation.
//!
//! The simulation runs at 15 FPS, so a delay of 30 frames corresponds to
//! 2 s between decision and actuation — the paper's headline observation.
//!
//! Usage: `cargo run --release -p avfi-bench --bin fig4_output_delay
//! [--quick] [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox]`

use avfi_bench::experiments::{export_json, output_delay_study, render_fig4, ExecOptions, Scale};

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[fig4] scale = {scale:?}, exec = {opts:?}");
    let results = output_delay_study(scale, &opts);
    println!("{}", render_fig4(&results));
    export_json("fig4_output_delay", &results);
}
