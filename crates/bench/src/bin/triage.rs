//! Failure triage over a directory of flight-recorder traces: which
//! injection causally preceded each first violation, fault-activation
//! latency, and violation-kind histograms, grouped per campaign.
//!
//! Usage: `cargo run --release -p avfi-bench --bin triage -- <TRACE-DIR>
//! [--out FILE.json] [--cross FILE.json]` — prints the per-campaign
//! triage tables (plus the cross-campaign failure-class view) and
//! optionally writes the machine-readable report (`--out`,
//! golden-diff friendly) and the cross-campaign grouping (`--cross`):
//! identical (outcome, first violation, causal channel) classes
//! aggregated across every campaign in the directory.

use avfi_core::triage::TriageReport;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut cross: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().map(PathBuf::from),
            "--cross" => cross = args.next().map(PathBuf::from),
            _ => dir = Some(PathBuf::from(arg)),
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: triage <trace-dir> [--out FILE.json] [--cross FILE.json]");
        return ExitCode::from(2);
    };

    let report = match TriageReport::from_dir(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[triage] cannot triage {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "[triage] {} traces read, {} campaign(s) with failures",
        report.traces_read,
        report.campaigns.len()
    );
    print!("{}", report.render());
    if let Some(path) = out {
        let json = report.to_json().expect("report serializes");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("[triage] cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("[triage] wrote {}", path.display());
    }
    if let Some(path) = cross {
        let groups = report.cross_campaign();
        let json = serde_json::to_string_pretty(&groups).expect("groups serialize");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("[triage] cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "[triage] wrote {} ({} cross-campaign class(es))",
            path.display(),
            groups.len()
        );
    }
    ExitCode::SUCCESS
}
