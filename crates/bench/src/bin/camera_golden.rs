//! Golden-image corpus tool for the camera regression tier.
//!
//! Renders a deterministic matrix of (town, ego pose, weather, NPC layout,
//! camera intrinsics) scenes and either checks them bit-for-bit against the
//! checked-in `.avimg` corpus or regenerates it. Every scene is rendered
//! through *both* camera ground passes — the default span rasterizer and
//! the per-pixel reference — and the tool fails if they disagree anywhere,
//! so the corpus doubles as a differential test of the span math on real
//! scene geometry.
//!
//! Usage:
//!   camera_golden --check [DIR]   # default; diff against DIR
//!   camera_golden --bless [DIR]   # (re)generate the corpus in DIR
//!
//! DIR defaults to `results/golden/camera`. Exit status is non-zero on any
//! drift, missing file, or span/reference divergence. Goldens are
//! reference-platform artifacts (pure f64 arithmetic: deterministic per
//! platform/toolchain, not guaranteed identical across architectures).

use avfi_sim::physics::VehicleControl;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::sensors::{avimg_checksum, read_avimg, write_avimg, CameraConfig};
use avfi_sim::weather::Weather;
use avfi_sim::world::World;
use std::path::PathBuf;

/// One corpus entry: a deterministic scene plus the frame to render.
struct SceneSpec {
    /// Stable artifact name (also the `.avimg` file stem).
    name: String,
    scenario: Scenario,
    /// Frames to advance with coasting controls before the shot (moves
    /// NPCs, pedestrians and signal phases deterministically without an
    /// agent in the loop).
    coast_frames: u32,
}

fn scenes() -> Vec<SceneSpec> {
    let mut out = Vec::new();

    // Weather sweep on the small town: same pose, five palettes/fogs.
    for weather in Weather::ALL {
        out.push(SceneSpec {
            name: format!("t22_{}_f0", weather_slug(weather)),
            scenario: Scenario::builder(TownSpec::grid(2, 2))
                .seed(11)
                .npc_vehicles(3)
                .pedestrians(2)
                .weather(weather)
                .build(),
            coast_frames: 0,
        });
    }

    // Larger town, advanced simulation time (signal phases change, actors
    // have moved), two fog extremes.
    for weather in [Weather::ClearNoon, Weather::Fog] {
        out.push(SceneSpec {
            name: format!("t33_{}_f40", weather_slug(weather)),
            scenario: Scenario::builder(TownSpec::grid(3, 3))
                .seed(29)
                .npc_vehicles(6)
                .pedestrians(4)
                .weather(weather)
                .build(),
            coast_frames: 40,
        });
    }

    // Unsignalized town: no traffic-light billboards.
    let mut unsignalized = TownSpec::grid(3, 3);
    unsignalized.signalized = false;
    out.push(SceneSpec {
        name: "t33nosig_clearnoon_f25".into(),
        scenario: Scenario::builder(unsignalized)
            .seed(7)
            .npc_vehicles(4)
            .pedestrians(0)
            .weather(Weather::ClearNoon)
            .build(),
        coast_frames: 25,
    });

    // Non-default intrinsics: wider image, wider FOV.
    let wide = CameraConfig {
        width: 96,
        height: 64,
        fov_deg: 120.0,
        ..CameraConfig::default()
    };
    out.push(SceneSpec {
        name: "t22_dusk_wide_f0".into(),
        scenario: Scenario::builder(TownSpec::grid(2, 2))
            .seed(3)
            .npc_vehicles(0)
            .pedestrians(0)
            .weather(Weather::Dusk)
            .camera(wide)
            .build(),
        coast_frames: 0,
    });

    // Near-horizon pitch: ground rows graze the far clip, exercising the
    // haze/ground run boundaries and long span lines.
    let shallow = CameraConfig {
        pitch_deg: 2.0,
        ..CameraConfig::default()
    };
    out.push(SceneSpec {
        name: "t33_rain_shallow_f10".into(),
        scenario: Scenario::builder(TownSpec::grid(3, 3))
            .seed(13)
            .npc_vehicles(2)
            .pedestrians(2)
            .weather(Weather::Rain)
            .camera(shallow)
            .build(),
        coast_frames: 10,
    });

    // Non-default road geometry: wider lanes and sidewalks move every
    // material band boundary.
    let mut wide_roads = TownSpec::grid(2, 3);
    wide_roads.lane_width = 4.25;
    wide_roads.sidewalk = 2.75;
    out.push(SceneSpec {
        name: "t23wide_overcast_f15".into(),
        scenario: Scenario::builder(wide_roads)
            .seed(41)
            .npc_vehicles(3)
            .pedestrians(3)
            .weather(Weather::Overcast)
            .build(),
        coast_frames: 15,
    });

    out
}

fn weather_slug(w: Weather) -> &'static str {
    match w {
        Weather::ClearNoon => "clearnoon",
        Weather::Overcast => "overcast",
        Weather::Rain => "rain",
        Weather::Fog => "fog",
        Weather::Dusk => "dusk",
    }
}

fn main() {
    let mut bless = false;
    let mut dir = PathBuf::from("results/golden/camera");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bless" => bless = true,
            "--check" => bless = false,
            other => dir = PathBuf::from(other),
        }
    }

    let mut fail = 0usize;
    for spec in scenes() {
        let mut world = World::from_scenario(&spec.scenario);
        for _ in 0..spec.coast_frames {
            world.step(VehicleControl::coast());
        }
        let span = world.render_camera();
        let reference = world.render_camera_reference();
        if span != reference {
            println!("{:<28} DIVERGED (span != reference)", spec.name);
            fail += 1;
            continue;
        }
        let sum = avimg_checksum(&span);
        let path: PathBuf = dir.join(format!("{}.avimg", spec.name));
        if bless {
            write_avimg(&path, &span).expect("write golden");
            println!("{:<28} {sum:016x}  BLESSED", spec.name);
        } else {
            match read_avimg(&path) {
                Ok(golden) if golden == span => {
                    println!("{:<28} {sum:016x}  OK", spec.name);
                }
                Ok(golden) => {
                    println!(
                        "{:<28} {sum:016x}  DRIFT (golden {:016x}, {} px differ)",
                        spec.name,
                        avimg_checksum(&golden),
                        count_diff(&golden, &span),
                    );
                    fail += 1;
                }
                Err(e) => {
                    println!("{:<28} {sum:016x}  MISSING/UNREADABLE ({e})", spec.name);
                    fail += 1;
                }
            }
        }
    }
    if fail > 0 {
        eprintln!(
            "camera_golden: {fail} scene(s) failed in {} (re-bless with --bless if intentional)",
            dir.display()
        );
        std::process::exit(1);
    }
}

/// Number of differing pixels between two same-shape images (0 when shapes
/// differ is never reported: shape mismatch counts every pixel).
fn count_diff(a: &avfi_sim::sensors::Image, b: &avfi_sim::sensors::Image) -> usize {
    if a.width() != b.width() || a.height() != b.height() {
        return a.pixel_count().max(b.pixel_count());
    }
    a.data()
        .chunks_exact(3)
        .zip(b.data().chunks_exact(3))
        .filter(|(x, y)| x != y)
        .count()
}
