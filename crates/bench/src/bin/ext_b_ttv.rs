//! Extension B: Time to Traffic Violation (TTV).
//!
//! The paper defines TTV in §II: "the time between a fault injection and
//! its manifestation as a traffic violation. Higher values of TTV imply
//! that the system has more time to detect and correct its state." This
//! harness injects each input fault mid-mission (t₀ = 10 s) and measures
//! the TTV distribution.
//!
//! Usage: `cargo run --release -p avfi-bench --bin ext_b_ttv [--quick]
//! [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox] [--shrink DIR]
//! [--adaptive BUDGET]`
//!
//! With `--adaptive BUDGET`, the uniform injector grid is replaced by
//! the Thompson-sampling planner over the same mid-mission onset: the
//! fixed run budget is spent where failures concentrate instead of
//! uniformly, and the trajectory is exported as `ext_b_adaptive.json`.

use avfi_bench::experiments::{
    adaptive_space, export_json, export_trajectory, neural_agent, render_adaptive,
    run_adaptive_study, run_study, shrink_after_study, ExecOptions, Scale,
};
use avfi_core::adaptive::AdaptiveConfig;
use avfi_core::fault::input::{ImageFault, InputFault};
use avfi_core::fault::FaultSpec;
use avfi_core::{metrics, report, stats};

/// Parses `--adaptive BUDGET` from argv.
fn adaptive_budget() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--adaptive" {
            return args.next().and_then(|v| v.parse().ok());
        }
    }
    None
}

/// Adaptive-mode ext-b: the same fault-space search as the `adaptive`
/// bin but pinned to the mid-mission onset (t₀ = 10 s, frame 150) this
/// extension studies.
fn run_adaptive_mode(scale: Scale, opts: &ExecOptions, budget: usize) {
    let mut space = adaptive_space(scale);
    space.onsets = vec![150];
    let config = AdaptiveConfig {
        budget,
        batch: 8,
        seed: 2018,
    };
    eprintln!(
        "[ext-b] adaptive mode: {} arms, budget {budget}",
        space.arms().len()
    );
    let outcome = run_adaptive_study(&space, config, opts);
    println!("Extension B (adaptive) — Bayesian fault-space search at t0 = 10 s\n");
    println!("{}", render_adaptive(&outcome.trajectory));
    export_trajectory("ext_b_adaptive", &outcome.trajectory);
}

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[ext-b] scale = {scale:?}, exec = {opts:?}");
    if let Some(budget) = adaptive_budget() {
        run_adaptive_mode(scale, &opts, budget);
        return;
    }
    // Inject 10 s into the mission (frame 150 at 15 FPS).
    let injection_frame = 150;
    let specs: Vec<FaultSpec> = ImageFault::paper_suite()
        .into_iter()
        .map(|m| FaultSpec::Input(InputFault::from_frame(m, injection_frame)))
        .collect();
    let results = run_study("ttv", neural_agent(), specs, scale, &opts);
    let mut table = report::Table::new(vec![
        "Injector (t0=10s)",
        "runs w/ violation",
        "median TTV (s)",
        "mean TTV (s)",
        "min",
        "max",
    ]);
    for result in &results {
        let ttvs = metrics::ttv_distribution(result.runs());
        let s = stats::Summary::of(&ttvs);
        table.row(vec![
            result.fault.clone(),
            format!("{}/{}", ttvs.len(), result.runs().len()),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.min),
            format!("{:.2}", s.max),
        ]);
    }
    println!(
        "Extension B — Time to traffic violation (injection at t0 = 10 s)\n\n{}",
        table.render()
    );
    export_json("ext_b_ttv", &results);
    shrink_after_study(&opts);
}
