//! Write-ahead journaling overhead and recovery-speed bench.
//!
//! Part one runs the same deterministic plan twice — plain
//! `Engine::execute` vs `avfi_store::run_spooled` into a fresh spool
//! directory — and reports the wall-clock overhead the journal adds.
//! The two results are asserted byte-identical before any timing is
//! trusted. Part two writes a journal of ~10k run records, then times a
//! cold `recover_file` pass (read + length/checksum validation of every
//! record), the operation a daemon restart pays per spooled plan.
//!
//! Emits one JSON object on stdout (the record format stored in
//! `BENCH_*.json` at the repo root).
//!
//! Usage: `store_overhead [--runs N] [--reps R] [--records K]`

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::engine::NullSink;
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::{Engine, WorkPlan};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_store::{recover_file, Journal, JournalRecord};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

fn bench_plan(runs_per_scenario: usize) -> WorkPlan {
    let scenario = |seed: u64| {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(15.0)
            .min_route_length(50.0)
            .build()
    };
    let campaign = |seed: u64, fault: FaultSpec| {
        CampaignConfig::builder(vec![scenario(seed), scenario(seed + 1)])
            .runs_per_scenario(runs_per_scenario)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build()
    };
    WorkPlan::new()
        .with_study("baseline", vec![campaign(6400, FaultSpec::None)])
        .with_study(
            "output-delay",
            vec![campaign(
                6450,
                FaultSpec::Timing(TimingFault::OutputDelay { frames: 8 }),
            )],
        )
}

fn fresh_dir(tag: &str, rep: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "avfi-store-bench-{tag}-{rep}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct Record {
    bench: &'static str,
    description: String,
    total_runs: usize,
    reps: usize,
    plain_ms: f64,
    journaled_ms: f64,
    overhead_pct: f64,
    recovery: Recovery,
    notes: &'static str,
}

#[derive(Serialize)]
struct Recovery {
    records: usize,
    journal_bytes: u64,
    recover_ms: f64,
    records_per_sec: f64,
}

fn main() {
    let mut runs_per_scenario = 12usize;
    let mut reps = 3usize;
    let mut records = 10_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                runs_per_scenario = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(runs_per_scenario);
            }
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--records" => {
                records = args.next().and_then(|v| v.parse().ok()).unwrap_or(records);
            }
            _ => {
                eprintln!("usage: store_overhead [--runs N] [--reps R] [--records K]");
                std::process::exit(2);
            }
        }
    }

    let plan = bench_plan(runs_per_scenario);
    let total_runs = plan.total_runs();
    let engine = Engine::new().workers(2);

    eprintln!("[store_overhead] {total_runs} runs x {reps} reps, plain vs journaled");
    let golden = serde_json::to_string(&engine.execute(&plan)).expect("golden serializes");

    let mut plain = Vec::with_capacity(reps);
    for _ in 0..reps {
        let started = Instant::now();
        let results = engine.execute(&plan);
        plain.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            serde_json::to_string(&results).expect("results serialize"),
            golden
        );
    }

    let mut journaled = Vec::with_capacity(reps);
    for rep in 0..reps {
        let dir = fresh_dir("spool", rep);
        let started = Instant::now();
        let results =
            avfi_store::run_spooled(&engine, &plan, &dir, "off", &NullSink).expect("spooled run");
        journaled.push(started.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            serde_json::to_string(&results).expect("results serialize"),
            golden,
            "journaled run must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let plain_ms = median(&mut plain);
    let journaled_ms = median(&mut journaled);
    let overhead_pct = (journaled_ms - plain_ms) / plain_ms * 100.0;

    eprintln!("[store_overhead] recovery of a {records}-record journal");
    let dir = fresh_dir("recover", 0);
    let path = dir.join("plan-1.avj");
    let result_json = {
        // One real run result, reused for every record: recovery cost is
        // per-byte, not per-distinct-payload.
        let solo = engine.execute(&bench_plan(1));
        serde_json::to_string(&solo[0].campaigns[0].runs()[0]).expect("run serializes")
    };
    {
        let mut journal = Journal::create(&path).expect("create journal");
        journal
            .append(&JournalRecord::PlanSubmitted {
                plan_json: serde_json::to_string(&plan).expect("plan serializes"),
                trace_level: "off".into(),
            })
            .expect("append submission");
        for i in 0..records {
            journal
                .append(&JournalRecord::RunCompleted {
                    flat_index: i as u64,
                    result_json: result_json.clone(),
                })
                .expect("append record");
        }
    }
    let journal_bytes = std::fs::metadata(&path).expect("journal metadata").len();
    let started = Instant::now();
    let (recovered, _valid) = recover_file(&path).expect("recover");
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovered.len(), records + 1, "all records must recover");
    let _ = std::fs::remove_dir_all(&dir);

    let record = Record {
        bench: "store_overhead",
        description: format!(
            "wall-clock of the identical {total_runs}-run deterministic plan, plain \
             Engine::execute vs avfi_store::run_spooled journaling every run into a fresh \
             spool (byte-identity of the results asserted each rep, median of {reps}); plus \
             a cold recover_file pass over a {records}-record journal (read + length and \
             FNV-checksum validation of every record), the per-plan cost of a daemon \
             restart with --spool"
        ),
        total_runs,
        reps,
        plain_ms,
        journaled_ms,
        overhead_pct,
        recovery: Recovery {
            records: records + 1,
            journal_bytes,
            recover_ms,
            records_per_sec: (records as f64 + 1.0) / (recover_ms / 1e3),
        },
        notes: "the journal adds one small buffered write_all + flush per ~10 ms run, so the \
                overhead is file-system noise rather than a tax that scales with plan size; \
                recovery is a single sequential read with 12 bytes of framing per record, so \
                restart cost stays far below one run's wall-clock even for journals orders of \
                magnitude larger than any real campaign",
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&record).expect("record serializes")
    );
}
