//! Figure 3 reproduction: distribution of traffic violations per km driven
//! with different input fault injectors.
//!
//! Usage: `cargo run --release -p avfi-bench --bin fig3_violations_per_km
//! [--quick] [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox]`

use avfi_bench::experiments::{export_json, input_fault_study, render_fig3, ExecOptions, Scale};

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[fig3] scale = {scale:?}, exec = {opts:?}");
    let results = input_fault_study(scale, &opts);
    println!("{}", render_fig3(&results));
    export_json("fig3_violations_per_km", &results);
}
