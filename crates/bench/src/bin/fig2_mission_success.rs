//! Figure 2 reproduction: mission success rate for an autonomous vehicle
//! with different input fault injectors.
//!
//! Usage: `cargo run --release -p avfi-bench --bin fig2_mission_success
//! [--quick] [--workers N] [--progress]
//! [--trace DIR] [--trace-level off|summary|blackbox]`

use avfi_bench::experiments::{export_json, input_fault_study, render_fig2, ExecOptions, Scale};

fn main() {
    let scale = Scale::from_args();
    let opts = ExecOptions::from_args();
    eprintln!("[fig2] scale = {scale:?}, exec = {opts:?}");
    let results = input_fault_study(scale, &opts);
    println!("{}", render_fig2(&results));
    export_json("fig2_mission_success", &results);
}
