//! Figure 2 reproduction: mission success rate for an autonomous vehicle
//! with different input fault injectors.
//!
//! Usage: `cargo run --release -p avfi-bench --bin fig2_mission_success
//! [--quick]`

use avfi_bench::experiments::{export_json, input_fault_study, render_fig2, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("[fig2] scale = {scale:?}");
    let results = input_fault_study(scale);
    println!("{}", render_fig2(&results));
    export_json("fig2_mission_success", &results);
}
