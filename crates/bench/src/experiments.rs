//! Shared experiment machinery: evaluation scenarios, cached agent
//! training, and the campaign studies behind each figure.
//!
//! Studies are *declarative*: a [`StudySpec`] names an agent and a sweep
//! of fault specs, expands into campaigns over the evaluation suite, and
//! executes through the deterministic work-stealing
//! [`Engine`](avfi_core::engine::Engine) — every (study × fault ×
//! scenario × repetition) tuple flows through one flattened work queue,
//! so no cores idle between campaigns and results are bit-identical for
//! any `--workers` count.

use avfi_agent::train::train_default_agent;
use avfi_core::adaptive::{
    run_adaptive, AdaptiveConfig, AdaptiveOutcome, AdaptiveSpace, AdaptiveTrajectory,
};
use avfi_core::campaign::{AgentSpec, Campaign, CampaignConfig, CampaignResult};
use avfi_core::engine::{Engine, StderrProgress, StudyResult, TraceConfig, WorkPlan};
use avfi_core::fault::input::{ImageFault, InputFault};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::shrink::{shrink_trace, ShrinkConfig};
use avfi_core::{metrics, report, stats};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::weather::Weather;
use avfi_trace::{list_trace_files, read_trace_file, TraceLevel};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Experiment scale: `quick` for smoke tests and criterion, `full` for the
/// figure reproductions in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Number of evaluation scenarios.
    pub scenarios: usize,
    /// Missions per scenario per injector.
    pub runs: usize,
    /// Mission time budget, seconds.
    pub budget: f64,
}

impl Scale {
    /// Small scale for CI / criterion.
    pub fn quick() -> Scale {
        Scale {
            scenarios: 2,
            runs: 2,
            budget: 90.0,
        }
    }

    /// Paper-scale campaigns.
    pub fn full() -> Scale {
        Scale {
            scenarios: 4,
            runs: 5,
            budget: 150.0,
        }
    }

    /// Parses `--quick` from argv (binaries share this convention).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::full()
        }
    }
}

/// Engine execution options shared by every experiment binary:
/// `--workers N` (0 = one per core), `--progress` (stream engine events
/// to stderr), the flight recorder (`--trace DIR` plus
/// `--trace-level off|summary|blackbox`), post-study failure
/// minimization (`--shrink DIR`, requires `--trace`), and durable
/// checkpointing (`--spool DIR`: journal every completed run so an
/// interrupted invocation resumes where it stopped, byte-identically).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOptions {
    /// Engine worker threads (0 = one per available core).
    pub workers: usize,
    /// Stream progress events to stderr.
    pub progress: bool,
    /// Flight-recorder trace directory (`None` disables tracing).
    pub trace: Option<PathBuf>,
    /// Flight-recorder detail level (meaningful only with `trace`).
    pub trace_level: TraceLevel,
    /// Minimal-repro output directory: after the study, every failed
    /// trace is delta-debugged into a minimal repro (`None` disables).
    pub shrink: Option<PathBuf>,
    /// Checkpoint directory: write-ahead journal every completed run
    /// (`avfi-store`), resuming any earlier interrupted invocation of
    /// the same plan found there (`None` disables).
    pub spool: Option<PathBuf>,
}

impl ExecOptions {
    /// Parses `--workers N`, `--progress`, `--trace DIR`,
    /// `--trace-level LEVEL`, `--shrink DIR`, and `--spool DIR` from
    /// argv.
    pub fn from_args() -> ExecOptions {
        Self::parse(std::env::args())
    }

    fn parse(args: impl Iterator<Item = String>) -> ExecOptions {
        let mut opts = ExecOptions::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--workers" => {
                    opts.workers = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                }
                "--progress" => opts.progress = true,
                "--trace" => {
                    opts.trace = args.next().map(PathBuf::from);
                    // `--trace` alone means "record": default to blackbox
                    // unless a level was (or will be) given explicitly.
                    if opts.trace_level == TraceLevel::Off {
                        opts.trace_level = TraceLevel::Blackbox;
                    }
                }
                "--trace-level" => {
                    if let Some(level) = args.next().as_deref().and_then(TraceLevel::parse) {
                        opts.trace_level = level;
                    }
                }
                "--shrink" => opts.shrink = args.next().map(PathBuf::from),
                "--spool" => opts.spool = args.next().map(PathBuf::from),
                _ => {}
            }
        }
        opts
    }

    /// Executes a work plan through the engine with these options. With
    /// `--spool DIR` the run is checkpointed through
    /// [`avfi_store::run_spooled`]: every completed run is journaled, a
    /// journal left by an interrupted earlier invocation is resumed
    /// (only the gap re-executes), and the results are byte-identical
    /// either way.
    pub fn execute(&self, plan: &WorkPlan) -> Vec<StudyResult> {
        let mut engine = Engine::new().workers(self.workers);
        if let Some(dir) = &self.trace {
            engine = engine.with_trace(TraceConfig::new(dir, self.trace_level));
        }
        let progress = StderrProgress::default();
        let sink: &dyn avfi_core::ProgressSink = if self.progress {
            &progress
        } else {
            &avfi_core::engine::NullSink
        };
        if let Some(spool) = &self.spool {
            return avfi_store::run_spooled(&engine, plan, spool, self.trace_level.as_str(), sink)
                .unwrap_or_else(|e| {
                    panic!("--spool {}: {e}", spool.display());
                });
        }
        engine.execute_with(plan, sink)
    }
}

/// Declarative description of one study: a named sweep of fault specs
/// over the evaluation suite with one agent.
#[derive(Debug, Clone)]
pub struct StudySpec {
    /// Study name (used in plans and progress events).
    pub name: &'static str,
    /// The agent under test.
    pub agent: AgentSpec,
    /// One campaign per fault spec, in output order.
    pub faults: Vec<FaultSpec>,
}

impl StudySpec {
    /// Expands the study into campaign configurations at `scale`.
    pub fn campaigns(&self, scale: Scale) -> Vec<CampaignConfig> {
        self.faults
            .iter()
            .map(|fault| {
                CampaignConfig::builder(evaluation_suite(scale))
                    .runs_per_scenario(scale.runs)
                    .fault(fault.clone())
                    .agent(self.agent.clone())
                    .build()
            })
            .collect()
    }
}

/// Builds a work plan from declarative studies at `scale`.
pub fn plan_studies(studies: &[StudySpec], scale: Scale) -> WorkPlan {
    let mut plan = WorkPlan::new();
    for study in studies {
        plan.add_study(study.name, study.campaigns(scale));
    }
    plan
}

/// Runs one declarative study through the engine and returns its
/// campaigns in fault-spec order.
pub fn run_study(
    name: &'static str,
    agent: AgentSpec,
    faults: Vec<FaultSpec>,
    scale: Scale,
    opts: &ExecOptions,
) -> Vec<CampaignResult> {
    let plan = plan_studies(
        &[StudySpec {
            name,
            agent,
            faults,
        }],
        scale,
    );
    opts.execute(&plan)
        .pop()
        .expect("plan has one study")
        .campaigns
}

/// Flat-plan index encoded in a trace file name (`run-000042.avtr` →
/// `42`), used to pair each minimal repro with its source trace.
pub fn trace_flat_index(path: &Path) -> Option<usize> {
    path.file_stem()?
        .to_str()?
        .strip_prefix("run-")?
        .parse()
        .ok()
}

/// Shrinks every failed trace in `files` into a minimal, replay-verified
/// repro under `out_dir`: `minimal-{i:06}.json` (the repro) and
/// `shrink-{i:06}.json` (the full candidate log), where `i` is the
/// source trace's flat-plan index. Neural traces use `explicit_weights`
/// when given, else the cached deterministic training run. Returns
/// `(minimized, skipped)`; skipped covers unreadable traces, successful
/// runs, and baseline mismatches (each reported to stderr).
pub fn shrink_traces(
    files: &[PathBuf],
    out_dir: &Path,
    workers: usize,
    config: &ShrinkConfig,
    explicit_weights: Option<&[u8]>,
) -> (usize, usize) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("[shrink] cannot create {}: {e}", out_dir.display());
        return (0, files.len());
    }
    let engine = Engine::new().workers(workers);
    let (mut minimized, mut skipped) = (0usize, 0usize);
    for (position, path) in files.iter().enumerate() {
        let trace = match read_trace_file(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[shrink] {e}");
                skipped += 1;
                continue;
            }
        };
        let cached;
        let weights: Option<&[u8]> = if trace.header.agent == "il-cnn" {
            match explicit_weights {
                Some(w) => Some(w),
                None => {
                    cached = trained_weights();
                    Some(cached.as_slice())
                }
            }
        } else {
            None
        };
        // The repro embeds the bare file name, not the path: golden
        // diffs must not depend on where the smoke dir landed.
        let source = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let outcome = match shrink_trace(&engine, &source, &trace, weights, config) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("[shrink] {source}: {e}");
                skipped += 1;
                continue;
            }
        };
        let index = trace_flat_index(path).unwrap_or(position);
        let repro_path = out_dir.join(format!("minimal-{index:06}.json"));
        let log_path = out_dir.join(format!("shrink-{index:06}.json"));
        let repro_json = serde_json::to_string_pretty(&outcome.repro).expect("repro serializes");
        let log_json = serde_json::to_string_pretty(&outcome.log).expect("log serializes");
        if let Err(e) = std::fs::write(&repro_path, repro_json) {
            eprintln!("[shrink] cannot write {}: {e}", repro_path.display());
            skipped += 1;
            continue;
        }
        if let Err(e) = std::fs::write(&log_path, log_json) {
            eprintln!("[shrink] cannot write {}: {e}", log_path.display());
        }
        eprintln!(
            "[shrink] {source}: {} reduction(s) in {} iteration(s), {} runs → {}",
            outcome.repro.reductions.len(),
            outcome.repro.iterations,
            outcome.repro.runs_spent,
            repro_path.display()
        );
        minimized += 1;
    }
    (minimized, skipped)
}

/// Post-study minimization hook: when `--shrink DIR` was given together
/// with `--trace`, delta-debugs every failed trace the study just
/// recorded into minimal repros under `DIR`.
pub fn shrink_after_study(opts: &ExecOptions) {
    let Some(out_dir) = &opts.shrink else { return };
    let Some(trace_dir) = &opts.trace else {
        eprintln!("[avfi-bench] --shrink requires --trace DIR (no traces recorded)");
        return;
    };
    let files = match list_trace_files(trace_dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "[avfi-bench] --shrink: cannot list {}: {e}",
                trace_dir.display()
            );
            return;
        }
    };
    if files.is_empty() {
        eprintln!(
            "[avfi-bench] --shrink: no traces under {} (no failures recorded?)",
            trace_dir.display()
        );
        return;
    }
    let (minimized, skipped) = shrink_traces(
        &files,
        out_dir,
        opts.workers,
        &ShrinkConfig::default(),
        None,
    );
    eprintln!(
        "[avfi-bench] shrink: {minimized} trace(s) minimized, {skipped} skipped → {}",
        out_dir.display()
    );
}

/// The adaptive search space at `scale`: the evaluation suite crossed
/// with the paper channel set (the five Figure 2/3 camera models, GPS /
/// speed / LIDAR data faults, stuck-at hardware faults, output delay),
/// three log-spaced magnitude bands up to paper severity, and two
/// injection onsets (mission start and frame 150 — the `ext_b` 10 s
/// onset). Most of the lattice is benign by construction — the paper's
/// observation that uniform sweeps waste budget on non-activating
/// injections is the premise the planner exploits.
pub fn adaptive_space(scale: Scale) -> AdaptiveSpace {
    AdaptiveSpace {
        scenarios: evaluation_suite(scale),
        channels: AdaptiveSpace::paper_channels(),
        magnitudes: vec![0.1, 0.3, 1.0],
        onsets: vec![0, 150],
    }
}

/// Default adaptive budget/batch at `scale` (seed matches the campaign
/// convention; override per flag).
pub fn adaptive_defaults(scale: Scale) -> AdaptiveConfig {
    if scale == Scale::quick() {
        AdaptiveConfig {
            budget: 32,
            batch: 8,
            seed: 2018,
        }
    } else {
        AdaptiveConfig {
            budget: 240,
            batch: 12,
            seed: 2018,
        }
    }
}

/// Runs one adaptive search over `space` with the cached neural agent
/// through an engine built from `opts` (workers only — the planner
/// captures its own failure traces, so the engine recorder stays off).
pub fn run_adaptive_study(
    space: &AdaptiveSpace,
    config: AdaptiveConfig,
    opts: &ExecOptions,
) -> AdaptiveOutcome {
    let engine = Engine::new().workers(opts.workers);
    run_adaptive(&engine, space, config, &neural_agent(), "adaptive")
}

/// Renders the failures-found table of an adaptive search: every pulled
/// arm ranked by posterior mean failure probability.
pub fn render_adaptive(trajectory: &AdaptiveTrajectory) -> String {
    let mut table = report::Table::new(vec![
        "Arm", "Scenario", "Channel", "Mag", "Onset", "Pulls", "Fail", "P(fail)", "",
    ]);
    for summary in &trajectory.report.top_arms {
        let arm = &trajectory.arms[summary.arm];
        table.row(vec![
            format!("#{}", arm.index),
            format!("s{}", arm.scenario_index),
            arm.channel.clone(),
            format!("{:.2}", arm.magnitude),
            format!("{}f", arm.onset),
            summary.pulls.to_string(),
            summary.failures.to_string(),
            format!("{:.2}", summary.mean),
            report::bar(summary.mean * 100.0, 100.0, 20),
        ]);
    }
    let r = &trajectory.report;
    format!(
        "Adaptive search — {} failures in {} runs ({:.2} failures/run, budget {})\n\n{}",
        r.failures,
        r.spent,
        r.failures_per_run,
        r.budget,
        table.render()
    )
}

/// Writes an adaptive trajectory as JSON into `results/<name>.json`
/// (same `AVFI_RESULTS_DIR` override as [`export_json`]).
pub fn export_trajectory(name: &str, trajectory: &AdaptiveTrajectory) {
    let dir = std::env::var_os("AVFI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(trajectory) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("[avfi-bench] could not write {}: {e}", path.display());
            } else {
                eprintln!("[avfi-bench] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[avfi-bench] serialization failed: {e}"),
    }
}

/// The evaluation scenario suite: unsignalized grid towns with light
/// traffic.
///
/// Unsignalized because the conditional imitation agent of Codevilla et
/// al. does not obey traffic lights (CARLA's CoRL benchmark excluded
/// red-light infractions for the same reason); with signals on, the
/// NoInject baseline would be dominated by red-light violations instead of
/// fault effects. See DESIGN.md.
pub fn evaluation_suite(scale: Scale) -> Vec<Scenario> {
    let seeds = [211u64, 223, 237, 251, 263, 277];
    let weathers = [
        Weather::ClearNoon,
        Weather::ClearNoon,
        Weather::Overcast,
        Weather::ClearNoon,
        Weather::Overcast,
        Weather::ClearNoon,
    ];
    (0..scale.scenarios.min(seeds.len()))
        .map(|i| {
            let mut town = TownSpec::grid(3, 3);
            town.signalized = false;
            Scenario::builder(town)
                .seed(seeds[i])
                .npc_vehicles(2)
                .pedestrians(2)
                .pedestrian_cross_rate(0.008)
                .weather(weathers[i])
                .time_budget(scale.budget)
                .min_route_length(150.0)
                .build()
        })
        .collect()
}

/// Trains (or loads from the on-disk cache) the default IL agent weights.
///
/// Training is deterministic (seed 42) and takes ~10 s in release mode;
/// the result is cached in `target/avfi-il-weights.bin` and in-process.
pub fn trained_weights() -> Arc<Vec<u8>> {
    static WEIGHTS: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    WEIGHTS
        .get_or_init(|| {
            let path = weights_cache_path();
            if let Ok(bytes) = std::fs::read(&path) {
                if avfi_agent::IlNetwork::from_weights(&bytes).is_ok() {
                    return Arc::new(bytes);
                }
            }
            eprintln!(
                "[avfi-bench] training IL agent (cached at {})",
                path.display()
            );
            let (mut net, losses) = train_default_agent(42);
            eprintln!("[avfi-bench] imitation losses per epoch: {losses:?}");
            let bytes = net.to_weights();
            let _ = std::fs::create_dir_all(path.parent().expect("cache dir"));
            let _ = std::fs::write(&path, &bytes);
            Arc::new(bytes)
        })
        .clone()
}

fn weights_cache_path() -> PathBuf {
    // crates/bench/../../target/avfi-il-weights.bin
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join("avfi-il-weights.bin")
}

/// The neural agent spec backed by the cached weights.
pub fn neural_agent() -> AgentSpec {
    AgentSpec::Neural {
        weights: trained_weights(),
    }
}

/// Runs one campaign of `fault` over the evaluation suite (single-campaign
/// convenience; studies should build a work plan so campaigns share one
/// queue).
pub fn run_campaign(fault: FaultSpec, agent: AgentSpec, scale: Scale) -> CampaignResult {
    let config = CampaignConfig::builder(evaluation_suite(scale))
        .runs_per_scenario(scale.runs)
        .fault(fault)
        .agent(agent)
        .build();
    Campaign::new(config).run()
}

/// The six input-injector configurations of Figures 2 and 3, in paper
/// order.
pub fn input_fault_specs() -> Vec<FaultSpec> {
    let mut specs = vec![FaultSpec::None];
    specs.extend(
        ImageFault::paper_suite()
            .into_iter()
            .map(|m| FaultSpec::Input(InputFault::always(m))),
    );
    specs
}

/// Runs the Figure 2/3 study: one campaign per input injector, all
/// flattened into one engine queue.
pub fn input_fault_study(scale: Scale, opts: &ExecOptions) -> Vec<CampaignResult> {
    run_study(
        "input-faults",
        neural_agent(),
        input_fault_specs(),
        scale,
        opts,
    )
}

/// The output-delay sweep of Figure 4, in frames (15 FPS ⇒ 30 frames =
/// 2 s).
pub const FIG4_DELAYS: [usize; 5] = [0, 5, 10, 20, 30];

/// The Figure 4 fault specs, one per delay (0 frames ⇒ fault-free).
pub fn output_delay_specs() -> Vec<FaultSpec> {
    FIG4_DELAYS
        .iter()
        .map(|&frames| {
            if frames == 0 {
                FaultSpec::None
            } else {
                FaultSpec::Timing(TimingFault::OutputDelay { frames })
            }
        })
        .collect()
}

/// Runs the Figure 4 study: one campaign per output delay, all flattened
/// into one engine queue.
pub fn output_delay_study(scale: Scale, opts: &ExecOptions) -> Vec<CampaignResult> {
    run_study(
        "output-delay",
        neural_agent(),
        output_delay_specs(),
        scale,
        opts,
    )
}

/// Renders the Figure 2 table (mission success rate per injector).
pub fn render_fig2(results: &[CampaignResult]) -> String {
    let mut table = report::Table::new(vec!["Input Fault Injector", "Runs", "MSR (%)", ""]);
    for r in results {
        let msr = metrics::mission_success_rate(r.runs());
        table.row(vec![
            r.fault.clone(),
            r.runs().len().to_string(),
            format!("{msr:.1}"),
            report::bar(msr, 100.0, 25),
        ]);
    }
    format!(
        "Figure 2 — Mission success rate under input fault injectors\n\n{}",
        table.render()
    )
}

/// Renders the Figure 3 table (violations-per-km distribution per
/// injector, with a text box plot).
pub fn render_fig3(results: &[CampaignResult]) -> String {
    let dists: Vec<Vec<f64>> = results
        .iter()
        .map(|r| metrics::vpk_distribution(r.runs()))
        .collect();
    let axis_hi = dists
        .iter()
        .flatten()
        .cloned()
        .fold(1.0f64, f64::max)
        .ceil();
    let mut table = report::Table::new(vec![
        "Input Fault Injector",
        "median",
        "IQR",
        "mean",
        "max",
        &format!("VPK distribution [0, {axis_hi:.0}]"),
    ]);
    for (r, d) in results.iter().zip(&dists) {
        let s = stats::Summary::of(d);
        table.row(vec![
            r.fault.clone(),
            format!("{:.2}", s.median),
            format!("{:.2}", s.iqr()),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.max),
            report::box_plot_row(&s, 0.0, axis_hi, 36),
        ]);
    }
    format!(
        "Figure 3 — Total violations per km under input fault injectors\n\n{}",
        table.render()
    )
}

/// Renders the Figure 4 table (violations per km vs output delay).
pub fn render_fig4(results: &[CampaignResult]) -> String {
    let dists: Vec<Vec<f64>> = results
        .iter()
        .map(|r| metrics::vpk_distribution(r.runs()))
        .collect();
    let axis_hi = dists
        .iter()
        .flatten()
        .cloned()
        .fold(1.0f64, f64::max)
        .ceil();
    let mut table = report::Table::new(vec![
        "Output Delay (frames)",
        "(seconds)",
        "median VPK",
        "mean VPK",
        "MSR (%)",
        &format!("VPK distribution [0, {axis_hi:.0}]"),
    ]);
    for ((r, d), &frames) in results.iter().zip(&dists).zip(FIG4_DELAYS.iter()) {
        let s = stats::Summary::of(d);
        table.row(vec![
            frames.to_string(),
            format!("{:.2}", frames as f64 / 15.0),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
            format!("{:.1}", metrics::mission_success_rate(r.runs())),
            report::box_plot_row(&s, 0.0, axis_hi, 36),
        ]);
    }
    format!(
        "Figure 4 — Violations per km vs injected output delay (15 FPS)\n\n{}",
        table.render()
    )
}

/// Writes campaign results as JSON into `results/<name>.json` under the
/// repository root (best effort; failures are printed, not fatal). The
/// `AVFI_RESULTS_DIR` environment variable overrides the output directory
/// (the smoke-golden gate uses it to keep checked-in results pristine).
pub fn export_json(name: &str, results: &[CampaignResult]) {
    let dir = std::env::var_os("AVFI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(results) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("[avfi-bench] could not write {}: {e}", path.display());
            } else {
                eprintln!("[avfi-bench] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("[avfi-bench] serialization failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_and_unsignalized() {
        let a = evaluation_suite(Scale::quick());
        let b = evaluation_suite(Scale::quick());
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert!(!x.town.signalized);
        }
    }

    #[test]
    fn input_specs_cover_paper_axis() {
        let specs = input_fault_specs();
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "NoInject",
                "Gaussian",
                "S&P",
                "SolidOcc",
                "TranspOcc",
                "WaterDrop"
            ]
        );
    }

    #[test]
    fn fig4_sweep_matches_paper() {
        assert_eq!(FIG4_DELAYS, [0, 5, 10, 20, 30]);
        let labels: Vec<String> = output_delay_specs().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "NoInject",
                "delay 5f",
                "delay 10f",
                "delay 20f",
                "delay 30f"
            ]
        );
    }

    #[test]
    fn exec_options_parse_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            ExecOptions::parse(args(&["bin", "--workers", "6", "--progress"]).into_iter()),
            ExecOptions {
                workers: 6,
                progress: true,
                ..ExecOptions::default()
            }
        );
        assert_eq!(
            ExecOptions::parse(args(&["bin", "--quick"]).into_iter()),
            ExecOptions::default()
        );
        // A malformed count falls back to auto.
        assert_eq!(
            ExecOptions::parse(args(&["bin", "--workers", "lots"]).into_iter()).workers,
            0
        );
    }

    #[test]
    fn exec_options_parse_trace_flags() {
        let args = |v: &[&str]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        // `--trace` alone defaults to blackbox.
        let o = ExecOptions::parse(args(&["bin", "--trace", "traces/"]));
        assert_eq!(o.trace.as_deref(), Some(std::path::Path::new("traces/")));
        assert_eq!(o.trace_level, TraceLevel::Blackbox);
        // An explicit level wins regardless of flag order.
        let o = ExecOptions::parse(args(&["bin", "--trace", "t", "--trace-level", "summary"]));
        assert_eq!(o.trace_level, TraceLevel::Summary);
        let o = ExecOptions::parse(args(&["bin", "--trace-level", "summary", "--trace", "t"]));
        assert_eq!(o.trace_level, TraceLevel::Summary);
        // `off` disables even with a directory given.
        let o = ExecOptions::parse(args(&["bin", "--trace", "t", "--trace-level", "off"]));
        assert_eq!(o.trace_level, TraceLevel::Off);
        // No trace flags: recorder stays off.
        assert_eq!(ExecOptions::default().trace, None);
    }

    #[test]
    fn exec_options_parse_shrink_flag() {
        let args = |v: &[&str]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        let o = ExecOptions::parse(args(&["bin", "--trace", "t", "--shrink", "minimized/"]));
        assert_eq!(
            o.shrink.as_deref(),
            Some(std::path::Path::new("minimized/"))
        );
        assert_eq!(ExecOptions::default().shrink, None);
    }

    #[test]
    fn exec_options_parse_spool_flag() {
        let args = |v: &[&str]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        let o = ExecOptions::parse(args(&["bin", "--spool", "checkpoints/"]));
        assert_eq!(
            o.spool.as_deref(),
            Some(std::path::Path::new("checkpoints/"))
        );
        assert_eq!(ExecOptions::default().spool, None);
    }

    #[test]
    fn trace_index_round_trips_file_names() {
        assert_eq!(
            trace_flat_index(Path::new("traces/run-000042.avtr")),
            Some(42)
        );
        assert_eq!(trace_flat_index(Path::new("run-123456.avtr")), Some(123456));
        assert_eq!(trace_flat_index(Path::new("notes.txt")), None);
    }

    #[test]
    fn study_plan_flattens_every_tuple() {
        let scale = Scale::quick();
        let studies = [
            StudySpec {
                name: "a",
                agent: AgentSpec::Expert,
                faults: input_fault_specs(),
            },
            StudySpec {
                name: "b",
                agent: AgentSpec::Expert,
                faults: output_delay_specs(),
            },
        ];
        let plan = plan_studies(&studies, scale);
        assert_eq!(plan.total_campaigns(), 11);
        assert_eq!(
            plan.total_runs(),
            11 * scale.scenarios * scale.runs,
            "every (study, fault, scenario, repetition) tuple must be queued"
        );
    }

    #[test]
    fn render_helpers_handle_empty_runs() {
        // Rendering must not panic on degenerate inputs.
        let results: Vec<CampaignResult> = Vec::new();
        assert!(render_fig2(&results).contains("Figure 2"));
        assert!(render_fig3(&results).contains("Figure 3"));
    }
}
