//! # avfi-bench — experiment harness for every figure of the AVFI paper
//!
//! The paper's evaluation is Figures 2–4 (Figure 1 is the architecture):
//!
//! * **Fig. 2** — mission success rate under the six input fault injectors
//!   {NoInject, Gaussian, S&P, SolidOcc, TranspOcc, WaterDrop},
//! * **Fig. 3** — traffic violations per km under the same injectors,
//! * **Fig. 4** — violations per km vs output delay {0, 5, 10, 20, 30}
//!   frames between the ADA and actuation (15 FPS).
//!
//! [`experiments`] provides the shared machinery (scenario suite, cached
//! agent training, campaign studies); each `src/bin/figN_*.rs` binary
//! regenerates one figure as a table; `benches/` adds criterion coverage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
