//! Differential oracle for the blocked, lane-batched conv/dense kernels.
//!
//! The blocked `forward` paths claim bit-identity with the retained scalar
//! `forward_reference` oracles (each lane is an independent output whose
//! accumulation order is untouched). This suite enforces that claim with
//! `f32::to_bits` comparison — not approximate equality — over randomized
//! shapes, strides, and paddings, plus deterministic adversarial shapes
//! (dimensions not a multiple of the lane width, 1×1 images, fewer outputs
//! than lanes) and the exact IL-CNN layer shapes.

use avfi_nn::layers::{Conv2d, Dense, Layer};
use avfi_nn::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn random_input(rng: &mut StdRng, shape: Vec<usize>) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        (0..n).map(|_| rng.random_range(-1.5f32..1.5)).collect(),
        shape,
    )
}

fn check_conv(
    (in_ch, out_ch): (usize, usize),
    (h, w): (usize, usize),
    k: usize,
    stride: usize,
    pad: usize,
    seed: u64,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut conv = Conv2d::new(in_ch, out_ch, k, stride, pad, &mut rng);
    let x = random_input(&mut rng, vec![in_ch, h, w]);
    let reference = conv.forward_reference(&x);
    for train in [false, true] {
        let blocked = conv.forward(&x, train);
        prop_assert_eq!(blocked.shape(), reference.shape());
        prop_assert_eq!(bits(&blocked), bits(&reference));
    }
    Ok(())
}

fn check_dense(in_dim: usize, out_dim: usize, seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dense = Dense::new(in_dim, out_dim, &mut rng);
    let x = random_input(&mut rng, vec![in_dim]);
    let reference = dense.forward_reference(&x);
    for train in [false, true] {
        let blocked = dense.forward(&x, train);
        prop_assert_eq!(blocked.shape(), reference.shape());
        prop_assert_eq!(bits(&blocked), bits(&reference));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn conv_blocked_matches_reference_bitwise(
        in_ch in 1usize..=4,
        out_ch in 1usize..=9,
        h in 1usize..=12,
        w in 1usize..=12,
        ki in 0usize..3,
        stride in 1usize..=2,
        pad_raw in 0usize..=5,
        seed in any::<u64>(),
    ) {
        let k = [1usize, 3, 5][ki];
        let pad = pad_raw.min(k);
        // Degenerate shapes (kernel larger than padded image) have no
        // output; skip them rather than constrain the generators.
        if h + 2 * pad >= k && w + 2 * pad >= k {
            check_conv((in_ch, out_ch), (h, w), k, stride, pad, seed)?;
        }
    }

    #[test]
    fn dense_blocked_matches_reference_bitwise(
        in_dim in 1usize..=70,
        out_dim in 1usize..=70,
        seed in any::<u64>(),
    ) {
        check_dense(in_dim, out_dim, seed)?;
    }
}

#[test]
fn conv_adversarial_shapes() {
    // (in_ch, out_ch, h, w, k, stride, pad): 1×1 images, widths around the
    // 4-lane block boundary, stride-2 with full padding, single-pixel
    // interiors, and kernels larger than the image.
    let cases: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
        (1, 1, 1, 1, 1, 1, 0),
        (1, 1, 1, 1, 3, 1, 1),
        (2, 3, 1, 1, 5, 2, 5),
        (1, 2, 3, 3, 3, 1, 1),
        (1, 2, 4, 5, 3, 1, 1),
        (1, 2, 5, 6, 3, 1, 1),
        (1, 2, 7, 7, 3, 1, 0),
        (3, 5, 9, 13, 3, 2, 1),
        (2, 4, 8, 11, 5, 2, 2),
        (1, 1, 2, 2, 5, 1, 2),
        (2, 2, 6, 4, 1, 2, 1),
        (1, 3, 10, 3, 3, 1, 3),
    ];
    for &(in_ch, out_ch, h, w, k, stride, pad) in cases {
        let seed = (in_ch * 31 + h * 7 + w * 3 + k) as u64;
        check_conv((in_ch, out_ch), (h, w), k, stride, pad, seed).unwrap_or_else(|e| {
            panic!("conv case {in_ch}x{out_ch} {h}x{w} k{k} s{stride} p{pad}: {e}")
        });
    }
}

#[test]
fn dense_adversarial_shapes() {
    // Output counts below, at, and just past the 8-lane block width.
    for &(in_dim, out_dim) in &[
        (1usize, 1usize),
        (5, 3),
        (7, 7),
        (8, 8),
        (9, 9),
        (16, 15),
        (17, 17),
        (64, 1),
        (1, 64),
    ] {
        check_dense(in_dim, out_dim, (in_dim * 100 + out_dim) as u64)
            .unwrap_or_else(|e| panic!("dense case {in_dim}->{out_dim}: {e}"));
    }
}

#[test]
fn il_cnn_layer_shapes_match_bitwise() {
    // The exact layer shapes of the IL-CNN driving agent (24×32 input).
    check_conv((1, 8), (24, 32), 5, 2, 2, 42).unwrap();
    check_conv((8, 16), (12, 16), 3, 2, 1, 43).unwrap();
    check_dense(768, 64, 44).unwrap();
    check_dense(65, 32, 45).unwrap();
    check_dense(32, 3, 46).unwrap();
}
