//! End-to-end gradient verification and learning-capacity tests for the
//! full network stack (conv → pool → dense), beyond the per-layer unit
//! checks.

use avfi_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu, Tanh};
use avfi_nn::loss::mse;
use avfi_nn::optim::{Adam, Optimizer};
use avfi_nn::{Sequential, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn small_cnn(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new();
    net.push(Conv2d::new(1, 4, 3, 1, 1, &mut rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Dense::new(4 * 4 * 4, 8, &mut rng));
    net.push(Tanh::new());
    net.push(Dense::new(8, 1, &mut rng));
    net
}

/// Finite-difference check of dL/dinput through the whole stack.
#[test]
fn full_network_input_gradient_matches_finite_difference() {
    let mut net = small_cnn(1);
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::from_vec(
        (0..64).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
        vec![1, 8, 8],
    );
    let target = Tensor::from_vec(vec![0.5], vec![1]);
    let out = net.forward(&x, true);
    let (l0, grad_l) = mse(&out, &target);
    let grad_in = net.backward(&grad_l);

    let eps = 1e-2f32;
    let mut checked = 0;
    for i in (0..64).step_by(7) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let (l1, _) = mse(&net.forward(&xp, false), &target);
        let numeric = (l1 - l0) / eps;
        let analytic = grad_in.data()[i];
        assert!(
            (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs().max(analytic.abs())),
            "at {i}: numeric {numeric} vs analytic {analytic}"
        );
        checked += 1;
    }
    assert!(checked >= 9);
}

/// Finite-difference check of dL/dW for a sampled set of parameters across
/// every parameterized layer.
#[test]
fn full_network_weight_gradients_match_finite_difference() {
    let mut net = small_cnn(3);
    let x = Tensor::from_vec(
        (0..64).map(|i| ((i % 9) as f32 - 4.0) * 0.1).collect(),
        vec![1, 8, 8],
    );
    let target = Tensor::from_vec(vec![-0.3], vec![1]);

    // Analytic gradients (train = true so layers cache for backward).
    let out = net.forward(&x, true);
    let (l0, grad_l) = mse(&out, &target);
    net.backward(&grad_l);
    let analytic: Vec<(String, usize, f32)> = {
        let params = net.params();
        params
            .iter()
            .map(|p| {
                (
                    p.name.clone(),
                    p.values.len() / 2,
                    p.grads[p.values.len() / 2],
                )
            })
            .collect()
    };
    // Zero the grads again (optimizer would) by stepping a no-op clone of
    // grads manually.
    for p in net.params() {
        for g in p.grads.iter_mut() {
            *g = 0.0;
        }
    }

    let eps = 1e-2f32;
    for (name, idx, analytic_g) in analytic {
        // Perturb that parameter.
        {
            let mut params = net.params();
            let p = params.iter_mut().find(|p| p.name == name).unwrap();
            p.values[idx] += eps;
        }
        let (l1, _) = mse(&net.forward(&x, false), &target);
        {
            let mut params = net.params();
            let p = params.iter_mut().find(|p| p.name == name).unwrap();
            p.values[idx] -= eps;
        }
        let numeric = (l1 - l0) / eps;
        assert!(
            (numeric - analytic_g).abs() < 2e-2 * (1.0 + numeric.abs().max(analytic_g.abs())),
            "{name}[{idx}]: numeric {numeric} vs analytic {analytic_g}"
        );
    }
}

/// The stack can learn a real vision task: regress the horizontal position
/// of a bright vertical bar in the image — a miniature of the lane-keeping
/// problem the IL agent faces.
#[test]
fn cnn_learns_bar_position_regression() {
    let mut net = small_cnn(4);
    let mut opt = Adam::new(5e-3);
    let mut rng = StdRng::seed_from_u64(5);
    let make_sample = |col: usize| {
        let mut img = vec![0.0f32; 64];
        for row in 0..8 {
            img[row * 8 + col] = 1.0;
        }
        let target = (col as f32 / 7.0) * 2.0 - 1.0;
        (Tensor::from_vec(img, vec![1, 8, 8]), target)
    };
    for _ in 0..400 {
        let col = rng.random_range(0..8);
        let (x, t) = make_sample(col);
        let out = net.forward(&x, true);
        let (_, g) = mse(&out, &Tensor::from_vec(vec![t], vec![1]));
        net.backward(&g);
        opt.step(&mut net.params());
    }
    let mut worst = 0.0f32;
    for col in 0..8 {
        let (x, t) = make_sample(col);
        let pred = net.forward(&x, false).data()[0];
        worst = worst.max((pred - t).abs());
    }
    assert!(worst < 0.35, "worst abs error {worst}");
}

/// Dropout regularization path: a network trains with dropout enabled and
/// behaves deterministically at inference.
#[test]
fn dropout_training_still_converges() {
    use avfi_nn::layers::Dropout;
    let mut rng = StdRng::seed_from_u64(6);
    let mut net = Sequential::new();
    net.push(Dense::new(2, 16, &mut rng));
    net.push(Relu::new());
    net.push(Dropout::new(0.25, 99));
    net.push(Dense::new(16, 1, &mut rng));
    let mut opt = Adam::new(1e-2);
    for _ in 0..600 {
        for (x, t) in [
            ([0.0f32, 0.0], 0.0f32),
            ([1.0, 0.0], 1.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 1.0], 0.0),
        ] {
            let out = net.forward(&Tensor::from_vec(x.to_vec(), vec![2]), true);
            let (_, g) = mse(&out, &Tensor::from_vec(vec![t], vec![1]));
            net.backward(&g);
            opt.step(&mut net.params());
        }
    }
    // Inference is deterministic (dropout off) and roughly solves XOR.
    let eval = |net: &mut Sequential, x: [f32; 2]| {
        net.forward(&Tensor::from_vec(x.to_vec(), vec![2]), false)
            .data()[0]
    };
    let a = eval(&mut net, [1.0, 0.0]);
    let b = eval(&mut net, [1.0, 0.0]);
    assert_eq!(a, b);
    assert!((eval(&mut net, [0.0, 0.0])).abs() < 0.4);
    assert!((eval(&mut net, [1.0, 0.0]) - 1.0).abs() < 0.4);
}
