//! Weights-fingerprint + logit-bitwise regression for the IL-CNN forward.
//!
//! A seeded replica of the driving agent's conditional imitation network
//! (same construction order, same RNG stream) fingerprints its serialized
//! weights with FNV-1a (as the trace `replay` tool does) and runs a fixed
//! input batch through every command head. Both the fingerprint and the
//! raw logit bit patterns are pinned in `tests/golden/logit_golden.json`:
//! a fingerprint mismatch fails loudly as *golden staleness* (weights or
//! init changed — re-bless deliberately), while a logit mismatch under a
//! matching fingerprint is a kernel bug. Regenerate with
//! `AVFI_BLESS_NN=1 cargo test -p avfi-nn --test logit_golden`.

use avfi_nn::layers::{Conv2d, Dense, Flatten, Relu};
use avfi_nn::serialize::save_weights;
use avfi_nn::{Sequential, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The checked-in golden document: the weights fingerprint identifies the
/// network the logits belong to, so staleness and kernel bugs fail apart.
#[derive(Debug, Serialize, Deserialize)]
struct Golden {
    seed: u64,
    fingerprint: String,
    logits: Vec<Vec<String>>,
}

/// Camera input size of the IL agent (NET_HEIGHT × NET_WIDTH).
const NET_H: usize = 24;
const NET_W: usize = 32;
const FEATURE_DIM: usize = 64;
const HEADS: usize = 4;
const SEED: u64 = 42;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/logit_golden.json"
);

/// Replicates `IlNetwork::new(seed)`: one RNG stream, trunk layers then
/// the four command heads, in declaration order. Kept in avfi-nn (which
/// cannot depend on avfi-agent) so the kernels are exercised through the
/// exact production layer shapes.
fn il_cnn(seed: u64) -> (Sequential, Vec<Sequential>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trunk = Sequential::new();
    trunk.push(Conv2d::new(1, 8, 5, 2, 2, &mut rng));
    trunk.push(Relu::new());
    trunk.push(Conv2d::new(8, 16, 3, 2, 1, &mut rng));
    trunk.push(Relu::new());
    trunk.push(Flatten::new());
    trunk.push(Dense::new(
        16 * (NET_H / 4) * (NET_W / 4),
        FEATURE_DIM,
        &mut rng,
    ));
    trunk.push(Relu::new());
    let heads = (0..HEADS)
        .map(|_| {
            let mut h = Sequential::new();
            h.push(Dense::new(FEATURE_DIM + 1, 32, &mut rng));
            h.push(Relu::new());
            h.push(Dense::new(32, 3, &mut rng));
            h
        })
        .collect();
    (trunk, heads)
}

/// FNV-1a 64-bit, the same function `avfi-trace` uses for payloads.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn weights_fingerprint(trunk: &mut Sequential, heads: &mut [Sequential]) -> u64 {
    let mut params = trunk.params();
    for head in heads.iter_mut() {
        params.extend(head.params());
    }
    fnv1a(&save_weights(&params))
}

/// Fixed input batch: three deterministic images × three speeds, run
/// through every head.
fn input_batch() -> Vec<(Tensor, f32)> {
    let image = |m: usize, half: f32, scale: f32| {
        Tensor::from_vec(
            (0..NET_H * NET_W)
                .map(|i| ((i % m) as f32 - half) * scale)
                .collect(),
            vec![1, NET_H, NET_W],
        )
    };
    vec![
        (image(13, 6.0, 0.05), 0.0),
        (image(11, 5.0, 0.08), 0.4),
        (image(17, 8.0, 0.03), 1.0),
    ]
}

/// All logits, as bit patterns: `logits[input * HEADS + head]` is the
/// three-value output of that head.
fn run_batch(trunk: &mut Sequential, heads: &mut [Sequential]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for (img, speed) in input_batch() {
        let features = trunk.forward(&img, false);
        let mut head_in = Vec::with_capacity(features.len() + 1);
        head_in.extend_from_slice(features.data());
        head_in.push(speed);
        let n = head_in.len();
        let head_in = Tensor::from_vec(head_in, vec![n]);
        for head in heads.iter_mut() {
            let logits = head.forward(&head_in, false);
            assert_eq!(logits.shape(), &[3]);
            out.push(logits.data().iter().map(|v| v.to_bits()).collect());
        }
    }
    out
}

fn hex(v: u32) -> String {
    format!("{v:#010x}")
}

#[test]
fn il_cnn_logits_match_golden_bitwise() {
    let (mut trunk, mut heads) = il_cnn(SEED);
    let fingerprint = weights_fingerprint(&mut trunk, &mut heads);
    let logits = run_batch(&mut trunk, &mut heads);
    let current = Golden {
        seed: SEED,
        fingerprint: format!("{fingerprint:#018x}"),
        logits: logits
            .iter()
            .map(|row| row.iter().map(|&b| hex(b)).collect())
            .collect(),
    };

    if std::env::var("AVFI_BLESS_NN").is_ok() {
        let mut rendered = serde_json::to_string_pretty(&current).expect("serialize golden");
        rendered.push('\n');
        std::fs::write(GOLDEN_PATH, rendered).expect("write golden");
        return;
    }

    let golden_raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden {GOLDEN_PATH} ({e}); run with AVFI_BLESS_NN=1 to create it")
    });
    let golden: Golden = serde_json::from_str(&golden_raw).expect("parse golden");

    // Fingerprint gate first: a drift here means the weights themselves
    // changed (init, RNG stream, serialization) — the golden is STALE and
    // must be re-blessed deliberately; it says nothing about the kernels.
    assert_eq!(
        golden.seed, SEED,
        "golden was blessed with a different seed"
    );
    assert_eq!(
        current.fingerprint, golden.fingerprint,
        "GOLDEN STALE: weights fingerprint drifted (got {}, golden {}); \
         the network init or serialization changed — re-bless with AVFI_BLESS_NN=1 \
         only if that change is intentional",
        current.fingerprint, golden.fingerprint
    );

    // Fingerprint matches, so any logit difference is a forward-kernel bug.
    assert_eq!(
        current.logits.len(),
        golden.logits.len(),
        "logit row count changed"
    );
    for (i, (got, want)) in current.logits.iter().zip(&golden.logits).enumerate() {
        assert_eq!(
            got,
            want,
            "KERNEL BUG: logits for input {} head {} differ bitwise from golden \
             (weights fingerprint matches, so this is a forward-pass change)",
            i / HEADS,
            i % HEADS
        );
    }
}
