//! Network containers: [`Sequential`] stacks and the command-conditional
//! [`Branched`] architecture of the imitation-learning agent.

use crate::layers::{Layer, ParamSlice};
use crate::tensor::Tensor;

/// An activation override installed by the machine-learning fault injector:
/// after layer `layer` runs, output unit `unit` is forced to `value`
/// (a stuck-at neuron fault).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationOverride {
    /// Index of the layer whose output is patched.
    pub layer: usize,
    /// Flat index of the output unit.
    pub unit: usize,
    /// Forced value.
    pub value: f32,
}

/// A stack of layers applied in order.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    overrides: Vec<ActivationOverride>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential {
            layers: Vec::new(),
            overrides: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer kind tags, in order (for fault localization UIs).
    pub fn layer_kinds(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.kind()).collect()
    }

    /// Installs a stuck-at activation override (ML neuron fault).
    pub fn add_override(&mut self, ov: ActivationOverride) {
        self.overrides.push(ov);
    }

    /// Removes all activation overrides.
    pub fn clear_overrides(&mut self) {
        self.overrides.clear();
    }

    /// Currently installed overrides.
    pub fn overrides(&self) -> &[ActivationOverride] {
        &self.overrides
    }

    /// Runs the stack forward. The input is only cloned when the stack is
    /// empty; the first layer reads it in place.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x: Option<Tensor> = None;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let mut out = layer.forward(x.as_ref().unwrap_or(input), train);
            for ov in &self.overrides {
                if ov.layer == i && ov.unit < out.len() {
                    out.data_mut()[ov.unit] = ov.value;
                }
            }
            x = Some(out);
        }
        x.unwrap_or_else(|| input.clone())
    }

    /// Backpropagates through the stack, returning ∂loss/∂input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All parameters with qualified names (`"<idx><kind>.<param>"`).
    pub fn params(&mut self) -> Vec<ParamSlice<'_>> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let kind = layer.kind();
            for mut p in layer.params() {
                p.name = format!("{kind}{i}.{}", p.name);
                out.push(p);
            }
        }
        out
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.values.len()).sum()
    }
}

/// The command-conditional network of Codevilla et al.: a shared trunk
/// (perception) feeding one head per high-level command; only the head
/// selected by the current command drives the output.
#[derive(Debug, Default)]
pub struct Branched {
    trunk: Sequential,
    heads: Vec<Sequential>,
    last_branch: Option<usize>,
}

impl Branched {
    /// Creates a branched network from a trunk and heads.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is empty.
    pub fn new(trunk: Sequential, heads: Vec<Sequential>) -> Self {
        assert!(!heads.is_empty(), "need at least one head");
        Branched {
            trunk,
            heads,
            last_branch: None,
        }
    }

    /// Number of heads.
    pub fn branch_count(&self) -> usize {
        self.heads.len()
    }

    /// The shared trunk.
    pub fn trunk_mut(&mut self) -> &mut Sequential {
        &mut self.trunk
    }

    /// A head by branch index.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is out of range.
    pub fn head_mut(&mut self, branch: usize) -> &mut Sequential {
        &mut self.heads[branch]
    }

    /// Runs the trunk and the selected head.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is out of range.
    pub fn forward(&mut self, input: &Tensor, branch: usize, train: bool) -> Tensor {
        assert!(branch < self.heads.len(), "branch {branch} out of range");
        let feat = self.trunk.forward(input, train);
        self.last_branch = Some(branch);
        self.heads[branch].forward(&feat, train)
    }

    /// Backpropagates through the head used in the last `forward`, then the
    /// trunk.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let b = self.last_branch.expect("backward before forward");
        let g = self.heads[b].backward(grad_out);
        self.trunk.backward(&g)
    }

    /// All parameters: trunk first, then each head, with qualified names.
    pub fn params(&mut self) -> Vec<ParamSlice<'_>> {
        let mut out = Vec::new();
        for mut p in self.trunk.params() {
            p.name = format!("trunk.{}", p.name);
            out.push(p);
        }
        for (h, head) in self.heads.iter_mut().enumerate() {
            for mut p in head.params() {
                p.name = format!("head{h}.{}", p.name);
                out.push(p);
            }
        }
        out
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.values.len()).sum()
    }

    /// Installs a stuck-at neuron fault in the trunk.
    pub fn add_trunk_override(&mut self, ov: ActivationOverride) {
        self.trunk.add_override(ov);
    }

    /// Clears all neuron faults (trunk and heads).
    pub fn clear_overrides(&mut self) {
        self.trunk.clear_overrides();
        for h in &mut self.heads {
            h.clear_overrides();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Tanh};
    use crate::loss::mse;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 8, &mut rng));
        net.push(Tanh::new());
        net.push(Dense::new(8, 1, &mut rng));
        net
    }

    #[test]
    fn sequential_learns_xor() {
        let mut net = xor_net(20);
        let mut opt = Adam::new(0.02);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..800 {
            for (x, y) in data {
                let out = net.forward(&Tensor::from_vec(x.to_vec(), vec![2]), true);
                let (_, g) = mse(&out, &Tensor::from_vec(vec![y], vec![1]));
                net.backward(&g);
                opt.step(&mut net.params());
            }
        }
        for (x, y) in data {
            let out = net.forward(&Tensor::from_vec(x.to_vec(), vec![2]), false);
            assert!(
                (out.data()[0] - y).abs() < 0.25,
                "xor({x:?}) = {} want {y}",
                out.data()[0]
            );
        }
    }

    #[test]
    fn params_are_named_and_counted() {
        let mut net = xor_net(21);
        let names: Vec<String> = net.params().iter().map(|p| p.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "dense0.weight",
                "dense0.bias",
                "dense2.weight",
                "dense2.bias"
            ]
        );
        assert_eq!(net.param_count(), 2 * 8 + 8 + 8 + 1);
    }

    #[test]
    fn override_forces_neuron() {
        let mut net = Sequential::new();
        let mut rng = StdRng::seed_from_u64(22);
        net.push(Dense::new(2, 4, &mut rng));
        net.push(Relu::new());
        net.add_override(ActivationOverride {
            layer: 1,
            unit: 2,
            value: 42.0,
        });
        let out = net.forward(&Tensor::from_vec(vec![0.1, 0.2], vec![2]), false);
        assert_eq!(out.data()[2], 42.0);
        net.clear_overrides();
        let out2 = net.forward(&Tensor::from_vec(vec![0.1, 0.2], vec![2]), false);
        assert_ne!(out2.data()[2], 42.0);
    }

    #[test]
    fn branched_heads_are_independent() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut trunk = Sequential::new();
        trunk.push(Dense::new(2, 4, &mut rng));
        trunk.push(Tanh::new());
        let heads = (0..3)
            .map(|_| {
                let mut h = Sequential::new();
                h.push(Dense::new(4, 1, &mut rng));
                h
            })
            .collect();
        let mut net = Branched::new(trunk, heads);
        let x = Tensor::from_vec(vec![0.5, -0.5], vec![2]);
        let y0 = net.forward(&x, 0, false);
        let y1 = net.forward(&x, 1, false);
        assert_ne!(y0.data(), y1.data(), "heads should differ at init");
        assert_eq!(net.branch_count(), 3);
    }

    #[test]
    fn branched_trains_one_head_at_a_time() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut trunk = Sequential::new();
        trunk.push(Dense::new(1, 8, &mut rng));
        trunk.push(Tanh::new());
        let heads = (0..2)
            .map(|_| {
                let mut h = Sequential::new();
                h.push(Dense::new(8, 1, &mut rng));
                h
            })
            .collect();
        let mut net = Branched::new(trunk, heads);
        let mut opt = Adam::new(0.02);
        // Head 0 learns y = x; head 1 learns y = -x.
        for _ in 0..500 {
            for x in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
                for (b, sign) in [(0usize, 1.0f32), (1, -1.0)] {
                    let out = net.forward(&Tensor::from_vec(vec![x], vec![1]), b, true);
                    let (_, g) = mse(&out, &Tensor::from_vec(vec![sign * x], vec![1]));
                    net.backward(&g);
                    opt.step(&mut net.params());
                }
            }
        }
        let x = Tensor::from_vec(vec![0.7], vec![1]);
        let y0 = net.forward(&x, 0, false).data()[0];
        let y1 = net.forward(&x, 1, false).data()[0];
        assert!((y0 - 0.7).abs() < 0.15, "head0={y0}");
        assert!((y1 + 0.7).abs() < 0.15, "head1={y1}");
    }

    #[test]
    fn branched_param_names_qualified() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut trunk = Sequential::new();
        trunk.push(Dense::new(1, 2, &mut rng));
        let mut h = Sequential::new();
        h.push(Dense::new(2, 1, &mut rng));
        let mut net = Branched::new(trunk, vec![h]);
        let names: Vec<String> = net.params().iter().map(|p| p.name.clone()).collect();
        assert!(names.iter().any(|n| n.starts_with("trunk.")));
        assert!(names.iter().any(|n| n.starts_with("head0.")));
    }
}
