//! Flatten layer.

use super::Layer;
use crate::tensor::Tensor;

/// Reshapes any tensor to a flat vector (and back during backprop).
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_shape = input.shape().to_vec();
        input.clone().reshaped(vec![input.len()])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_shape.is_empty(),
            "backward called before forward"
        );
        grad_out.clone().reshaped(self.cached_shape.clone())
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![3, 2, 2]);
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[3, 2, 2]);
        assert_eq!(g.data(), x.data());
    }
}
