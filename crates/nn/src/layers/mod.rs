//! Neural-network layers with hand-written forward/backward passes.
//!
//! Layers are stateful: `forward` caches what `backward` needs, and
//! parameter gradients accumulate until an optimizer consumes them. This
//! sample-at-a-time design (no batch dimension) keeps the code auditable;
//! minibatching is done by accumulating gradients across samples before an
//! optimizer step.

mod activation;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::{Relu, Tanh};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2d;

use crate::tensor::Tensor;

/// A named view of one parameter array and its gradient accumulator.
///
/// This is the machine-learning fault-injection surface: AVFI's localizer
/// enumerates `ParamSlice`s to pick "specific neurons and layers", and its
/// injectors mutate `values` in place (noise, bit flips, stuck-at).
#[derive(Debug)]
pub struct ParamSlice<'a> {
    /// Qualified parameter name, e.g. `"conv0.weight"`.
    pub name: String,
    /// Parameter values (mutable: optimizers and fault injectors write
    /// here).
    pub values: &'a mut [f32],
    /// Gradient accumulator, same length as `values`.
    pub grads: &'a mut [f32],
}

/// A differentiable layer.
pub trait Layer: std::fmt::Debug {
    /// Computes the layer output. With `train = true` the layer caches
    /// whatever `backward` needs and enables training-only behavior
    /// (dropout); with `train = false` no caching happens — inference is
    /// allocation-lean and a subsequent `backward` panics.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// May panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable views of the layer's parameters (empty for stateless
    /// layers).
    fn params(&mut self) -> Vec<ParamSlice<'_>> {
        Vec::new()
    }

    /// Short kind tag for diagnostics ("dense", "conv2d", …).
    fn kind(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Finite-difference gradient check for a layer's input gradient.
    ///
    /// Perturbs each input element, measures the change of a scalar loss
    /// `L = Σ out²/2`, and compares against the analytic `backward` result.
    pub fn check_input_gradient(layer: &mut dyn Layer, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        // dL/dout = out for L = Σ out² / 2.
        let grad_in = layer.backward(&out.clone());
        let eps = 1e-3;
        let base_loss: f32 = out.data().iter().map(|v| v * v * 0.5).sum();
        for i in 0..input.len() {
            let mut pert = input.clone();
            pert.data_mut()[i] += eps;
            let out2 = layer.forward(&pert, false);
            let loss2: f32 = out2.data().iter().map(|v| v * v * 0.5).sum();
            let numeric = (loss2 - base_loss) / eps;
            let analytic = grad_in.data()[i];
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                "grad mismatch at {i}: numeric={numeric} analytic={analytic}"
            );
        }
    }
}
