//! Elementwise activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask.clear();
            self.mask.extend(input.data().iter().map(|v| *v > 0.0));
            self.shape = input.shape().to_vec();
        } else {
            // Inference allocates no mask; a stale one must not linger.
            self.mask.clear();
            self.shape.clear();
        }
        Tensor::from_vec(
            input.data().iter().map(|v| v.max(0.0)).collect(),
            input.shape().to_vec(),
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        Tensor::from_vec(
            grad_out
                .data()
                .iter()
                .zip(&self.mask)
                .map(|(g, m)| if *m { *g } else { 0.0 })
                .collect(),
            self.shape.clone(),
        )
    }

    fn kind(&self) -> &'static str {
        "relu"
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_out: Vec<f32>,
    shape: Vec<usize>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out: Vec<f32> = input.data().iter().map(|v| v.tanh()).collect();
        self.cached_out = out.clone();
        self.shape = input.shape().to_vec();
        Tensor::from_vec(out, self.shape.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.cached_out.len(),
            "backward before forward"
        );
        Tensor::from_vec(
            grad_out
                .data()
                .iter()
                .zip(&self.cached_out)
                .map(|(g, y)| g * (1.0 - y * y))
                .collect(),
            self.shape.clone(),
        )
    }

    fn kind(&self) -> &'static str {
        "tanh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(vec![-1.0, 0.0, 2.0], vec![3]), true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], vec![3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-0.8, -0.1, 0.0, 0.4, 1.2], vec![5]);
        check_input_gradient(&mut t, &x, 1e-2);
    }

    #[test]
    fn tanh_bounded() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(vec![-100.0, 100.0], vec![2]), false);
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn preserves_shape() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::zeros(vec![2, 3, 4]), false);
        assert_eq!(y.shape(), &[2, 3, 4]);
    }
}
