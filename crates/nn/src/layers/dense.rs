//! Fully-connected layer.

use super::{Layer, ParamSlice};
use crate::init::he_uniform;
use crate::tensor::Tensor;
use rand::Rng;

/// Output neurons computed per block in the lane-batched forward kernel.
///
/// Lanes run across *independent output neurons*; each lane's dot product
/// walks the input in the exact scalar order, so results are bit-identical
/// to [`Dense::forward_reference`].
const DENSE_LANES: usize = 8;

/// A fully-connected (affine) layer: `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `[out_dim × in_dim]`.
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-uniform weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be non-zero");
        let mut weight = vec![0.0; in_dim * out_dim];
        he_uniform(rng, in_dim, &mut weight);
        Dense {
            in_dim,
            out_dim,
            weight,
            bias: vec![0.0; out_dim],
            grad_weight: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
            cached_input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Scalar reference forward — the pre-blocking loop, retained as the
    /// differential oracle for the lane-batched kernel. Never caches.
    pub fn forward_reference(&self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.len(),
            self.in_dim,
            "dense expects {} inputs, got {}",
            self.in_dim,
            input.len()
        );
        let x = input.data();
        let mut y = vec![0.0f32; self.out_dim];
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.bias[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *yo = acc;
        }
        Tensor::from_vec(y, vec![self.out_dim])
    }
}

impl Layer for Dense {
    /// Blocked, lane-batched forward: `DENSE_LANES` independent output
    /// neurons per block share one pass over the input, breaking the FP
    /// add latency chain while leaving each neuron's accumulation order
    /// untouched — bit-identical to [`Dense::forward_reference`].
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.len(),
            self.in_dim,
            "dense expects {} inputs, got {}",
            self.in_dim,
            input.len()
        );
        let x = input.data();
        let n = self.in_dim;
        let mut y = vec![0.0f32; self.out_dim];
        let mut o = 0;
        while o + DENSE_LANES <= self.out_dim {
            let mut chunks = self.weight[o * n..(o + DENSE_LANES) * n].chunks_exact(n);
            let rows: [&[f32]; DENSE_LANES] = std::array::from_fn(|_| chunks.next().unwrap());
            let mut acc: [f32; DENSE_LANES] = std::array::from_fn(|l| self.bias[o + l]);
            for (i, &xi) in x.iter().enumerate() {
                for (l, a) in acc.iter_mut().enumerate() {
                    *a += rows[l][i] * xi;
                }
            }
            y[o..o + DENSE_LANES].copy_from_slice(&acc);
            o += DENSE_LANES;
        }
        for (o, yo) in y.iter_mut().enumerate().skip(o) {
            let row = &self.weight[o * n..(o + 1) * n];
            let mut acc = self.bias[o];
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *yo = acc;
        }
        self.cached_input = if train { Some(input.clone()) } else { None };
        Tensor::from_vec(y, vec![self.out_dim])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let x = input.data();
        let gy = grad_out.data();
        assert_eq!(gy.len(), self.out_dim);
        let mut gx = vec![0.0f32; self.in_dim];
        for (o, &g) in gy.iter().enumerate() {
            self.grad_bias[o] += g;
            let row_w = &self.weight[o * self.in_dim..(o + 1) * self.in_dim];
            let row_gw = &mut self.grad_weight[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_gw[i] += g * x[i];
                gx[i] += row_w[i] * g;
            }
        }
        Tensor::from_vec(gx, vec![self.in_dim])
    }

    fn params(&mut self) -> Vec<ParamSlice<'_>> {
        vec![
            ParamSlice {
                name: "weight".to_string(),
                values: &mut self.weight,
                grads: &mut self.grad_weight,
            },
            ParamSlice {
                name: "bias".to_string(),
                values: &mut self.bias,
                grads: &mut self.grad_bias,
            },
        ]
    }

    fn kind(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_is_affine() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(2, 2, &mut rng);
        // Overwrite with known weights.
        {
            let mut ps = d.params();
            ps[0].values.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            ps[1].values.copy_from_slice(&[0.5, -0.5]);
        }
        let y = d.forward(&Tensor::from_vec(vec![1.0, 1.0], vec![2]), false);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dense::new(5, 3, &mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.8, 0.1, -0.5], vec![5]);
        check_input_gradient(&mut d, &x, 1e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 0.25], vec![3]);
        let out = d.forward(&x, true);
        let _ = d.backward(&out.clone());
        // Analytic dL/dW[0][1] for L = Σ out²/2 is out[0] * x[1].
        let expected = out.data()[0] * x.data()[1];
        let got = d.params()[0].grads[1];
        assert!((got - expected).abs() < 1e-5, "got {got}, want {expected}");
    }

    #[test]
    fn grads_accumulate_until_cleared() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut d = Dense::new(2, 1, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 1.0], vec![2]);
        for _ in 0..2 {
            let y = d.forward(&x, true);
            d.backward(&y);
        }
        let g1 = d.params()[1].grads[0];
        assert!(g1.abs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "dense expects")]
    fn rejects_wrong_input_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = Dense::new(3, 2, &mut rng);
        let _ = d.forward(&Tensor::zeros(vec![4]), false);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn inference_forward_does_not_cache() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut d = Dense::new(3, 2, &mut rng);
        let y = d.forward(&Tensor::zeros(vec![3]), false);
        let _ = d.backward(&y);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn inference_forward_clears_training_cache() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::zeros(vec![3]);
        let _ = d.forward(&x, true);
        // An inference pass must not leave a stale training cache behind.
        let y = d.forward(&x, false);
        let _ = d.backward(&y);
    }
}
