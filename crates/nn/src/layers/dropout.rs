//! Inverted dropout layer.

use super::Layer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Inverted dropout: during training each unit is zeroed with probability
/// `rate` and survivors are scaled by `1/(1-rate)`; at inference it is the
/// identity.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: StdRng,
    mask: Vec<f32>,
    shape: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `rate` and its own
    /// deterministic RNG stream.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate < 1`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout {
            rate,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
            shape: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        if !train || self.rate == 0.0 {
            self.mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        self.mask = (0..input.len())
            .map(|_| {
                if self.rng.random_range(0.0f32..1.0) < self.rate {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        Tensor::from_vec(
            input
                .data()
                .iter()
                .zip(&self.mask)
                .map(|(x, m)| x * m)
                .collect(),
            self.shape.clone(),
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        Tensor::from_vec(
            grad_out
                .data()
                .iter()
                .zip(&self.mask)
                .map(|(g, m)| g * m)
                .collect(),
            self.shape.clone(),
        )
    }

    fn kind(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![3]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn training_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::from_vec(vec![1.0; 1000], vec![1000]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 350 && zeros < 650, "zeros={zeros}");
        // Survivors are scaled by 2.
        assert!(y
            .data()
            .iter()
            .all(|v| *v == 0.0 || (*v - 2.0).abs() < 1e-6));
        // Expected value preserved approximately.
        assert!((y.mean() - 1.0).abs() < 0.15, "mean={}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(vec![1.0; 64], vec![64]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::from_vec(vec![1.0; 64], vec![64]));
        for (yo, go) in y.data().iter().zip(g.data()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }
}
