//! Max-pooling layer.

use super::Layer;
use crate::tensor::Tensor;

/// 2-D max pooling over `[C, H, W]` tensors with a square window and equal
/// stride (the common `k = stride` configuration).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    /// Per-output index of the winning input element (for backward).
    cached_argmax: Vec<usize>,
    cached_in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "window must be non-zero");
        MaxPool2d {
            k,
            cached_argmax: Vec::new(),
            cached_in_shape: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "maxpool expects [C, H, W]");
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let oh = h / self.k;
        let ow = w / self.k;
        assert!(oh > 0 && ow > 0, "input smaller than window");
        let x = input.data();
        let mut y = vec![f32::NEG_INFINITY; c * oh * ow];
        let mut amax = vec![0usize; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let oi = (ch * oh + oy) * ow + ox;
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            let ii = (ch * h + oy * self.k + ky) * w + ox * self.k + kx;
                            if x[ii] > y[oi] {
                                y[oi] = x[ii];
                                amax[oi] = ii;
                            }
                        }
                    }
                }
            }
        }
        self.cached_argmax = amax;
        self.cached_in_shape = shape.to_vec();
        Tensor::from_vec(y, vec![c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_in_shape.is_empty(),
            "backward called before forward"
        );
        let mut gx = vec![0.0f32; self.cached_in_shape.iter().product()];
        for (oi, g) in grad_out.data().iter().enumerate() {
            gx[self.cached_argmax[oi]] += g;
        }
        Tensor::from_vec(gx, self.cached_in_shape.clone())
    }

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_maxima() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, -1.0, 0.0, 0.5,
            ],
            vec![1, 4, 4],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![1, 2, 2]);
        let _ = p.forward(&x, false);
        let gx = p.backward(&Tensor::from_vec(vec![10.0], vec![1, 1, 1]));
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn truncates_ragged_edges() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::zeros(vec![2, 5, 5]);
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[2, 2, 2]);
    }
}
