//! 2-D convolution layer.

use super::{Layer, ParamSlice};
use crate::init::he_uniform;
use crate::tensor::Tensor;
use rand::Rng;

/// A 2-D convolution over `[C, H, W]` tensors with square kernels.
///
/// Output shape is `[out_ch, H', W']` with
/// `H' = (H + 2·pad − k) / stride + 1` (and likewise for `W'`).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// `[out_ch × in_ch × k × k]`.
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_ch`, `out_ch`, `k`, `stride` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0 && stride > 0);
        let n = out_ch * in_ch * k * k;
        let mut weight = vec![0.0; n];
        he_uniform(rng, in_ch * k * k, &mut weight);
        Conv2d {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            weight,
            bias: vec![0.0; out_ch],
            grad_weight: vec![0.0; n],
            grad_bias: vec![0.0; out_ch],
            cached_input: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.k) / self.stride + 1;
        (oh, ow)
    }

    #[inline]
    fn w_idx(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_ch + c) * self.k + ky) * self.k + kx
    }

    /// Interior range `[lo, hi)` of output indices along one spatial axis
    /// (input size `n`, output size `on`): outputs whose whole `k`-tap
    /// window lands in-bounds, so the kernel loop needs no edge branches.
    fn interior(&self, n: usize, on: usize) -> (usize, usize) {
        let lo = self.pad.div_ceil(self.stride).min(on);
        let hi = if n + self.pad >= self.k {
            ((n + self.pad - self.k) / self.stride + 1).min(on)
        } else {
            lo
        };
        (lo, hi.max(lo))
    }

    /// One output element via the general (edge-tolerant) scalar path.
    #[inline]
    fn accumulate_one(&self, x: &[f32], h: usize, w: usize, o: usize, oy: usize, ox: usize) -> f32 {
        let mut acc = self.bias[o];
        let y0 = (oy * self.stride) as isize - self.pad as isize;
        let x0 = (ox * self.stride) as isize - self.pad as isize;
        for c in 0..self.in_ch {
            for ky in 0..self.k {
                let iy = y0 + ky as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kx in 0..self.k {
                    let ix = x0 + kx as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let xi = x[(c * h + iy as usize) * w + ix as usize];
                    acc += self.weight[self.w_idx(o, c, ky, kx)] * xi;
                }
            }
        }
        acc
    }

    /// Computes `L` consecutive output channels (`o0..o0 + L`) for every
    /// output pixel — the lane-batched hot path.
    ///
    /// Lanes run across *independent output channels*: every lane shares
    /// the same input load (one broadcast feeds `L` multiply-adds) while
    /// each lane's accumulator walks the reduction (ascending `c`, `ky`,
    /// `kx`, skipping out-of-bounds taps) in the exact scalar order, so
    /// per-lane results are bit-identical to [`Self::accumulate_one`].
    /// Interior pixels (receptive field fully in-bounds) take a
    /// branch-free inner loop with a sequential weight offset; border
    /// pixels share the scalar path's bounds tests across all lanes.
    fn forward_block<const L: usize>(
        &self,
        x: &[f32],
        (h, w): (usize, usize),
        (oh, ow): (usize, usize),
        ((oy_lo, oy_hi), (ox_lo, ox_hi)): ((usize, usize), (usize, usize)),
        o0: usize,
        y: &mut [f32],
    ) {
        let (k, stride, pad) = (self.k, self.stride, self.pad);
        let ickk = self.in_ch * k * k;
        let wrows: [&[f32]; L] =
            std::array::from_fn(|l| &self.weight[(o0 + l) * ickk..(o0 + l + 1) * ickk]);
        let biases: [f32; L] = std::array::from_fn(|l| self.bias[o0 + l]);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = biases;
                if oy >= oy_lo && oy < oy_hi && ox >= ox_lo && ox < ox_hi {
                    let y0 = oy * stride - pad;
                    let x0 = ox * stride - pad;
                    let mut off = 0;
                    for c in 0..self.in_ch {
                        let plane = &x[c * h * w..(c + 1) * h * w];
                        for ky in 0..k {
                            let row = &plane[(y0 + ky) * w..(y0 + ky) * w + w];
                            for &xi in &row[x0..x0 + k] {
                                for (l, a) in acc.iter_mut().enumerate() {
                                    *a += wrows[l][off] * xi;
                                }
                                off += 1;
                            }
                        }
                    }
                } else {
                    let y0 = (oy * stride) as isize - pad as isize;
                    let x0 = (ox * stride) as isize - pad as isize;
                    for c in 0..self.in_ch {
                        for ky in 0..k {
                            let iy = y0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = x0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = x[(c * h + iy as usize) * w + ix as usize];
                                let off = (c * k + ky) * k + kx;
                                for (l, a) in acc.iter_mut().enumerate() {
                                    *a += wrows[l][off] * xi;
                                }
                            }
                        }
                    }
                }
                for (l, a) in acc.iter().enumerate() {
                    y[((o0 + l) * oh + oy) * ow + ox] = *a;
                }
            }
        }
    }

    /// Scalar reference forward — the pre-blocking loop nest, retained as
    /// the differential oracle for the lane-batched kernel (mirrors the
    /// camera's `render_into_reference`). Never caches.
    pub fn forward_reference(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "conv2d expects [C, H, W]");
        assert_eq!(shape[0], self.in_ch, "channel mismatch");
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        let x = input.data();
        let mut y = vec![0.0f32; self.out_ch * oh * ow];
        for o in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    y[(o * oh + oy) * ow + ox] = self.accumulate_one(x, h, w, o, oy, ox);
                }
            }
        }
        Tensor::from_vec(y, vec![self.out_ch, oh, ow])
    }
}

impl Layer for Conv2d {
    /// Blocked, lane-batched forward: output channels are processed in
    /// blocks of 8, then 4, then singly (see [`Conv2d::forward_block`]);
    /// an interior/border split keeps edge-clipping branches out of the
    /// hot loop. Bit-identical to [`Conv2d::forward_reference`] by
    /// construction — lanes are independent outputs and the per-output
    /// reduction order is untouched.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "conv2d expects [C, H, W]");
        assert_eq!(shape[0], self.in_ch, "channel mismatch");
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        let oy_r = self.interior(h, oh);
        let ox_r = self.interior(w, ow);
        let x = input.data();
        let mut y = vec![0.0f32; self.out_ch * oh * ow];
        let mut o = 0;
        while o + 8 <= self.out_ch {
            self.forward_block::<8>(x, (h, w), (oh, ow), (oy_r, ox_r), o, &mut y);
            o += 8;
        }
        while o + 4 <= self.out_ch {
            self.forward_block::<4>(x, (h, w), (oh, ow), (oy_r, ox_r), o, &mut y);
            o += 4;
        }
        for o in o..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    y[(o * oh + oy) * ow + ox] = self.accumulate_one(x, h, w, o, oy, ox);
                }
            }
        }
        self.cached_input = if train { Some(input.clone()) } else { None };
        Tensor::from_vec(y, vec![self.out_ch, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let shape = input.shape().to_vec();
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad_out.shape(), &[self.out_ch, oh, ow]);
        let x = input.data();
        let gy = grad_out.data();
        let mut gx = vec![0.0f32; x.len()];
        for o in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gy[(o * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_bias[o] += g;
                    let y0 = (oy * self.stride) as isize - self.pad as isize;
                    let x0 = (ox * self.stride) as isize - self.pad as isize;
                    for c in 0..self.in_ch {
                        for ky in 0..self.k {
                            let iy = y0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = x0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi_idx = (c * h + iy as usize) * w + ix as usize;
                                let wi = self.w_idx(o, c, ky, kx);
                                self.grad_weight[wi] += g * x[xi_idx];
                                gx[xi_idx] += g * self.weight[wi];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gx, shape)
    }

    fn params(&mut self) -> Vec<ParamSlice<'_>> {
        vec![
            ParamSlice {
                name: "weight".to_string(),
                values: &mut self.weight,
                grads: &mut self.grad_weight,
            },
            ParamSlice {
                name: "bias".to_string(),
                values: &mut self.bias,
                grads: &mut self.grad_bias,
            },
        ]
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values.fill(0.0);
            ps[0].values[4] = 1.0; // center tap
            ps[1].values.fill(0.0);
        }
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), vec![1, 4, 4]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 4, 4]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn output_shape_with_stride() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(vec![3, 24, 32]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[8, 12, 16]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 5 * 4)
                .map(|v| ((v % 7) as f32 - 3.0) * 0.2)
                .collect(),
            vec![2, 5, 4],
        );
        check_input_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn bias_shifts_every_output() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values[0] = 0.0;
            ps[1].values[0] = 2.5;
        }
        let y = conv.forward(&Tensor::zeros(vec![1, 2, 2]), false);
        assert!(y.data().iter().all(|v| (*v - 2.5).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut conv = Conv2d::new(3, 1, 3, 1, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(vec![1, 4, 4]), false);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn inference_forward_does_not_cache() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![1, 4, 4]);
        let y = conv.forward(&x, false);
        let _ = conv.backward(&y);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn inference_forward_clears_training_cache() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![1, 4, 4]);
        let _ = conv.forward(&x, true);
        // An inference pass must not leave a stale training cache behind.
        let y = conv.forward(&x, false);
        let _ = conv.backward(&y);
    }
}
