//! 2-D convolution layer.

use super::{Layer, ParamSlice};
use crate::init::he_uniform;
use crate::tensor::Tensor;
use rand::Rng;

/// A 2-D convolution over `[C, H, W]` tensors with square kernels.
///
/// Output shape is `[out_ch, H', W']` with
/// `H' = (H + 2·pad − k) / stride + 1` (and likewise for `W'`).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    stride: usize,
    pad: usize,
    /// `[out_ch × in_ch × k × k]`.
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_ch`, `out_ch`, `k`, `stride` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0 && stride > 0);
        let n = out_ch * in_ch * k * k;
        let mut weight = vec![0.0; n];
        he_uniform(rng, in_ch * k * k, &mut weight);
        Conv2d {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            weight,
            bias: vec![0.0; out_ch],
            grad_weight: vec![0.0; n],
            grad_bias: vec![0.0; out_ch],
            cached_input: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.k) / self.stride + 1;
        (oh, ow)
    }

    #[inline]
    fn w_idx(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_ch + c) * self.k + ky) * self.k + kx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "conv2d expects [C, H, W]");
        assert_eq!(shape[0], self.in_ch, "channel mismatch");
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        let x = input.data();
        let mut y = vec![0.0f32; self.out_ch * oh * ow];
        for o in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[o];
                    let y0 = (oy * self.stride) as isize - self.pad as isize;
                    let x0 = (ox * self.stride) as isize - self.pad as isize;
                    for c in 0..self.in_ch {
                        for ky in 0..self.k {
                            let iy = y0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = x0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = x[(c * h + iy as usize) * w + ix as usize];
                                acc += self.weight[self.w_idx(o, c, ky, kx)] * xi;
                            }
                        }
                    }
                    y[(o * oh + oy) * ow + ox] = acc;
                }
            }
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(y, vec![self.out_ch, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let shape = input.shape().to_vec();
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad_out.shape(), &[self.out_ch, oh, ow]);
        let x = input.data();
        let gy = grad_out.data();
        let mut gx = vec![0.0f32; x.len()];
        for o in 0..self.out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gy[(o * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_bias[o] += g;
                    let y0 = (oy * self.stride) as isize - self.pad as isize;
                    let x0 = (ox * self.stride) as isize - self.pad as isize;
                    for c in 0..self.in_ch {
                        for ky in 0..self.k {
                            let iy = y0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = x0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi_idx = (c * h + iy as usize) * w + ix as usize;
                                let wi = self.w_idx(o, c, ky, kx);
                                self.grad_weight[wi] += g * x[xi_idx];
                                gx[xi_idx] += g * self.weight[wi];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gx, shape)
    }

    fn params(&mut self) -> Vec<ParamSlice<'_>> {
        vec![
            ParamSlice {
                name: "weight".to_string(),
                values: &mut self.weight,
                grads: &mut self.grad_weight,
            },
            ParamSlice {
                name: "bias".to_string(),
                values: &mut self.bias,
                grads: &mut self.grad_bias,
            },
        ]
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::testutil::check_input_gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values.fill(0.0);
            ps[0].values[4] = 1.0; // center tap
            ps[1].values.fill(0.0);
        }
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), vec![1, 4, 4]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 4, 4]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn output_shape_with_stride() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(vec![3, 24, 32]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[8, 12, 16]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::from_vec(
            (0..2 * 5 * 4)
                .map(|v| ((v % 7) as f32 - 3.0) * 0.2)
                .collect(),
            vec![2, 5, 4],
        );
        check_input_gradient(&mut conv, &x, 2e-2);
    }

    #[test]
    fn bias_shifts_every_output() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values[0] = 0.0;
            ps[1].values[0] = 2.5;
        }
        let y = conv.forward(&Tensor::zeros(vec![1, 2, 2]), false);
        assert!(y.data().iter().all(|v| (*v - 2.5).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut conv = Conv2d::new(3, 1, 3, 1, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(vec![1, 4, 4]), false);
    }
}
