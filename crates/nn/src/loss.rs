//! Loss functions with analytic gradients.

use crate::tensor::Tensor;

/// Mean-squared error: returns `(loss, ∂loss/∂pred)`.
///
/// `L = mean((pred − target)²)`, gradient `2(pred − target)/n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let grad: Vec<f32> = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (loss / n, Tensor::from_vec(grad, pred.shape().to_vec()))
}

/// Weighted mean-squared error: per-element weights emphasize some outputs
/// (the imitation loss weighs steering above throttle/brake, following
/// Codevilla et al.).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn weighted_mse(pred: &Tensor, target: &Tensor, weights: &[f32]) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
    assert_eq!(pred.len(), weights.len(), "weights length mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let grad: Vec<f32> = pred
        .data()
        .iter()
        .zip(target.data())
        .zip(weights)
        .map(|((p, t), w)| {
            let d = p - t;
            loss += w * d * d;
            2.0 * w * d / n
        })
        .collect();
    (loss / n, Tensor::from_vec(grad, pred.shape().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_at_target() {
        let p = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert_eq!(g.data(), &[0.0, 0.0]);
    }

    #[test]
    fn gradient_direction() {
        let p = Tensor::from_vec(vec![2.0], vec![1]);
        let t = Tensor::from_vec(vec![1.0], vec![1]);
        let (l, g) = mse(&p, &t);
        assert_eq!(l, 1.0);
        assert_eq!(g.data(), &[2.0]);
    }

    #[test]
    fn weighted_emphasizes() {
        let p = Tensor::from_vec(vec![1.0, 1.0], vec![2]);
        let t = Tensor::from_vec(vec![0.0, 0.0], vec![2]);
        let (_, g) = weighted_mse(&p, &t, &[4.0, 1.0]);
        assert!(g.data()[0] > g.data()[1]);
        assert_eq!(g.data()[0], 4.0 * g.data()[1]);
    }

    #[test]
    fn finite_difference_agrees() {
        let p = Tensor::from_vec(vec![0.3, -0.7, 1.1], vec![3]);
        let t = Tensor::from_vec(vec![0.0, 0.5, 1.0], vec![3]);
        let (l0, g) = mse(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut p2 = p.clone();
            p2.data_mut()[i] += eps;
            let (l1, _) = mse(&p2, &t);
            let numeric = (l1 - l0) / eps;
            assert!((numeric - g.data()[i]).abs() < 1e-2);
        }
    }
}
