//! Dense `f32` tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f32` values with a dynamic shape.
///
/// This is deliberately minimal: the network layers index into the raw
/// buffer directly, so the tensor only needs shape bookkeeping, elementwise
/// ops, and a few reductions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "shape must be non-empty");
        let n: usize = shape.iter().product();
        assert!(n > 0, "shape must have no zero dimension");
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} != shape product {n}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(self.data.len(), n, "reshape element count mismatch");
        self.shape = shape;
        self
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Elementwise scale.
    pub fn scale(&self, k: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|a| a * k).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Index of the largest element.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, v) in self.data.iter().enumerate() {
            if *v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[{} elems]", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], vec![3]);
        assert_eq!(t.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "shape product")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(vec![1.0], vec![3]);
    }

    #[test]
    fn reshape_keeps_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![4]).reshaped(vec![2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::from_vec(vec![1.0, 2.0], vec![2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], vec![2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5], vec![3]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn finite_check() {
        let mut t = Tensor::zeros(vec![2]);
        assert!(t.is_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.is_finite());
    }
}
