//! Optimizers: SGD with momentum, and Adam.
//!
//! Optimizers hold per-parameter state keyed by the position of each
//! [`ParamSlice`] in the network's parameter list, which is stable across
//! steps for a fixed architecture.

use crate::layers::ParamSlice;

/// Gradient-descent optimizer interface.
pub trait Optimizer {
    /// Applies one update step using the accumulated gradients, then zeroes
    /// them.
    fn step(&mut self, params: &mut [ParamSlice<'_>]);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0` and `0 ≤ momentum < 1`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamSlice<'_>]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.values.len()]).collect();
        }
        for (p, vel) in params.iter_mut().zip(&mut self.velocity) {
            debug_assert_eq!(p.values.len(), vel.len(), "parameter shape changed");
            for (i, v) in vel.iter_mut().enumerate() {
                *v = self.momentum * *v - self.lr * p.grads[i];
                p.values[i] += *v;
                p.grads[i] = 0.0;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the usual defaults (`β₁ = 0.9`, `β₂ = 0.999`).
    ///
    /// # Panics
    ///
    /// Panics unless `lr > 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamSlice<'_>]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.values.len()]).collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for i in 0..p.values.len() {
                let g = p.grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                p.values[i] -= self.lr * mh / (vh.sqrt() + self.eps);
                p.grads[i] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};
    use crate::loss::mse;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn train_linear(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // Learn y = 2x with a single dense unit.
        let mut rng = StdRng::seed_from_u64(13);
        let mut d = Dense::new(1, 1, &mut rng);
        let mut last = f32::INFINITY;
        for k in 0..steps {
            let x = ((k % 10) as f32 - 5.0) / 5.0;
            let input = Tensor::from_vec(vec![x], vec![1]);
            let target = Tensor::from_vec(vec![2.0 * x], vec![1]);
            let out = d.forward(&input, true);
            let (l, g) = mse(&out, &target);
            d.backward(&g);
            opt.step(&mut d.params());
            last = l;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear() {
        let mut opt = Sgd::new(0.02, 0.9);
        let loss = train_linear(&mut opt, 600);
        assert!(loss < 1e-3, "loss={loss}");
    }

    #[test]
    fn adam_converges_on_linear() {
        let mut opt = Adam::new(0.05);
        let loss = train_linear(&mut opt, 300);
        assert!(loss < 1e-3, "loss={loss}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, -1.0], vec![2]);
        let y = d.forward(&x, true);
        d.backward(&y);
        let mut opt = Sgd::new(0.01, 0.0);
        opt.step(&mut d.params());
        for p in d.params() {
            assert!(p.grads.iter().all(|g| *g == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.0);
    }
}
