//! Weight serialization: a compact binary format for trained models.
//!
//! Layout: magic `AVNN`, version byte, `u32` parameter count, then per
//! parameter a `u32` length and that many little-endian `f32`s. The format
//! stores only values (not architecture); loading requires a freshly built
//! network of the same shape, which is how the agent crate ships its
//! trained policy.

use crate::layers::ParamSlice;
use std::fmt;

/// Errors from weight (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadWeightsError {
    /// Input does not start with the `AVNN` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Input ended prematurely.
    Truncated,
    /// Parameter count or a parameter length does not match the target
    /// network.
    ShapeMismatch {
        /// What the file contains.
        found: usize,
        /// What the network expects.
        expected: usize,
    },
}

impl fmt::Display for LoadWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadWeightsError::BadMagic => write!(f, "missing AVNN magic"),
            LoadWeightsError::BadVersion(v) => write!(f, "unsupported version {v}"),
            LoadWeightsError::Truncated => write!(f, "unexpected end of input"),
            LoadWeightsError::ShapeMismatch { found, expected } => {
                write!(f, "shape mismatch: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LoadWeightsError {}

const MAGIC: &[u8; 4] = b"AVNN";
const VERSION: u8 = 1;

/// Serializes parameters to the binary weight format.
pub fn save_weights(params: &[ParamSlice<'_>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.values.len() as u32).to_le_bytes());
        for v in p.values.iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Loads weights into the parameters of an existing network.
///
/// # Errors
///
/// Returns an error if the input is malformed or its shapes do not match
/// the network's parameters.
pub fn load_weights(bytes: &[u8], params: &mut [ParamSlice<'_>]) -> Result<(), LoadWeightsError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], LoadWeightsError> {
        if *pos + n > bytes.len() {
            return Err(LoadWeightsError::Truncated);
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(LoadWeightsError::BadMagic);
    }
    let version = take(&mut pos, 1)?[0];
    if version != VERSION {
        return Err(LoadWeightsError::BadVersion(version));
    }
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    if count != params.len() {
        return Err(LoadWeightsError::ShapeMismatch {
            found: count,
            expected: params.len(),
        });
    }
    // Two-phase: validate everything before mutating, so a bad file cannot
    // leave the network half-loaded.
    let mut loaded: Vec<Vec<f32>> = Vec::with_capacity(count);
    for p in params.iter() {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        if len != p.values.len() {
            return Err(LoadWeightsError::ShapeMismatch {
                found: len,
                expected: p.values.len(),
            });
        }
        let raw = take(&mut pos, len * 4)?;
        loaded.push(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect(),
        );
    }
    for (p, vals) in params.iter_mut().zip(loaded) {
        p.values.copy_from_slice(&vals);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Tanh};
    use crate::network::Sequential;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = Sequential::new();
        n.push(Dense::new(3, 4, &mut rng));
        n.push(Tanh::new());
        n.push(Dense::new(4, 2, &mut rng));
        n
    }

    #[test]
    fn roundtrip_restores_behavior() {
        let mut a = net(30);
        let bytes = save_weights(&a.params());
        let mut b = net(31); // different init
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.9], vec![3]);
        let ya = a.forward(&x, false);
        let yb_before = b.forward(&x, false);
        assert_ne!(ya.data(), yb_before.data());
        load_weights(&bytes, &mut b.params()).unwrap();
        let yb = b.forward(&x, false);
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut n = net(32);
        let err = load_weights(b"NOPE....", &mut n.params()).unwrap_err();
        assert_eq!(err, LoadWeightsError::BadMagic);
    }

    #[test]
    fn rejects_truncated() {
        let mut a = net(33);
        let mut bytes = save_weights(&a.params());
        bytes.truncate(bytes.len() - 5);
        let err = load_weights(&bytes, &mut a.params()).unwrap_err();
        assert_eq!(err, LoadWeightsError::Truncated);
    }

    #[test]
    fn rejects_shape_mismatch_without_mutation() {
        let mut a = net(34);
        let bytes = save_weights(&a.params());
        let mut rng = StdRng::seed_from_u64(35);
        let mut other = Sequential::new();
        other.push(Dense::new(3, 5, &mut rng)); // different shape
        other.push(Dense::new(5, 2, &mut rng));
        let before: Vec<f32> = other.params()[0].values.to_vec();
        let err = load_weights(&bytes, &mut other.params());
        assert!(matches!(err, Err(LoadWeightsError::ShapeMismatch { .. })));
        assert_eq!(other.params()[0].values.to_vec(), before);
    }
}
