//! Weight initialization schemes.

use rand::{Rng, RngExt};

/// Samples a uniform value in `[-limit, limit]`.
fn uniform<R: Rng + ?Sized>(rng: &mut R, limit: f32) -> f32 {
    rng.random_range(-limit..=limit)
}

/// Xavier/Glorot uniform initialization for a weight matrix with the given
/// fan-in and fan-out. Appropriate before `tanh` activations.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    fan_in: usize,
    fan_out: usize,
    out: &mut [f32],
) {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    for w in out {
        *w = uniform(rng, limit);
    }
}

/// He/Kaiming uniform initialization. Appropriate before `ReLU` activations.
pub fn he_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, out: &mut [f32]) {
    let limit = (6.0 / fan_in as f32).sqrt();
    for w in out {
        *w = uniform(rng, limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = vec![0.0; 1000];
        xavier_uniform(&mut rng, 64, 32, &mut w);
        let limit = (6.0f32 / 96.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
        // Not all zero, roughly centered.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < limit * 0.2);
        assert!(w.iter().any(|v| v.abs() > limit * 0.5));
    }

    #[test]
    fn he_within_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = vec![0.0; 1000];
        he_uniform(&mut rng, 50, &mut w);
        let limit = (6.0f32 / 50.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        xavier_uniform(&mut StdRng::seed_from_u64(7), 4, 4, &mut a);
        xavier_uniform(&mut StdRng::seed_from_u64(7), 4, 4, &mut b);
        assert_eq!(a, b);
    }
}
