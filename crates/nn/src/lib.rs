//! # avfi-nn — a from-scratch neural-network library for the AVFI agent
//!
//! The AVFI paper's driving agent is an imitation-learning CNN (Codevilla
//! et al.'s conditional imitation network). Reproducing the paper in pure
//! Rust therefore needs a small but real deep-learning substrate:
//!
//! * [`Tensor`] — dense `f32` tensors with shape tracking,
//! * [`layers`] — `Conv2d`, `MaxPool2d`, `Dense`, `ReLU`, `Tanh`,
//!   `Flatten`, `Dropout`, each with hand-written forward and backward
//!   passes,
//! * [`Sequential`] and [`Branched`] — containers; `Branched` implements
//!   the command-conditional architecture (shared trunk, one head per
//!   high-level command),
//! * [`optim`] — SGD-with-momentum and Adam,
//! * [`loss`] — mean-squared-error with gradient,
//! * named parameter access ([`ParamSlice`]) and activation-override hooks
//!   — the injection surface for AVFI's *machine-learning fault* class
//!   ("choosing specific neurons and layers in the IL-CNN" and "adding
//!   noise into the parameters of the machine learning model").
//!
//! ## Example: tiny regression
//!
//! ```
//! use avfi_nn::layers::{Dense, Tanh};
//! use avfi_nn::loss::mse;
//! use avfi_nn::optim::{Optimizer, Sgd};
//! use avfi_nn::{Sequential, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut net = Sequential::new();
//! net.push(Dense::new(1, 8, &mut rng));
//! net.push(Tanh::new());
//! net.push(Dense::new(8, 1, &mut rng));
//! let mut opt = Sgd::new(0.02, 0.9);
//! for _ in 0..200 {
//!     for x in [-1.0f32, -0.5, 0.0, 0.5, 1.0] {
//!         let input = Tensor::from_vec(vec![x], vec![1]);
//!         let target = Tensor::from_vec(vec![x * 0.5], vec![1]);
//!         let out = net.forward(&input, true);
//!         let (_, grad) = mse(&out, &target);
//!         net.backward(&grad);
//!         opt.step(&mut net.params());
//!     }
//! }
//! let out = net.forward(&Tensor::from_vec(vec![0.8], vec![1]), false);
//! assert!((out.data()[0] - 0.4).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod serialize;
pub mod tensor;

pub use layers::{Layer, ParamSlice};
pub use network::{Branched, Sequential};
pub use tensor::Tensor;
