//! Property tests of the binary codec: arbitrary event sequences and
//! frame streams must survive encode → decode exactly (bit-for-bit on
//! every `f64`), and corrupted bytes must never decode successfully.

use avfi_sim::math::Vec2;
use avfi_sim::physics::VehicleControl;
use avfi_sim::recorder::TrajectorySample;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::violation::ViolationKind;
use avfi_trace::{
    decode, encode, FaultChannel, RunTrace, TraceEvent, TraceHeader, TraceLevel, TraceSummary,
};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        0u8..3,
        0u64..100_000,
        0usize..FaultChannel::ALL.len(),
        0usize..ViolationKind::ALL.len(),
        -1.0e4f64..1.0e4,
        -1.0e4f64..1.0e4,
    )
        .prop_map(|(tag, frame, channel, kind, a, b)| match tag {
            0 => TraceEvent::TriggerFired { frame },
            1 => TraceEvent::Injection {
                frame,
                channel: FaultChannel::ALL[channel],
            },
            _ => TraceEvent::Violation {
                frame,
                time: frame as f64 / 15.0,
                kind: ViolationKind::ALL[kind],
                x: a,
                y: b,
                odometer: a.abs() + b.abs(),
            },
        })
}

fn arb_frame() -> impl Strategy<Value = TrajectorySample> {
    (
        (
            0u64..1_000_000,
            -1.0e6f64..1.0e6,
            -1.0e6f64..1.0e6,
            -4.0f64..4.0,
        ),
        (0.0f64..40.0, -1.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
    )
        .prop_map(
            |((frame, x, y, heading), (speed, steer, throttle, brake))| TrajectorySample {
                time: frame as f64 / 15.0,
                frame,
                position: Vec2::new(x, y),
                heading,
                speed,
                control: VehicleControl {
                    steer,
                    throttle,
                    brake,
                },
            },
        )
}

fn trace_of(events: Vec<TraceEvent>, frames: Vec<TrajectorySample>, dropped: u64) -> RunTrace {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    RunTrace {
        header: TraceHeader {
            study: "prop".into(),
            fault: "S&P".into(),
            agent: "expert".into(),
            scenario_index: 1,
            run_index: 3,
            seed: 0x1234_5678_9ABC_DEF0,
            scenario: Scenario::builder(town).seed(7).build(),
            fault_spec_json: "\"None\"".into(),
            weights_fingerprint: None,
            level: TraceLevel::Blackbox,
            blackbox_frames: 450,
        },
        summary: TraceSummary {
            success: false,
            outcome: "timeout".into(),
            duration: 90.0,
            distance_km: 0.42,
            violations: events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Violation { .. }))
                .count(),
            injection_time: Some(0.0),
        },
        events,
        frames,
        dropped_frames: dropped,
        dropped_events: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary event sequences and frame streams (including raw f64
    /// extremes produced by arithmetic on the sampled values) roundtrip
    /// exactly through the binary codec.
    #[test]
    fn roundtrip_is_identity(
        events in prop::collection::vec(arb_event(), 0..40),
        frames in prop::collection::vec(arb_frame(), 0..200),
        dropped in 0u64..10_000,
    ) {
        let trace = trace_of(events, frames, dropped);
        let bytes = encode(&trace);
        let back = decode(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(&trace, &back);
        // Re-encoding is byte-stable (canonical form).
        prop_assert_eq!(bytes, encode(&back));
    }

    /// Flipping any single byte of a valid trace is detected: decode must
    /// return an error, never a silently different trace.
    #[test]
    fn corruption_never_decodes(
        frames in prop::collection::vec(arb_frame(), 1..60),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let trace = trace_of(vec![TraceEvent::TriggerFired { frame: 0 }], frames, 0);
        let mut bytes = encode(&trace);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode(&bytes).is_err(),
            "flip of bit {} at byte {}/{} went undetected",
            bit, pos, bytes.len()
        );
    }
}

/// Non-monotonic frame numbers (ring handoff bugs would produce them)
/// still roundtrip — the delta encoding wraps, it does not assume order.
#[test]
fn unordered_frames_roundtrip() {
    let frames: Vec<TrajectorySample> = [5u64, 3, 9, 0]
        .iter()
        .map(|&frame| TrajectorySample {
            time: frame as f64 / 15.0,
            frame,
            position: Vec2::new(frame as f64, -(frame as f64)),
            heading: 0.0,
            speed: 1.0,
            control: VehicleControl::coast(),
        })
        .collect();
    let trace = trace_of(Vec::new(), frames, 0);
    assert_eq!(decode(&encode(&trace)).unwrap(), trace);
}
