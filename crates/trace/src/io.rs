//! Trace files on disk: naming, writing, reading, directory listing.
//!
//! Traces are routed by **flat-plan index** — the run's position in the
//! engine's flattened work queue — so the set of file names a campaign
//! emits is a pure function of the plan, never of worker count or
//! scheduling. Files use the `.avtr` extension.

use crate::codec::{decode, encode, DecodeError};
use crate::model::RunTrace;
use std::io;
use std::path::{Path, PathBuf};

/// Extension of binary trace files.
pub const TRACE_EXT: &str = "avtr";

/// Deterministic file name for the run at `flat_index` in the flattened
/// plan: `run-000042.avtr`.
pub fn trace_file_name(flat_index: usize) -> String {
    format!("run-{flat_index:06}.{TRACE_EXT}")
}

/// Encodes and writes `trace` into `dir` under its flat-index name,
/// creating the directory if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace_file(dir: &Path, flat_index: usize, trace: &RunTrace) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(trace_file_name(flat_index));
    std::fs::write(&path, encode(trace))?;
    Ok(path)
}

/// Reads and decodes one trace file.
///
/// # Errors
///
/// Filesystem errors and [`DecodeError`]s are both surfaced as
/// `io::Error` (decode failures with `InvalidData`).
pub fn read_trace_file(path: &Path) -> io::Result<RunTrace> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e: DecodeError| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Lists the `.avtr` files in `dir`, sorted by file name (= flat-plan
/// order). A missing directory lists as empty.
///
/// # Errors
///
/// Propagates filesystem errors other than a missing directory.
pub fn list_trace_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(TRACE_EXT))
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sort_in_flat_order() {
        assert_eq!(trace_file_name(0), "run-000000.avtr");
        assert_eq!(trace_file_name(123456), "run-123456.avtr");
        let mut names: Vec<String> = [9usize, 100, 3, 42]
            .iter()
            .map(|&i| trace_file_name(i))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "run-000003.avtr",
                "run-000009.avtr",
                "run-000042.avtr",
                "run-000100.avtr"
            ]
        );
    }

    #[test]
    fn missing_dir_lists_empty() {
        let dir = std::env::temp_dir().join("avfi-trace-no-such-dir-test");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(list_trace_files(&dir).unwrap().is_empty());
    }
}
