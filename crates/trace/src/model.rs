//! The trace data model: detail levels, run identity, events, and the
//! assembled [`RunTrace`].

use avfi_sim::recorder::TrajectorySample;
use avfi_sim::scenario::Scenario;
use avfi_sim::violation::ViolationKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How much detail the flight recorder captures per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// No tracing (zero overhead; nothing is written).
    #[default]
    Off,
    /// Events only (trigger firings, injections, violations); a small
    /// trace is written for *every* run.
    Summary,
    /// Events plus a bounded ring of the last N seconds of full-detail
    /// frames; the ring is flushed to disk **only when the run fails**,
    /// so campaign-scale memory and disk stay constant.
    Blackbox,
}

impl TraceLevel {
    /// Parses a command-line level name.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "summary" => Some(TraceLevel::Summary),
            "blackbox" => Some(TraceLevel::Blackbox),
            _ => None,
        }
    }

    /// The command-line name of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Blackbox => "blackbox",
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which fault-injection channel an injection event perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultChannel {
    /// Camera image corruption (input FI).
    Image,
    /// GPS fix corruption (input FI).
    Gps,
    /// Speedometer corruption (input FI).
    Speed,
    /// LIDAR sweep corruption (input FI).
    Lidar,
    /// Bit-level fault on a sensor scalar (hardware FI).
    SensorHardware,
    /// Bit-level fault on the control command (hardware FI).
    ControlHardware,
    /// Delay/drop/reorder between ADA and actuation (timing FI).
    Timing,
    /// IL-CNN parameter/neuron corruption (ML FI, applied at t = 0).
    Ml,
}

impl FaultChannel {
    /// All channels, in codec tag order (the tag is the index here).
    pub const ALL: [FaultChannel; 8] = [
        FaultChannel::Image,
        FaultChannel::Gps,
        FaultChannel::Speed,
        FaultChannel::Lidar,
        FaultChannel::SensorHardware,
        FaultChannel::ControlHardware,
        FaultChannel::Timing,
        FaultChannel::Ml,
    ];

    /// Short label for triage tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultChannel::Image => "image",
            FaultChannel::Gps => "gps",
            FaultChannel::Speed => "speed",
            FaultChannel::Lidar => "lidar",
            FaultChannel::SensorHardware => "hw-sensor",
            FaultChannel::ControlHardware => "hw-control",
            FaultChannel::Timing => "timing",
            FaultChannel::Ml => "ml",
        }
    }
}

impl fmt::Display for FaultChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded event. Events are stored in frame order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The fault plan's trigger gate passed for the first time — the
    /// scheduled fault became active (t₀ of the activation chain).
    TriggerFired {
        /// Frame of the first activation.
        frame: u64,
    },
    /// A fault channel started actually perturbing the run (onset edge;
    /// a contiguous active episode emits one event).
    Injection {
        /// First frame of the perturbation episode.
        frame: u64,
        /// Which channel was perturbed.
        channel: FaultChannel,
    },
    /// The traffic monitor recorded a violation.
    Violation {
        /// Frame of the violation.
        frame: u64,
        /// Simulation time, seconds.
        time: f64,
        /// What happened.
        kind: ViolationKind,
        /// Ego x position, meters.
        x: f64,
        /// Ego y position, meters.
        y: f64,
        /// Ego odometer at the time, meters.
        odometer: f64,
    },
}

impl TraceEvent {
    /// The frame the event occurred on.
    pub fn frame(&self) -> u64 {
        match *self {
            TraceEvent::TriggerFired { frame }
            | TraceEvent::Injection { frame, .. }
            | TraceEvent::Violation { frame, .. } => frame,
        }
    }
}

/// Full identity of a recorded run: everything needed to re-execute it
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Study name from the work plan.
    pub study: String,
    /// Campaign fault label (e.g. `"Gaussian"`, `"delay 30f"`).
    pub fault: String,
    /// Agent name (`"expert"` or `"il-cnn"`).
    pub agent: String,
    /// Scenario index within the campaign.
    pub scenario_index: usize,
    /// Run index within the scenario.
    pub run_index: usize,
    /// Derived per-run seed the run actually used (replay re-derives it
    /// from the template and asserts equality).
    pub seed: u64,
    /// The campaign's scenario *template* (template seed, not the derived
    /// one) — replay goes through the same derivation as the original run.
    pub scenario: Scenario,
    /// The fault plan as JSON (`avfi_core::FaultSpec` serialization; kept
    /// opaque here so the trace crate stays below the injector crate).
    pub fault_spec_json: String,
    /// FNV-1a fingerprint of the neural agent's serialized weights, when
    /// the agent is neural — replay refuses to compare against different
    /// weights.
    pub weights_fingerprint: Option<u64>,
    /// Detail level the trace was captured at.
    pub level: TraceLevel,
    /// Ring capacity in frames at `blackbox` level (0 at `summary`).
    pub blackbox_frames: usize,
}

impl TraceHeader {
    /// Re-derives the per-run seed from the scenario template and the
    /// `(scenario, run)` indices — the same [`split_seed`]
    /// (`avfi_sim::rng::split_seed`) path every campaign run takes.
    /// Consumers (replay, the shrinker) compare this against
    /// [`TraceHeader::seed`] to detect internally inconsistent traces.
    pub fn derived_seed(&self) -> u64 {
        avfi_sim::rng::split_seed(
            self.scenario.seed,
            ((self.scenario_index as u64) << 32) | (self.run_index as u64 + 1),
        )
    }
}

/// Outcome digest of the traced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Whether the mission succeeded.
    pub success: bool,
    /// Outcome name: `"success"`, `"timeout"`, or `"stuck"`.
    pub outcome: String,
    /// Simulated duration, seconds.
    pub duration: f64,
    /// Distance driven, kilometers.
    pub distance_km: f64,
    /// Total violations recorded.
    pub violations: usize,
    /// Simulation time of the first injection, if any.
    pub injection_time: Option<f64>,
}

/// One run's complete flight-recorder trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Run identity (sufficient for exact re-execution).
    pub header: TraceHeader,
    /// Outcome digest.
    pub summary: TraceSummary,
    /// Events in frame order.
    pub events: Vec<TraceEvent>,
    /// Frame stream in chronological order. At `blackbox` level this is
    /// the tail window the ring retained; empty at `summary` level.
    pub frames: Vec<TrajectorySample>,
    /// Frames the bounded ring overwrote (evidence the window was full).
    pub dropped_frames: u64,
    /// Harness events dropped past the per-run event cap (0 in practice;
    /// nonzero only for pathological intermittent triggers).
    pub dropped_events: u64,
}

impl RunTrace {
    /// Whether the traced run counts as a *failure* for black-box flush
    /// and triage purposes: the mission did not succeed, or any traffic
    /// violation occurred.
    pub fn is_failure(&self) -> bool {
        !self.summary.success || self.summary.violations > 0
    }

    /// The first violation event, if any.
    pub fn first_violation(&self) -> Option<&TraceEvent> {
        self.events
            .iter()
            .find(|e| matches!(e, TraceEvent::Violation { .. }))
    }

    /// The last injection event at or before `frame`, if any — the
    /// injection that causally preceded whatever happened at `frame`.
    pub fn last_injection_before(&self, frame: u64) -> Option<(u64, FaultChannel)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Injection { frame: f, channel } if f <= frame => Some((f, channel)),
                _ => None,
            })
            .next_back()
    }

    /// Lossless JSON export of the whole trace.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none occur for these types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// FNV-1a fingerprint of a byte slice (used for the weights fingerprint
/// and the codec checksum).
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_roundtrip() {
        for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Blackbox] {
            assert_eq!(TraceLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn channel_tags_are_stable() {
        for (i, ch) in FaultChannel::ALL.iter().enumerate() {
            assert_eq!(FaultChannel::ALL[i], *ch);
        }
        assert_eq!(FaultChannel::ALL.len(), 8);
    }

    #[test]
    fn event_frame_accessor() {
        assert_eq!(TraceEvent::TriggerFired { frame: 7 }.frame(), 7);
        assert_eq!(
            TraceEvent::Injection {
                frame: 9,
                channel: FaultChannel::Gps
            }
            .frame(),
            9
        );
    }

    #[test]
    fn fingerprint_differs_on_flip() {
        let a = fingerprint(b"hello");
        let mut flipped = b"hello".to_vec();
        flipped[2] ^= 1;
        assert_ne!(a, fingerprint(&flipped));
        assert_eq!(a, fingerprint(b"hello"));
    }
}
