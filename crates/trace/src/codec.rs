//! Compact binary codec for [`RunTrace`]: LEB128 varints everywhere, the
//! frame stream delta-encoded, the whole payload FNV-checksummed.
//!
//! Frame streams dominate trace size. Consecutive frames are strongly
//! correlated — frame numbers are monotonic and every `f64` field moves
//! a little (and nearly linearly) per 1/15 s tick — so each field is
//! mapped to a total-order-preserving `u64`, linearly predicted from the
//! two previous frames (delta-of-delta, Gorilla style), and the residual
//! stored as a zigzag varint: constant and linearly-moving fields cost
//! one to three bytes per frame instead of eight. The codec is lossless
//! (every `f64` roundtrips bit-for-bit); decode → encode is the identity
//! byte-for-byte.

use crate::model::{fingerprint, FaultChannel, RunTrace, TraceEvent, TraceHeader, TraceSummary};
use avfi_sim::math::Vec2;
use avfi_sim::physics::VehicleControl;
use avfi_sim::recorder::TrajectorySample;
use avfi_sim::violation::ViolationKind;
use std::fmt;

/// File magic: "AVTR".
pub const MAGIC: [u8; 4] = *b"AVTR";
/// Format version.
pub const VERSION: u8 = 1;

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the `AVTR` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u8),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The FNV checksum trailer does not match the payload — the trace
    /// was corrupted or truncated after recording.
    ChecksumMismatch,
    /// An unknown event/channel/kind tag was encountered.
    BadTag(u8),
    /// The embedded header or summary JSON failed to parse.
    BadJson(String),
    /// Bytes remain after the last decoded field.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a trace file (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "trace truncated mid-structure"),
            DecodeError::ChecksumMismatch => write!(f, "trace checksum mismatch (corrupted)"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::BadJson(e) => write!(f, "embedded JSON invalid: {e}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_bits(buf: &mut Vec<u8>, v: f64) {
    put_varint(buf, v.to_bits());
}

/// Maps `f64` bits to a `u64` whose integer order matches the numeric
/// order of the doubles (the standard sign-flip trick), so that smoothly
/// moving values — including negative ones and zero crossings — have
/// smoothly moving integer images. Bijective; see [`from_ordered`].
fn to_ordered(bits: u64) -> u64 {
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

fn from_ordered(m: u64) -> u64 {
    if m >> 63 == 1 {
        m ^ (1 << 63)
    } else {
        !m
    }
}

/// Zigzag-encodes a wrapping difference so small residuals of either
/// sign become small varints.
fn zigzag(d: u64) -> u64 {
    let d = d as i64;
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> u64 {
    (((z >> 1) as i64) ^ -((z & 1) as i64)) as u64
}

/// Per-field predictor state: the ordered images of the two previous
/// frames. Prediction is linear extrapolation in wrapping arithmetic.
#[derive(Clone, Copy, Default)]
struct FieldPredictor {
    prev: u64,
    prev2: u64,
}

impl FieldPredictor {
    fn predict(self) -> u64 {
        self.prev.wrapping_add(self.prev.wrapping_sub(self.prev2))
    }

    fn advance(&mut self, m: u64) {
        self.prev2 = self.prev;
        self.prev = m;
    }
}

/// Bounds-checked cursor over the encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::BadTag(0x80))
    }

    fn bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.varint()?))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn violation_tag(kind: ViolationKind) -> u8 {
    ViolationKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind in ALL") as u8
}

fn encode_event(buf: &mut Vec<u8>, event: &TraceEvent) {
    match *event {
        TraceEvent::TriggerFired { frame } => {
            buf.push(0);
            put_varint(buf, frame);
        }
        TraceEvent::Injection { frame, channel } => {
            buf.push(1);
            put_varint(buf, frame);
            buf.push(
                FaultChannel::ALL
                    .iter()
                    .position(|c| *c == channel)
                    .expect("channel") as u8,
            );
        }
        TraceEvent::Violation {
            frame,
            time,
            kind,
            x,
            y,
            odometer,
        } => {
            buf.push(2);
            put_varint(buf, frame);
            buf.push(violation_tag(kind));
            put_bits(buf, time);
            put_bits(buf, x);
            put_bits(buf, y);
            put_bits(buf, odometer);
        }
    }
}

fn decode_event(r: &mut Reader<'_>) -> Result<TraceEvent, DecodeError> {
    match r.u8()? {
        0 => Ok(TraceEvent::TriggerFired { frame: r.varint()? }),
        1 => {
            let frame = r.varint()?;
            let tag = r.u8()?;
            let channel = *FaultChannel::ALL
                .get(tag as usize)
                .ok_or(DecodeError::BadTag(tag))?;
            Ok(TraceEvent::Injection { frame, channel })
        }
        2 => {
            let frame = r.varint()?;
            let tag = r.u8()?;
            let kind = *ViolationKind::ALL
                .get(tag as usize)
                .ok_or(DecodeError::BadTag(tag))?;
            Ok(TraceEvent::Violation {
                frame,
                kind,
                time: r.bits()?,
                x: r.bits()?,
                y: r.bits()?,
                odometer: r.bits()?,
            })
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

/// The eight `f64` fields of a frame, in stream order.
fn frame_fields(s: &TrajectorySample) -> [f64; 8] {
    [
        s.time,
        s.position.x,
        s.position.y,
        s.heading,
        s.speed,
        s.control.steer,
        s.control.throttle,
        s.control.brake,
    ]
}

/// Encodes a trace into its binary form.
pub fn encode(trace: &RunTrace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256 + trace.frames.len() * 24);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);

    let header_json = serde_json::to_string(&trace.header).expect("header serializes");
    put_varint(&mut buf, header_json.len() as u64);
    buf.extend_from_slice(header_json.as_bytes());
    let summary_json = serde_json::to_string(&trace.summary).expect("summary serializes");
    put_varint(&mut buf, summary_json.len() as u64);
    buf.extend_from_slice(summary_json.as_bytes());

    put_varint(&mut buf, trace.events.len() as u64);
    for event in &trace.events {
        encode_event(&mut buf, event);
    }

    put_varint(&mut buf, trace.frames.len() as u64);
    put_varint(&mut buf, trace.dropped_frames);
    put_varint(&mut buf, trace.dropped_events);
    let mut prev_frame = 0u64;
    let mut predictors = [FieldPredictor::default(); 8];
    for sample in &trace.frames {
        put_varint(&mut buf, sample.frame.wrapping_sub(prev_frame));
        prev_frame = sample.frame;
        for (field, p) in frame_fields(sample).iter().zip(predictors.iter_mut()) {
            let m = to_ordered(field.to_bits());
            put_varint(&mut buf, zigzag(m.wrapping_sub(p.predict())));
            p.advance(m);
        }
    }

    let checksum = fingerprint(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());
    buf
}

/// Decodes a binary trace, verifying magic, version, checksum, and that
/// no bytes trail the structure.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first problem found; any
/// single corrupted byte is caught by the checksum.
pub fn decode(bytes: &[u8]) -> Result<RunTrace, DecodeError> {
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(DecodeError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fingerprint(payload) != stored {
        return Err(DecodeError::ChecksumMismatch);
    }
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }

    let header_len = r.varint()? as usize;
    let header: TraceHeader = serde_json::from_str(
        std::str::from_utf8(r.take(header_len)?)
            .map_err(|e| DecodeError::BadJson(e.to_string()))?,
    )
    .map_err(|e| DecodeError::BadJson(e.to_string()))?;
    let summary_len = r.varint()? as usize;
    let summary: TraceSummary = serde_json::from_str(
        std::str::from_utf8(r.take(summary_len)?)
            .map_err(|e| DecodeError::BadJson(e.to_string()))?,
    )
    .map_err(|e| DecodeError::BadJson(e.to_string()))?;

    let event_count = r.varint()? as usize;
    // Guard against absurd counts from corrupted-but-checksummed input
    // (cannot happen in practice; keeps allocation bounded regardless).
    if event_count > payload.len() {
        return Err(DecodeError::Truncated);
    }
    let mut events = Vec::with_capacity(event_count);
    for _ in 0..event_count {
        events.push(decode_event(&mut r)?);
    }

    let frame_count = r.varint()? as usize;
    if frame_count > payload.len() {
        return Err(DecodeError::Truncated);
    }
    let dropped_frames = r.varint()?;
    let dropped_events = r.varint()?;
    let mut frames = Vec::with_capacity(frame_count);
    let mut prev_frame = 0u64;
    let mut predictors = [FieldPredictor::default(); 8];
    for _ in 0..frame_count {
        prev_frame = prev_frame.wrapping_add(r.varint()?);
        let mut f = [0.0f64; 8];
        for (slot, p) in f.iter_mut().zip(predictors.iter_mut()) {
            let m = p.predict().wrapping_add(unzigzag(r.varint()?));
            p.advance(m);
            *slot = f64::from_bits(from_ordered(m));
        }
        frames.push(TrajectorySample {
            time: f[0],
            frame: prev_frame,
            position: Vec2::new(f[1], f[2]),
            heading: f[3],
            speed: f[4],
            control: VehicleControl {
                steer: f[5],
                throttle: f[6],
                brake: f[7],
            },
        });
    }

    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(RunTrace {
        header,
        summary,
        events,
        frames,
        dropped_frames,
        dropped_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceLevel;
    use avfi_sim::scenario::{Scenario, TownSpec};

    fn sample_trace() -> RunTrace {
        let scenario = Scenario::builder(TownSpec::grid(2, 2)).seed(3).build();
        RunTrace {
            header: TraceHeader {
                study: "test".into(),
                fault: "Gaussian".into(),
                agent: "expert".into(),
                scenario_index: 1,
                run_index: 2,
                seed: 0xDEAD_BEEF,
                scenario,
                fault_spec_json: "\"None\"".into(),
                weights_fingerprint: Some(42),
                level: TraceLevel::Blackbox,
                blackbox_frames: 450,
            },
            summary: TraceSummary {
                success: false,
                outcome: "stuck".into(),
                duration: 21.4,
                distance_km: 0.031,
                violations: 2,
                injection_time: Some(0.0),
            },
            events: vec![
                TraceEvent::TriggerFired { frame: 0 },
                TraceEvent::Injection {
                    frame: 0,
                    channel: FaultChannel::ControlHardware,
                },
                TraceEvent::Violation {
                    frame: 31,
                    time: 31.0 / 15.0,
                    kind: ViolationKind::OffRoad,
                    x: -3.25,
                    y: 17.5,
                    odometer: 12.875,
                },
            ],
            frames: (0..64)
                .map(|i| TrajectorySample {
                    time: i as f64 / 15.0,
                    frame: i,
                    position: Vec2::new(1.0 + i as f64 * 0.21, -0.5 + i as f64 * 0.11),
                    heading: 0.3 + i as f64 * 1e-3,
                    speed: i as f64 * 0.13,
                    control: VehicleControl::new(0.01 * i as f64, 0.7, 0.0),
                })
                .collect(),
            dropped_frames: 7,
            dropped_events: 0,
        }
    }

    #[test]
    fn roundtrip_exact() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(trace, back);
        // Encoding the decoded trace is byte-identical.
        assert_eq!(bytes, encode(&back));
    }

    #[test]
    fn delta_stream_is_compact() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        // 64 frames × 8 f64 fields would be 4 KiB raw; delta + varint
        // must do much better on this smooth trajectory.
        assert!(
            bytes.len() < 2800,
            "trace unexpectedly large: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        // Exhaustive over a stride of positions (full loop is slow in
        // debug): any flipped byte must fail, almost always by checksum.
        for pos in (0..bytes.len()).step_by(13) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_trace());
        assert_eq!(
            decode(&bytes[..bytes.len() - 3]),
            Err(DecodeError::ChecksumMismatch)
        );
        assert_eq!(decode(&bytes[..6]), Err(DecodeError::Truncated));
        assert_eq!(decode(b""), Err(DecodeError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Valid payload + extra byte + *recomputed* checksum: structure
        // check must still reject it.
        let bytes = encode(&sample_trace());
        let mut padded = bytes[..bytes.len() - 8].to_vec();
        padded.push(0);
        let checksum = fingerprint(&padded);
        padded.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(decode(&padded), Err(DecodeError::TrailingBytes(1)));
    }
}
