//! # avfi-trace — the black-box flight recorder for AVFI runs
//!
//! A fault-injection campaign that only reports aggregate metrics (MSR,
//! VPK, APK, TTV) cannot explain *how* a fault propagated to an accident.
//! This crate defines the structured per-run [`RunTrace`] that makes a
//! failed run debuggable after the fact:
//!
//! * a [`TraceHeader`] carrying the full run identity — `(study, campaign,
//!   scenario, run, seed)` plus the scenario template and fault plan — so
//!   any recorded run can be re-executed bit-identically,
//! * [`TraceEvent`]s: trigger firings, per-channel injection onsets, and
//!   violation onsets,
//! * a frame stream of [`TrajectorySample`]s (ego state + applied
//!   control), captured at `blackbox` detail through a bounded ring so
//!   memory stays constant at campaign scale,
//! * a compact binary [`codec`] (varint + XOR-delta encoding for the
//!   frame stream, FNV-checksummed) with lossless JSON export.
//!
//! Capture hooks live in `avfi-core` (harness + campaign + engine); this
//! crate owns the data model and the on-disk format. Replay and failure
//! triage are built on top in `avfi_core::replay` / `avfi_core::triage`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod io;
pub mod model;

pub use codec::{decode, encode, DecodeError};
pub use io::{list_trace_files, read_trace_file, trace_file_name, write_trace_file};
pub use model::{
    fingerprint, FaultChannel, RunTrace, TraceEvent, TraceHeader, TraceLevel, TraceSummary,
};
