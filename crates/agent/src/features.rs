//! Camera preprocessing for the imitation network.

use avfi_nn::Tensor;
use avfi_sim::sensors::Image;

/// Width of the network input image, pixels.
pub const NET_WIDTH: usize = 32;
/// Height of the network input image, pixels.
pub const NET_HEIGHT: usize = 24;

/// Normalization divisor for the speed scalar appended at the head input.
pub const SPEED_SCALE: f64 = 10.0;

/// Converts a camera image into the network input tensor
/// `[1, NET_HEIGHT, NET_WIDTH]`: grayscale, nearest-neighbor downsample,
/// zero-centered (`luma − 0.5`).
pub fn image_to_tensor(image: &Image) -> Tensor {
    let small = if image.width() == NET_WIDTH && image.height() == NET_HEIGHT {
        image.clone()
    } else {
        image.resized(NET_WIDTH, NET_HEIGHT)
    };
    let gray: Vec<f32> = small.to_grayscale().iter().map(|v| v - 0.5).collect();
    Tensor::from_vec(gray, vec![1, NET_HEIGHT, NET_WIDTH])
}

/// Normalizes a speed (m/s) for the head input.
pub fn normalize_speed(speed: f64) -> f32 {
    (speed / SPEED_SCALE) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_shape_and_centering() {
        let img = Image::filled(64, 48, [1.0, 1.0, 1.0]);
        let t = image_to_tensor(&img);
        assert_eq!(t.shape(), &[1, NET_HEIGHT, NET_WIDTH]);
        // White → luma 1.0 → centered 0.5.
        assert!(t.data().iter().all(|v| (*v - 0.5).abs() < 1e-4));
    }

    #[test]
    fn no_resize_needed_case() {
        let img = Image::filled(NET_WIDTH, NET_HEIGHT, [0.0, 0.0, 0.0]);
        let t = image_to_tensor(&img);
        assert!(t.data().iter().all(|v| (*v + 0.5).abs() < 1e-6));
    }

    #[test]
    fn speed_normalization() {
        assert_eq!(normalize_speed(5.0), 0.5);
        assert_eq!(normalize_speed(0.0), 0.0);
    }
}
