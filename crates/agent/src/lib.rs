//! # avfi-agent — autonomous driving agents
//!
//! The AVFI paper drives its AV with the conditional imitation-learning CNN
//! of Codevilla et al.: a camera-in/control-out network whose output head
//! is selected by a high-level planner command (follow / left / right /
//! straight). This crate reproduces that agent end to end, in process:
//!
//! * [`expert::ExpertDriver`] — a rule-based autopilot (pure-pursuit
//!   steering + speed PID + obstacle/red-light braking) that plays the role
//!   of the human demonstration data the original network was trained on,
//!   and doubles as the fault-free oracle baseline;
//! * [`features`] — camera preprocessing (grayscale downsample) into
//!   network input tensors;
//! * [`ilnet::IlNetwork`] — the conditional network: shared conv trunk,
//!   one head per command, speed appended at the head input;
//! * [`dataset`] / [`train`] — demonstration collection (with exploration
//!   noise, DAgger-style) and the imitation trainer;
//! * [`controller`] — the [`controller::Driver`] abstraction the campaign
//!   runner and the fault injectors wrap.
//!
//! Training is fast enough to run in tests: the default
//! [`train::train_default_agent`] fits the network in seconds on one core.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod dataset;
pub mod eval;
pub mod expert;
pub mod features;
pub mod ilnet;
pub mod train;

pub use controller::{Driver, DriverInput, NeuralDriver};
pub use expert::ExpertDriver;
pub use ilnet::IlNetwork;
