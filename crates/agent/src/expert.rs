//! Rule-based expert autopilot.
//!
//! The expert drives from ground truth (route waypoints, traffic-light
//! state, actor positions) with pure-pursuit steering, proportional speed
//! control, and braking rules for leaders, crossing pedestrians and red
//! lights. It plays two roles in the reproduction:
//!
//! 1. **demonstration source** — the imitation network is trained to mimic
//!    it (standing in for the human demonstration videos of Codevilla et
//!    al.), and
//! 2. **fault-free oracle baseline** — campaigns can run it instead of the
//!    neural agent to separate agent error from injected faults.

use crate::controller::{Driver, DriverInput};
use avfi_sim::map::{LaneKind, LightState, SignalGroup};
use avfi_sim::math::{clamp, Ray};
use avfi_sim::physics::{CollisionShape, VehicleControl};
use avfi_sim::world::World;

/// Tunable gains for the expert controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertGains {
    /// Lookahead distance per m/s of speed.
    pub lookahead_per_speed: f64,
    /// Minimum lookahead distance, meters.
    pub lookahead_min: f64,
    /// Maximum lookahead distance, meters.
    pub lookahead_max: f64,
    /// Proportional throttle gain per m/s of speed error.
    pub throttle_gain: f64,
    /// Proportional brake gain per m/s of speed error.
    pub brake_gain: f64,
    /// Obstacle probe range, meters.
    pub probe_range: f64,
}

impl Default for ExpertGains {
    fn default() -> Self {
        ExpertGains {
            lookahead_per_speed: 1.1,
            lookahead_min: 4.5,
            lookahead_max: 13.0,
            throttle_gain: 0.55,
            brake_gain: 0.6,
            probe_range: 28.0,
        }
    }
}

/// The rule-based autopilot; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ExpertDriver {
    gains: ExpertGains,
}

impl ExpertDriver {
    /// Creates an expert with default gains.
    pub fn new() -> Self {
        ExpertDriver {
            gains: ExpertGains::default(),
        }
    }

    /// Creates an expert with custom gains.
    pub fn with_gains(gains: ExpertGains) -> Self {
        ExpertDriver { gains }
    }

    /// Computes the control for the current world state (also used by the
    /// demonstration collector to label noisy states).
    pub fn control_for(&self, world: &World) -> VehicleControl {
        let g = &self.gains;
        let ego = world.ego();
        let tracker = world.tracker();
        let map = world.map();
        let v = ego.speed;
        let params = world.ego_model().params();

        // --- Pure-pursuit steering toward a lookahead waypoint.
        let ld = clamp(g.lookahead_per_speed * v, g.lookahead_min, g.lookahead_max);
        let target = tracker.lookahead(ld).position;
        let alpha = ego.pose.bearing_to(target);
        let raw_steer = (2.0 * params.wheelbase * alpha.sin()).atan2(ld) / params.max_steer;
        let steer = clamp(raw_steer, -1.0, 1.0);

        // --- Target speed: waypoint speed limits, slowed in tight turns.
        let here_limit = tracker.current().speed_limit;
        let ahead_limit = tracker.lookahead(ld * 0.6).speed_limit;
        let mut v_target = here_limit.min(ahead_limit);
        v_target *= clamp(1.0 - alpha.abs() * 1.1, 0.35, 1.0);

        // --- Red/yellow light ahead: stop at the lane end.
        let lane = map.lane(tracker.current().lane);
        if lane.kind() == LaneKind::Drive {
            if let Some(iid) = map.intersection_after(lane.id()) {
                let isect = map.intersection(iid);
                if isect.is_signalized() {
                    let group = SignalGroup::from_heading(lane.end_heading());
                    let state = isect.light_state(group, world.time());
                    if state != LightState::Green {
                        let proj = lane.project(ego.pose.position);
                        let dist = (lane.length() - proj.s - 2.5).max(0.0);
                        let envelope = world.ego_model().stopping_distance(v, 1.0) * 2.0 + 6.0;
                        if dist < envelope {
                            // Ramp down to a stop at the line.
                            v_target = v_target.min((0.45 * dist).max(0.0));
                            if dist < 1.5 {
                                v_target = 0.0;
                            }
                        }
                    }
                }
            }
        }

        // --- Obstacles ahead: ray probes along the heading fan.
        let shapes = world.actor_shapes();
        let front = ego.pose.position + ego.pose.forward() * (params.length * 0.5);
        let mut d_min = f64::INFINITY;
        for rel_deg in [-8.0f64, 0.0, 8.0] {
            let ray = Ray::from_angle(front, ego.pose.heading + rel_deg.to_radians());
            for shape in &shapes {
                let hit = match shape {
                    CollisionShape::Box(o) => ray.hit_obb(o),
                    CollisionShape::Circle { center, radius } => {
                        // Inflate pedestrians: keep a wider berth.
                        ray.hit_circle(*center, radius + 0.5)
                    }
                    CollisionShape::Fixed(a) => ray.hit_aabb(a),
                };
                if let Some(t) = hit {
                    if t < d_min {
                        d_min = t;
                    }
                }
            }
        }
        if d_min < g.probe_range {
            // Follow-distance rule: leave a 5 m standoff.
            v_target = v_target.min(((d_min - 5.0) * 0.5).max(0.0));
        }

        // --- Longitudinal control.
        let err = v_target - v;
        let (throttle, brake) = if err >= 0.0 {
            (clamp(g.throttle_gain * err + 0.05, 0.0, 1.0), 0.0)
        } else {
            (0.0, clamp(-g.brake_gain * err, 0.0, 1.0))
        };
        // Emergency stop for very close obstacles.
        let (throttle, brake) = if d_min < 4.0 {
            (0.0, 1.0)
        } else {
            (throttle, brake)
        };

        VehicleControl::new(steer, throttle, brake)
    }
}

impl Driver for ExpertDriver {
    fn drive(&mut self, input: &DriverInput<'_>) -> VehicleControl {
        self.control_for(input.world)
    }

    fn name(&self) -> &'static str {
        "expert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::scenario::{Scenario, TownSpec};
    use avfi_sim::world::MissionStatus;

    fn drive_mission(seed: u64, npcs: usize, peds: usize) -> (MissionStatus, usize, f64) {
        let scenario = Scenario::builder(TownSpec::grid(3, 3))
            .seed(seed)
            .npc_vehicles(npcs)
            .pedestrians(peds)
            .time_budget(150.0)
            .build();
        let mut world = World::from_scenario(&scenario);
        let expert = ExpertDriver::new();
        let mut status = MissionStatus::Running;
        while !status.is_terminal() {
            let control = expert.control_for(&world);
            status = world.step(control);
        }
        (status, world.monitor().count(), world.odometer())
    }

    #[test]
    fn completes_empty_town_mission() {
        let (status, violations, dist) = drive_mission(11, 0, 0);
        assert!(status.is_success(), "status={status:?}, dist={dist}");
        assert_eq!(violations, 0, "expert should drive clean");
    }

    #[test]
    fn completes_missions_across_seeds() {
        let mut successes = 0;
        for seed in 0..5 {
            let (status, _, _) = drive_mission(seed, 0, 0);
            if status.is_success() {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only {successes}/5 clean missions");
    }

    #[test]
    fn mostly_succeeds_with_traffic() {
        let mut successes = 0;
        for seed in 0..4 {
            let (status, _, _) = drive_mission(100 + seed, 4, 4);
            if status.is_success() {
                successes += 1;
            }
        }
        assert!(successes >= 2, "only {successes}/4 with traffic");
    }

    #[test]
    fn brakes_for_obstacle_wall_of_traffic() {
        // Spawn a scenario and verify the expert never exceeds the limit
        // grossly and produces sane controls.
        let scenario = Scenario::builder(TownSpec::grid(3, 3))
            .seed(33)
            .npc_vehicles(8)
            .pedestrians(0)
            .time_budget(30.0)
            .build();
        let mut world = World::from_scenario(&scenario);
        let expert = ExpertDriver::new();
        for _ in 0..(30.0 * 15.0) as usize {
            let c = expert.control_for(&world);
            assert!(c.steer.is_finite() && c.throttle.is_finite());
            assert!(
                !(c.throttle > 0.0 && c.brake > 0.0),
                "throttle+brake together"
            );
            if world.step(c).is_terminal() {
                break;
            }
            assert!(world.ego().speed <= 9.5, "overspeed {}", world.ego().speed);
        }
    }
}
