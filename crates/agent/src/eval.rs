//! Closed-loop evaluation helpers: run a driver through missions and
//! summarize driving quality (used by training loops, examples and tests;
//! the full fault-injection campaign machinery lives in `avfi-core`).

use crate::controller::{Driver, DriverInput};
use avfi_sim::scenario::Scenario;
use avfi_sim::violation::ViolationKind;
use avfi_sim::world::{MissionStatus, World};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Outcome of one evaluated mission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MissionReport {
    /// Scenario seed.
    pub seed: u64,
    /// Final status.
    pub status: MissionStatus,
    /// Distance driven, meters.
    pub distance: f64,
    /// Wall duration in simulation seconds.
    pub duration: f64,
    /// Mean speed while the mission ran, m/s.
    pub mean_speed: f64,
    /// Violation counts by kind.
    pub violations: BTreeMap<String, usize>,
}

impl MissionReport {
    /// Total violation count.
    pub fn violation_count(&self) -> usize {
        self.violations.values().sum()
    }
}

/// Batch evaluation summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Per-mission reports.
    pub missions: Vec<MissionReport>,
}

impl EvalSummary {
    /// Fraction of missions completed, in percent.
    pub fn success_rate(&self) -> f64 {
        if self.missions.is_empty() {
            return 0.0;
        }
        100.0
            * self
                .missions
                .iter()
                .filter(|m| m.status.is_success())
                .count() as f64
            / self.missions.len() as f64
    }

    /// Violations per kilometer over the whole batch.
    pub fn violations_per_km(&self) -> f64 {
        let v: usize = self.missions.iter().map(|m| m.violation_count()).sum();
        let km: f64 = self.missions.iter().map(|m| m.distance).sum::<f64>() / 1000.0;
        v as f64 / km.max(0.05)
    }
}

/// Runs one mission to completion with the given driver.
pub fn run_mission(scenario: &Scenario, driver: &mut dyn Driver) -> MissionReport {
    let mut world = World::from_scenario(scenario);
    let mut speed_sum = 0.0;
    let mut frames = 0u64;
    let mut obs = world.observe();
    loop {
        let control = driver.drive(&DriverInput::clean(&obs, &world));
        speed_sum += world.ego().speed;
        frames += 1;
        if world.step(control).is_terminal() {
            break;
        }
        world.observe_into(&mut obs);
    }
    let mut violations = BTreeMap::new();
    for kind in ViolationKind::ALL {
        let n = world
            .monitor()
            .events()
            .iter()
            .filter(|e| e.kind == kind)
            .count();
        if n > 0 {
            violations.insert(kind.to_string(), n);
        }
    }
    MissionReport {
        seed: scenario.seed,
        status: world.mission(),
        distance: world.odometer(),
        duration: world.time(),
        mean_speed: if frames > 0 {
            speed_sum / frames as f64
        } else {
            0.0
        },
        violations,
    }
}

/// Runs a batch of missions.
pub fn evaluate(scenarios: &[Scenario], driver: &mut dyn Driver) -> EvalSummary {
    EvalSummary {
        missions: scenarios.iter().map(|s| run_mission(s, driver)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::ExpertDriver;
    use avfi_sim::scenario::TownSpec;

    fn scenarios(n: u64) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                let mut town = TownSpec::grid(3, 3);
                town.signalized = false;
                Scenario::builder(town)
                    .seed(500 + i)
                    .npc_vehicles(0)
                    .pedestrians(0)
                    .time_budget(120.0)
                    .build()
            })
            .collect()
    }

    #[test]
    fn expert_evaluation_summary() {
        let mut expert = ExpertDriver::new();
        let summary = evaluate(&scenarios(3), &mut expert);
        assert_eq!(summary.missions.len(), 3);
        assert!(summary.success_rate() >= 66.0, "{}", summary.success_rate());
        for m in &summary.missions {
            assert!(m.distance > 50.0);
            assert!(m.mean_speed > 1.0);
        }
    }

    #[test]
    fn empty_batch_is_zero() {
        let mut expert = ExpertDriver::new();
        let summary = evaluate(&[], &mut expert);
        assert_eq!(summary.success_rate(), 0.0);
    }
}
