//! Imitation training loop.

use crate::dataset::{collect_many, CollectConfig, DemoDataset};
use crate::ilnet::IlNetwork;
use avfi_nn::optim::{Adam, Optimizer};
use avfi_sim::rng::stream_rng;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::weather::Weather;
use rand::seq::SliceRandom;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Samples per optimizer step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling / init seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch: 16,
            lr: 2e-3,
            seed: 0x7EA1,
        }
    }
}

/// Trains `net` on `data`; returns the mean loss per epoch.
pub fn train(net: &mut IlNetwork, data: &DemoDataset, config: &TrainConfig) -> Vec<f32> {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut opt = Adam::new(config.lr);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = stream_rng(config.seed, 0);
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f64;
        let mut in_batch = 0usize;
        for &i in &order {
            let s = &data.samples()[i];
            total += net.loss_backward(&s.image, s.speed, s.command, &s.target) as f64;
            in_batch += 1;
            if in_batch >= config.batch {
                opt.step(&mut net.params());
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            opt.step(&mut net.params());
        }
        epoch_losses.push((total / data.len() as f64) as f32);
    }
    epoch_losses
}

/// The scenarios used to train the default agent: missions across several
/// seeds of the 3×3 town, covering clear and overcast light, empty roads
/// (lane keeping and turning) and light traffic (following and braking
/// behind leaders — the expert's demonstrations include the full
/// stop-and-resume cycle).
pub fn default_training_scenarios() -> Vec<Scenario> {
    // Traffic-free on purpose: demonstrations with full stops behind
    // leaders teach the net the "inertia problem" of conditional imitation
    // learning (speed ≈ 0 ⇒ keep braking ⇒ permanent stall), which
    // Codevilla et al. also report. Obstacle response is evaluated as a
    // weakness of the ADA, exactly as in CARLA's CoRL benchmark.
    let spec = [
        (11u64, Weather::ClearNoon, 0usize, 0usize),
        (23, Weather::ClearNoon, 0, 0),
        (37, Weather::Overcast, 0, 0),
        (51, Weather::ClearNoon, 0, 0),
        (61, Weather::Overcast, 0, 0),
        (83, Weather::Overcast, 0, 0),
    ];
    spec.iter()
        .map(|&(seed, weather, npcs, peds)| {
            // Unsignalized, like the evaluation suite: red-light stops in
            // the demonstrations would feed the inertia problem too.
            let mut town = TownSpec::grid(3, 3);
            town.signalized = false;
            Scenario::builder(town)
                .seed(seed)
                .npc_vehicles(npcs)
                .pedestrians(peds)
                .weather(weather)
                .time_budget(90.0)
                .build()
        })
        .collect()
}

/// Collects demonstrations and trains the default agent.
///
/// Returns the trained network and the per-epoch losses. Deterministic
/// given `seed`.
pub fn train_default_agent(seed: u64) -> (IlNetwork, Vec<f32>) {
    let scenarios = default_training_scenarios();
    let collect_cfg = CollectConfig {
        max_frames: 1300,
        seed,
        ..CollectConfig::default()
    };
    let data = collect_many(&scenarios, &collect_cfg);
    let mut net = IlNetwork::new(seed);
    let losses = train(
        &mut net,
        &data,
        &TrainConfig {
            seed,
            ..TrainConfig::default()
        },
    );
    (net, losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::collect_scenario;

    #[test]
    fn loss_decreases_over_epochs() {
        let scenario = Scenario::builder(TownSpec::grid(3, 3))
            .seed(5)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(30.0)
            .build();
        let data = collect_scenario(
            &scenario,
            &CollectConfig {
                max_frames: 300,
                ..CollectConfig::default()
            },
        );
        let mut net = IlNetwork::new(9);
        let losses = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        assert_eq!(losses.len(), 4);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "losses={losses:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut net = IlNetwork::new(1);
        let _ = train(&mut net, &DemoDataset::new(), &TrainConfig::default());
    }
}
