//! Demonstration collection for imitation learning.
//!
//! The collector runs the expert in closed loop and records
//! (observation features, expert action) pairs. Following the original
//! conditional-imitation recipe, temporally correlated *exploration noise*
//! is injected into the executed steering so the dataset covers off-center
//! states — the expert's corrective action is recorded as the label, which
//! is what makes the learned policy stable in closed loop.

use crate::expert::ExpertDriver;
use crate::features::{image_to_tensor, normalize_speed};
use avfi_nn::Tensor;
use avfi_sim::map::route::Command;
use avfi_sim::physics::VehicleControl;
use avfi_sim::rng::stream_rng;
use avfi_sim::scenario::Scenario;
use avfi_sim::world::World;
use rand::RngExt;

/// One demonstration sample.
#[derive(Debug, Clone)]
pub struct DemoSample {
    /// Preprocessed camera tensor `[1, 24, 32]`.
    pub image: Tensor,
    /// Normalized speed.
    pub speed: f32,
    /// Active planner command.
    pub command: Command,
    /// Expert action `[steer, throttle, brake]`.
    pub target: [f32; 3],
}

/// A demonstration dataset.
#[derive(Debug, Clone, Default)]
pub struct DemoDataset {
    samples: Vec<DemoSample>,
}

impl DemoDataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        DemoDataset::default()
    }

    /// The samples.
    pub fn samples(&self) -> &[DemoSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: DemoSample) {
        self.samples.push(sample);
    }

    /// Merges another dataset into this one.
    pub fn extend(&mut self, other: DemoDataset) {
        self.samples.extend(other.samples);
    }

    /// Count of samples per command branch.
    pub fn per_command_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for s in &self.samples {
            counts[s.command.index()] += 1;
        }
        counts
    }
}

/// Collection options.
#[derive(Debug, Clone, Copy)]
pub struct CollectConfig {
    /// Maximum frames recorded per scenario.
    pub max_frames: usize,
    /// Probability per frame of starting a noise episode.
    pub noise_rate: f64,
    /// Length of a noise episode, frames.
    pub noise_len: usize,
    /// Peak steering offset during a noise episode.
    pub noise_mag: f64,
    /// Seed for the noise stream.
    pub seed: u64,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            max_frames: 1200,
            noise_rate: 0.02,
            noise_len: 8,
            noise_mag: 0.35,
            seed: 0xDA66,
        }
    }
}

/// Runs the expert on one scenario and records demonstrations.
pub fn collect_scenario(scenario: &Scenario, config: &CollectConfig) -> DemoDataset {
    let mut world = World::from_scenario(scenario);
    let expert = ExpertDriver::new();
    let mut rng = stream_rng(config.seed, scenario.seed);
    let mut data = DemoDataset::new();
    let mut noise_left = 0usize;
    let mut noise_amp = 0.0f64;
    for _ in 0..config.max_frames {
        let obs = world.observe();
        let label = expert.control_for(&world);
        data.push(DemoSample {
            image: image_to_tensor(&obs.sensors.image),
            speed: normalize_speed(obs.sensors.speed),
            command: obs.command,
            target: [
                label.steer as f32,
                label.throttle as f32,
                label.brake as f32,
            ],
        });
        // Exploration noise: execute a perturbed steering, keep the clean
        // label.
        let executed = if noise_left > 0 {
            noise_left -= 1;
            VehicleControl::new(label.steer + noise_amp, label.throttle, label.brake)
        } else {
            if rng.random_range(0.0..1.0) < config.noise_rate {
                noise_left = config.noise_len;
                noise_amp = if rng.random_range(0.0..1.0) < 0.5 {
                    config.noise_mag
                } else {
                    -config.noise_mag
                };
            }
            label
        };
        if world.step(executed).is_terminal() {
            break;
        }
    }
    data
}

/// Collects demonstrations across several scenarios and merges them.
pub fn collect_many(scenarios: &[Scenario], config: &CollectConfig) -> DemoDataset {
    let mut all = DemoDataset::new();
    for s in scenarios {
        all.extend(collect_scenario(s, config));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::scenario::TownSpec;

    fn scenario(seed: u64) -> Scenario {
        Scenario::builder(TownSpec::grid(3, 3))
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(40.0)
            .build()
    }

    #[test]
    fn collects_labeled_frames() {
        let cfg = CollectConfig {
            max_frames: 120,
            ..CollectConfig::default()
        };
        let data = collect_scenario(&scenario(1), &cfg);
        assert!(data.len() > 60, "len={}", data.len());
        for s in data.samples() {
            assert_eq!(s.image.shape(), &[1, 24, 32]);
            assert!(s.target.iter().all(|v| v.is_finite()));
            assert!(s.target[0].abs() <= 1.0);
        }
    }

    #[test]
    fn covers_multiple_commands() {
        let cfg = CollectConfig {
            max_frames: 1500,
            ..CollectConfig::default()
        };
        let data = collect_many(&[scenario(2), scenario(3)], &cfg);
        let counts = data.per_command_counts();
        let covered = counts.iter().filter(|c| **c > 0).count();
        assert!(covered >= 2, "commands covered: {counts:?}");
    }

    #[test]
    fn deterministic_collection() {
        let cfg = CollectConfig {
            max_frames: 60,
            ..CollectConfig::default()
        };
        let a = collect_scenario(&scenario(4), &cfg);
        let b = collect_scenario(&scenario(4), &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.samples().iter().zip(b.samples()) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.image.data(), y.image.data());
        }
    }
}
