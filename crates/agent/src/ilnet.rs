//! The conditional imitation-learning network.
//!
//! Architecture (a compact version of Codevilla et al., sized to our 32×24
//! camera input):
//!
//! ```text
//! image [1,24,32]
//!   → Conv2d(1→8, k5, s2, p2) → ReLU        [8,12,16]
//!   → Conv2d(8→16, k3, s2, p1) → ReLU       [16,6,8]
//!   → Flatten → Dense(768→64) → ReLU        features [64]
//! features ⊕ speed  →  per-command head: Dense(65→32) → ReLU → Dense(32→3)
//! output: [steer, throttle, brake]
//! ```
//!
//! One head exists per [`Command`]; only the head selected by the current
//! planner command is evaluated and trained — the *conditional* part of
//! conditional imitation learning.

use crate::features::{NET_HEIGHT, NET_WIDTH};
use avfi_nn::layers::{Conv2d, Dense, Flatten, ParamSlice, Relu};
use avfi_nn::loss::weighted_mse;
use avfi_nn::network::{ActivationOverride, Sequential};
use avfi_nn::serialize::{load_weights, save_weights, LoadWeightsError};
use avfi_nn::Tensor;
use avfi_sim::map::route::Command;
use avfi_sim::physics::VehicleControl;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of trunk output features.
pub const FEATURE_DIM: usize = 64;

/// Per-output loss weights: steering dominates (Codevilla et al. weigh
/// steer highest).
pub const LOSS_WEIGHTS: [f32; 3] = [2.0, 0.5, 0.5];

/// The conditional imitation network; see the module docs.
#[derive(Debug)]
pub struct IlNetwork {
    trunk: Sequential,
    heads: Vec<Sequential>,
    last_branch: Option<usize>,
}

impl IlNetwork {
    /// Builds a freshly initialized network.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trunk = Sequential::new();
        trunk.push(Conv2d::new(1, 8, 5, 2, 2, &mut rng));
        trunk.push(Relu::new());
        trunk.push(Conv2d::new(8, 16, 3, 2, 1, &mut rng));
        trunk.push(Relu::new());
        trunk.push(Flatten::new());
        trunk.push(Dense::new(
            16 * (NET_HEIGHT / 4) * (NET_WIDTH / 4),
            FEATURE_DIM,
            &mut rng,
        ));
        trunk.push(Relu::new());
        let heads = (0..Command::ALL.len())
            .map(|_| {
                let mut h = Sequential::new();
                h.push(Dense::new(FEATURE_DIM + 1, 32, &mut rng));
                h.push(Relu::new());
                h.push(Dense::new(32, 3, &mut rng));
                h
            })
            .collect();
        IlNetwork {
            trunk,
            heads,
            last_branch: None,
        }
    }

    /// Rebuilds a network of the default architecture and loads trained
    /// weights into it.
    ///
    /// # Errors
    ///
    /// Propagates [`LoadWeightsError`] for malformed or mismatched bytes.
    pub fn from_weights(bytes: &[u8]) -> Result<Self, LoadWeightsError> {
        let mut net = Self::new(0);
        load_weights(bytes, &mut net.params())?;
        Ok(net)
    }

    /// Serializes the current weights.
    pub fn to_weights(&mut self) -> Vec<u8> {
        save_weights(&self.params())
    }

    /// Forward pass: image tensor `[1, 24, 32]`, normalized speed, command.
    pub fn forward(&mut self, image: &Tensor, speed: f32, command: Command, train: bool) -> Tensor {
        let features = self.trunk.forward(image, train);
        // One exact-size allocation; `into_vec() + push` would realloc.
        let mut head_in = Vec::with_capacity(features.len() + 1);
        head_in.extend_from_slice(features.data());
        head_in.push(speed);
        let n = head_in.len();
        let branch = command.index();
        self.last_branch = Some(branch);
        self.heads[branch].forward(&Tensor::from_vec(head_in, vec![n]), train)
    }

    /// Backward pass for the last `forward` call.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) {
        let branch = self.last_branch.expect("backward before forward");
        let grad_head_in = self.heads[branch].backward(grad_out);
        // Strip the speed slot; the remaining gradient flows into the
        // trunk.
        let mut g = grad_head_in.into_vec();
        g.pop();
        let n = g.len();
        let _ = self.trunk.backward(&Tensor::from_vec(g, vec![n]));
    }

    /// Supervised step helper: forward + weighted-MSE + backward; returns
    /// the loss. The caller owns the optimizer step.
    pub fn loss_backward(
        &mut self,
        image: &Tensor,
        speed: f32,
        command: Command,
        target: &[f32; 3],
    ) -> f32 {
        let out = self.forward(image, speed, command, true);
        let tgt = Tensor::from_vec(target.to_vec(), vec![3]);
        let (loss, grad) = weighted_mse(&out, &tgt, &LOSS_WEIGHTS);
        self.backward(&grad);
        loss
    }

    /// Inference: produces a vehicle control (clamped to legal ranges).
    pub fn predict(&mut self, image: &Tensor, speed: f32, command: Command) -> VehicleControl {
        let out = self.forward(image, speed, command, false);
        let d = out.data();
        VehicleControl::new(d[0] as f64, d[1] as f64, d[2] as f64)
    }

    /// All parameters (trunk first, then heads), named.
    pub fn params(&mut self) -> Vec<ParamSlice<'_>> {
        let mut out = Vec::new();
        for mut p in self.trunk.params() {
            p.name = format!("trunk.{}", p.name);
            out.push(p);
        }
        for (h, head) in self.heads.iter_mut().enumerate() {
            for mut p in head.params() {
                p.name = format!("head{h}.{}", p.name);
                out.push(p);
            }
        }
        out
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.values.len()).sum()
    }

    /// Installs a stuck-at neuron fault after a trunk layer (ML fault
    /// injection).
    pub fn add_trunk_override(&mut self, layer: usize, unit: usize, value: f32) {
        self.trunk
            .add_override(ActivationOverride { layer, unit, value });
    }

    /// Removes all neuron faults.
    pub fn clear_overrides(&mut self) {
        self.trunk.clear_overrides();
        for h in &mut self.heads {
            h.clear_overrides();
        }
    }

    /// Trunk layer kinds, for fault localization.
    pub fn trunk_layer_kinds(&self) -> Vec<&'static str> {
        self.trunk.layer_kinds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Tensor {
        Tensor::from_vec(
            (0..NET_WIDTH * NET_HEIGHT)
                .map(|i| ((i % 13) as f32 - 6.0) * 0.05)
                .collect(),
            vec![1, NET_HEIGHT, NET_WIDTH],
        )
    }

    #[test]
    fn output_is_three_values() {
        let mut net = IlNetwork::new(1);
        let out = net.forward(&image(), 0.4, Command::Follow, false);
        assert_eq!(out.shape(), &[3]);
        assert!(out.is_finite());
    }

    #[test]
    fn heads_differ_by_command() {
        let mut net = IlNetwork::new(2);
        let a = net.forward(&image(), 0.4, Command::Left, false);
        let b = net.forward(&image(), 0.4, Command::Right, false);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn speed_input_matters() {
        let mut net = IlNetwork::new(3);
        let a = net.forward(&image(), 0.0, Command::Follow, false);
        let b = net.forward(&image(), 1.0, Command::Follow, false);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn loss_decreases_with_training() {
        use avfi_nn::optim::{Adam, Optimizer};
        let mut net = IlNetwork::new(4);
        let mut opt = Adam::new(0.003);
        let img = image();
        let target = [0.3f32, 0.5, 0.0];
        let first = net.loss_backward(&img, 0.4, Command::Follow, &target);
        opt.step(&mut net.params());
        let mut last = first;
        for _ in 0..60 {
            last = net.loss_backward(&img, 0.4, Command::Follow, &target);
            opt.step(&mut net.params());
        }
        assert!(last < first * 0.1, "first={first} last={last}");
    }

    #[test]
    fn weights_roundtrip() {
        let mut a = IlNetwork::new(5);
        let bytes = a.to_weights();
        let mut b = IlNetwork::from_weights(&bytes).unwrap();
        let img = image();
        let ya = a.forward(&img, 0.2, Command::Straight, false);
        let yb = b.forward(&img, 0.2, Command::Straight, false);
        assert_eq!(ya.data(), yb.data());
    }

    #[test]
    fn neuron_override_changes_output() {
        let mut net = IlNetwork::new(6);
        let img = image();
        let clean = net.forward(&img, 0.4, Command::Follow, false);
        // Stuck-at on the final trunk ReLU (layer index 6), unit 0.
        net.add_trunk_override(6, 0, 50.0);
        let faulty = net.forward(&img, 0.4, Command::Follow, false);
        assert_ne!(clean.data(), faulty.data());
        net.clear_overrides();
        let restored = net.forward(&img, 0.4, Command::Follow, false);
        assert_eq!(clean.data(), restored.data());
    }

    #[test]
    fn param_count_is_substantial() {
        let mut net = IlNetwork::new(7);
        // conv1: 8*1*25+8; conv2: 16*8*9+16; dense: 768*64+64;
        // heads: 4 * (65*32+32 + 32*3+3).
        let expected =
            (8 * 25 + 8) + (16 * 8 * 9 + 16) + (768 * 64 + 64) + 4 * (65 * 32 + 32 + 32 * 3 + 3);
        assert_eq!(net.param_count(), expected);
    }
}
