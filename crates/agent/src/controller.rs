//! The driver abstraction shared by the expert, the neural agent, and the
//! fault-injecting wrappers in `avfi-core`.

use crate::features::{image_to_tensor, normalize_speed};
use crate::ilnet::IlNetwork;
use avfi_sim::physics::VehicleControl;
use avfi_sim::sensors::{GpsFix, Image, LidarScan};
use avfi_sim::world::{World, WorldObservation};

/// Everything a driver may look at for one frame.
///
/// The sensor channels a fault injector may corrupt are broken out as
/// standalone fields (`image`, `lidar`, `gps`, `speed`) so the injector can
/// override a single channel without cloning the whole observation; drivers
/// must read those fields, never the corresponding members of `obs`. The
/// *neural* driver must only read the sensor fields plus `obs.command`. The
/// *expert* additionally reads ground truth through `world` (it stands in
/// for a perfect-perception oracle). Keeping both in one struct lets the
/// campaign runner treat all drivers uniformly.
#[derive(Debug)]
pub struct DriverInput<'a> {
    /// The observation from the server. Sensor channels duplicated in the
    /// fields below may be stale here — read the fields instead.
    pub obs: &'a WorldObservation,
    /// Ground-truth world access (oracle drivers only).
    pub world: &'a World,
    /// Effective (possibly fault-injected) camera image.
    pub image: &'a Image,
    /// Effective LIDAR sweep.
    pub lidar: &'a LidarScan,
    /// Effective GPS fix.
    pub gps: GpsFix,
    /// Effective speedometer reading, m/s.
    pub speed: f64,
}

impl<'a> DriverInput<'a> {
    /// An uncorrupted frame: every effective sensor field mirrors `obs`.
    pub fn clean(obs: &'a WorldObservation, world: &'a World) -> Self {
        DriverInput {
            obs,
            world,
            image: &obs.sensors.image,
            lidar: &obs.sensors.lidar,
            gps: obs.sensors.gps,
            speed: obs.sensors.speed,
        }
    }
}

/// A closed-loop driving policy.
pub trait Driver {
    /// Computes the actuation command for one frame.
    fn drive(&mut self, input: &DriverInput<'_>) -> VehicleControl;

    /// Short policy name for reports.
    fn name(&self) -> &'static str;
}

/// The neural (conditional imitation) driver: camera + speed + command in,
/// control out. Reads only the observation.
#[derive(Debug)]
pub struct NeuralDriver {
    net: IlNetwork,
}

impl NeuralDriver {
    /// Wraps a (trained) network.
    pub fn new(net: IlNetwork) -> Self {
        NeuralDriver { net }
    }

    /// The underlying network (for ML fault injection).
    pub fn network_mut(&mut self) -> &mut IlNetwork {
        &mut self.net
    }

    /// The underlying network.
    pub fn network(&self) -> &IlNetwork {
        &self.net
    }
}

impl Driver for NeuralDriver {
    fn drive(&mut self, input: &DriverInput<'_>) -> VehicleControl {
        let image = image_to_tensor(input.image);
        let speed = normalize_speed(input.speed);
        self.net.predict(&image, speed, input.obs.command)
    }

    fn name(&self) -> &'static str {
        "il-cnn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::scenario::{Scenario, TownSpec};

    #[test]
    fn neural_driver_produces_sane_controls_untrained() {
        let scenario = Scenario::builder(TownSpec::grid(2, 2))
            .seed(3)
            .npc_vehicles(0)
            .pedestrians(0)
            .build();
        let mut world = World::from_scenario(&scenario);
        let obs = world.observe();
        let mut driver = NeuralDriver::new(IlNetwork::new(7));
        let c = driver.drive(&DriverInput::clean(&obs, &world));
        assert!(c.steer.abs() <= 1.0);
        assert!((0.0..=1.0).contains(&c.throttle));
        assert!((0.0..=1.0).contains(&c.brake));
        assert_eq!(driver.name(), "il-cnn");
    }
}
