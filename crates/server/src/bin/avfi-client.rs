//! CLI client for the `avfi-server` campaign daemon.
//!
//! Subcommands (all network ones take `--addr HOST:PORT`, default
//! `127.0.0.1:7700`):
//!
//! * `demo-plan [--out FILE]` — emit the demo `WorkPlan` as JSON.
//! * `submit --plan FILE [--trace LEVEL]` — submit a plan JSON file;
//!   prints the server-assigned plan id on stdout.
//! * `watch --plan ID [--from N]` — stream the plan's progress events as
//!   JSON lines until it is terminal; prints the final phase to stderr.
//! * `results --plan ID [--out FILE]` — fetch the results payload
//!   (blocks until terminal). The bytes are exactly what the server
//!   serialized — diffable against `solo` output.
//! * `traces --plan ID [--out FILE]` — fetch the plan's trace payload.
//! * `resume --plan ID` — resume an interrupted plan a `--spool` daemon
//!   recovered after a crash; prints `phase completed/total`. Idempotent
//!   on running and finished plans.
//! * `cancel --plan ID` / `status --plan ID` / `shutdown`.
//! * `run --plan FILE [--trace LEVEL] [--out FILE]` — submit, wait for
//!   completion, fetch results (the submit/watch/results round trip as
//!   one command).
//!
//! `submit`, `watch`, `results`, `cancel`, and `status` accept
//! `--retry N --backoff MS`: when the daemon connection drops
//! mid-exchange the client re-dials up to N times with linear backoff
//! (attempt k waits k×MS). A resumed watch continues from the last
//! event it actually printed, so no lines repeat; cancel and status are
//! idempotent on the server, so a replay is safe. Default is no
//! retries.
//!
//! Every network subcommand accepts `--token SECRET`: the connection
//! opens with a hello frame carrying the shared secret, required
//! against a daemon running `--auth-token` (and acknowledged, harmless,
//! against an open one). Reconnects repeat the handshake.
//! * `solo --plan FILE [--out FILE]` — execute the plan in-process with a
//!   solo single-worker engine and emit byte-comparable results JSON (no
//!   server involved; the determinism-gate reference).

use avfi_core::WorkPlan;
use avfi_net::NetError;
use avfi_server::{demo_plan, solo_results_json, with_retries_authed, RetryPolicy, ServiceClient};
use avfi_trace::TraceLevel;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    plan_id: Option<u64>,
    plan_file: Option<String>,
    out: Option<String>,
    trace: TraceLevel,
    from: usize,
    retry: RetryPolicy,
    token: Option<String>,
}

impl Args {
    /// One connection, hello'd when `--token` was given.
    fn connect(&self) -> Result<ServiceClient, NetError> {
        ServiceClient::connect_with_token(&self.addr, self.token.as_deref())
    }

    /// Runs `op` under the retry policy, re-helloing on every dial.
    fn with_retries<T>(
        &self,
        op: impl FnMut(&mut ServiceClient) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        with_retries_authed(&self.addr, self.token.as_deref(), self.retry, op)
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        return usage();
    };
    let mut args = Args {
        addr: "127.0.0.1:7700".to_string(),
        plan_id: None,
        plan_file: None,
        out: None,
        trace: TraceLevel::Off,
        from: 0,
        retry: RetryPolicy::none(),
        token: None,
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => match argv.next() {
                Some(a) => args.addr = a,
                None => return usage(),
            },
            "--plan" => match argv.next() {
                Some(p) => match p.parse::<u64>() {
                    Ok(id) => args.plan_id = Some(id),
                    Err(_) => args.plan_file = Some(p),
                },
                None => return usage(),
            },
            "--out" => match argv.next() {
                Some(o) => args.out = Some(o),
                None => return usage(),
            },
            "--trace" => match argv.next().as_deref().and_then(TraceLevel::parse) {
                Some(level) => args.trace = level,
                None => return usage(),
            },
            "--from" => match argv.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.from = n,
                None => return usage(),
            },
            "--retry" => match argv.next().and_then(|n| n.parse().ok()) {
                Some(n) => args.retry.attempts = n,
                None => return usage(),
            },
            "--backoff" => match argv.next().and_then(|ms| ms.parse().ok()) {
                Some(ms) => args.retry.backoff = Duration::from_millis(ms),
                None => return usage(),
            },
            "--token" => match argv.next() {
                Some(t) => args.token = Some(t),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    match run(&cmd, &args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("[avfi-client] {cmd} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, args: &Args) -> Result<ExitCode, NetError> {
    match cmd {
        "demo-plan" => {
            let json = serde_json::to_string_pretty(&demo_plan())
                .map_err(|e| NetError::Codec(e.to_string()))?;
            emit(args.out.as_deref(), &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "solo" => {
            let plan = load_plan(args)?;
            let json = solo_results_json(&plan).map_err(|e| NetError::Codec(e.to_string()))?;
            emit(args.out.as_deref(), &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "submit" => {
            let plan = load_plan(args)?;
            let (id, total) = args.with_retries(|client| client.submit(&plan, args.trace))?;
            eprintln!("[avfi-client] plan {id} submitted ({total} runs)");
            println!("{id}");
            Ok(ExitCode::SUCCESS)
        }
        "watch" => {
            let id = plan_id(args)?;
            // Survives reconnects: each retry resumes the stream at the
            // first sequence number not yet printed.
            let mut next_from = args.from;
            let phase = args.with_retries(|client| {
                client.watch(id, next_from, |seq, event| {
                    next_from = seq + 1;
                    match serde_json::to_string(&event) {
                        Ok(line) => {
                            use std::io::Write;
                            // A closed stdout (e.g. `watch | head`) ends the
                            // stream quietly, like any line-oriented tool.
                            if writeln!(std::io::stdout(), "{{\"seq\":{seq},\"event\":{line}}}")
                                .is_err()
                            {
                                std::process::exit(0);
                            }
                        }
                        Err(e) => eprintln!("[avfi-client] unprintable event {seq}: {e}"),
                    }
                })
            })?;
            eprintln!("[avfi-client] plan {id} {phase}");
            Ok(ExitCode::SUCCESS)
        }
        "results" => {
            let id = plan_id(args)?;
            let json = args.with_retries(|client| client.results_json(id))?;
            emit(args.out.as_deref(), &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "traces" => {
            let id = plan_id(args)?;
            let json = args.connect()?.traces_json(id)?;
            emit(args.out.as_deref(), &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "cancel" => {
            let id = plan_id(args)?;
            // Cancelling an already-cancelled plan just reports its
            // phase, so a retried cancel after a hangup is safe.
            let phase = args.with_retries(|client| client.cancel(id))?;
            eprintln!("[avfi-client] plan {id} {phase}");
            Ok(ExitCode::SUCCESS)
        }
        "resume" => {
            let id = plan_id(args)?;
            // Idempotent on the server (a running or finished plan just
            // reports its state), so a retried resume is safe.
            let (phase, completed, total) = args.with_retries(|client| client.resume(id))?;
            println!("{phase} {completed}/{total}");
            Ok(ExitCode::SUCCESS)
        }
        "status" => {
            let id = plan_id(args)?;
            let (phase, completed, total) = args.with_retries(|client| client.status(id))?;
            println!("{phase} {completed}/{total}");
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            args.connect()?.shutdown_server()?;
            eprintln!("[avfi-client] server shutting down");
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let plan = load_plan(args)?;
            let mut client = args.connect()?;
            let (id, total) = client.submit(&plan, args.trace)?;
            eprintln!("[avfi-client] plan {id} submitted ({total} runs)");
            let phase = client.wait_terminal(id)?;
            eprintln!("[avfi-client] plan {id} {phase}");
            let json = client.results_json(id)?;
            emit(args.out.as_deref(), &json)?;
            Ok(ExitCode::SUCCESS)
        }
        _ => Ok(usage()),
    }
}

fn load_plan(args: &Args) -> Result<WorkPlan, NetError> {
    let Some(path) = &args.plan_file else {
        return Err(NetError::Protocol("missing --plan FILE".to_string()));
    };
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| NetError::Protocol(format!("malformed plan: {e}")))
}

fn plan_id(args: &Args) -> Result<u64, NetError> {
    args.plan_id
        .ok_or_else(|| NetError::Protocol("missing --plan ID".to_string()))
}

fn emit(out: Option<&str>, payload: &str) -> Result<(), NetError> {
    match out {
        Some(path) => Ok(std::fs::write(path, payload)?),
        None => {
            println!("{payload}");
            Ok(())
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: avfi-client <command> [--addr HOST:PORT] [--token SECRET] [options]\n\
         commands:\n\
         \x20 demo-plan [--out FILE]\n\
         \x20 submit   --plan FILE [--trace off|summary|blackbox] [--retry N --backoff MS]\n\
         \x20 watch    --plan ID [--from N] [--retry N --backoff MS]\n\
         \x20 results  --plan ID [--out FILE] [--retry N --backoff MS]\n\
         \x20 traces   --plan ID [--out FILE]\n\
         \x20 resume   --plan ID [--retry N --backoff MS]\n\
         \x20 cancel   --plan ID [--retry N --backoff MS]\n\
         \x20 status   --plan ID [--retry N --backoff MS]\n\
         \x20 run      --plan FILE [--trace LEVEL] [--out FILE]\n\
         \x20 solo     --plan FILE [--out FILE]\n\
         \x20 shutdown"
    );
    ExitCode::from(2)
}
