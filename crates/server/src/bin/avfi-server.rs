//! The campaign daemon: a persistent fault-injection service.
//!
//! Accepts serialized `WorkPlan` submissions from many concurrent
//! `avfi-client` connections, multiplexes them onto one shared worker
//! pool, and serves progress streams, results, and traces by plan id.
//! Runs until a client sends a shutdown request.
//!
//! Usage: `avfi-server [--addr HOST:PORT] [--workers N] [--addr-file PATH]
//! [--retain-secs S] [--auth-token SECRET] [--spool DIR] [--auto-resume]`
//!
//! * `--addr` — listen address (default `127.0.0.1:7700`; port 0 picks an
//!   ephemeral port).
//! * `--workers` — pool worker threads (default 0 = one per core).
//! * `--addr-file` — write the actually bound address to this file once
//!   listening (how scripts discover an ephemeral port).
//! * `--retain-secs` — evict finished plans' result/trace payloads after
//!   this many seconds (default: retain until shutdown). Plan status
//!   stays queryable after eviction; with `--spool` the plan's journal
//!   and trace files are deleted too.
//! * `--auth-token` — require every connection to open with a hello
//!   frame carrying this shared secret (clients pass `--token`); wrong
//!   or missing tokens get a protocol error and the connection is
//!   closed. Default: no authentication.
//! * `--spool` — write-ahead journal every accepted plan into this
//!   directory and recover the journals found there on startup: finished
//!   plans reload fetchable, interrupted plans await `avfi-client
//!   resume` (or restart immediately with `--auto-resume`). Resumed
//!   plans produce results byte-identical to an uninterrupted run.
//! * `--auto-resume` — with `--spool`, re-enter interrupted plans into
//!   the pool at startup instead of parking them for an explicit resume.

use avfi_server::CampaignServer;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7700".to_string();
    let mut workers = 0usize;
    let mut addr_file: Option<String> = None;
    let mut retain_secs: Option<f64> = None;
    let mut auth_token: Option<String> = None;
    let mut spool: Option<std::path::PathBuf> = None;
    let mut auto_resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spool" => match args.next() {
                Some(d) => spool = Some(d.into()),
                None => return usage(),
            },
            "--auto-resume" => auto_resume = true,
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = w,
                None => return usage(),
            },
            "--addr-file" => match args.next() {
                Some(p) => addr_file = Some(p),
                None => return usage(),
            },
            "--retain-secs" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(s) if s >= 0.0 => retain_secs = Some(s),
                _ => return usage(),
            },
            "--auth-token" => match args.next() {
                Some(t) if !t.is_empty() => auth_token = Some(t),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let server = match CampaignServer::bind(&addr, workers).and_then(|s| {
        s.with_retention(retain_secs.map(std::time::Duration::from_secs_f64))
            .with_auth_token(auth_token)
            .with_spool(spool, auto_resume)
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[avfi-server] cannot start on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr();
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("[avfi-server] cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("[avfi-server] listening on {bound}");
    match server.run() {
        Ok(()) => {
            eprintln!("[avfi-server] shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[avfi-server] accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: avfi-server [--addr HOST:PORT] [--workers N] [--addr-file PATH] \
         [--retain-secs S] [--auth-token SECRET] [--spool DIR] [--auto-resume]"
    );
    ExitCode::from(2)
}
