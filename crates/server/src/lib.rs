//! # avfi-server — fault injection as a service
//!
//! AVFI frames campaign execution as a client/server system: the
//! simulation cluster runs campaigns while experimenters submit work and
//! pull results from the outside. This crate is that seam for the
//! reproduction — a persistent daemon ([`CampaignServer`]) that accepts
//! serialized [`WorkPlan`]s from many concurrent TCP clients, multiplexes
//! every plan onto one shared [`MultiplexPool`], streams per-plan
//! progress events back as frames, and serves results and traces by plan
//! id; plus the matching client library ([`ServiceClient`]) the
//! `avfi-client` CLI wraps.
//!
//! ## Protocol
//!
//! The wire format is the [`avfi_net::proto`] campaign protocol:
//! [`ServiceRequest`] / [`ServiceReply`] frames over the same
//! length-prefixed framing the lockstep simulation loop uses. Plan,
//! event, result, and trace payloads are opaque JSON strings on the wire
//! (`avfi-net` sits below `avfi-core`); this crate owns the concrete
//! types on both ends and serializes them with the same `serde_json`,
//! so a retrieved results payload is **byte-identical** to a local
//! `serde_json::to_string` of the same solo [`Engine`] run — the
//! property the determinism gate diffs on.
//!
//! ## Concurrency model
//!
//! One thread per connection, all submissions landing in one shared
//! [`MultiplexPool`] (fair round-robin across plans, per-plan
//! cancellation). Client disconnects never abort a running plan: the
//! server's plan registry keeps the [`PlanTicket`] until shutdown, so a
//! client can drop mid-watch and later fetch results over a fresh
//! connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::engine::{Engine, MultiplexPool, PlanTicket, RecoveredSubmission, RunSink};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::{ProgressEvent, StudyResult, WorkPlan};
use avfi_net::proto::{PlanId, PlanPhase, ServiceReply, ServiceRequest};
use avfi_net::{NetError, TcpTransport};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_store::{Journal, JournalRecord, PlanJournal};
use avfi_trace::{RunTrace, TraceLevel};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Plans the server has accepted, kept until daemon shutdown so results
/// outlive the submitting connection.
type Registry = parking_lot::Mutex<BTreeMap<PlanId, PlanTicket>>;

/// Durable-spool state of a daemon running `--spool`: the journal
/// directory plus the interrupted plans recovered at startup that await
/// an explicit [`ServiceRequest::Resume`] (a daemon started with
/// auto-resume has an always-empty map).
#[derive(Debug)]
struct SpoolState {
    dir: PathBuf,
    resumable: parking_lot::Mutex<BTreeMap<PlanId, ResumableEntry>>,
}

/// Status snapshot of one interrupted plan; the full state (results,
/// traces, the journal itself) reloads from disk at resume time.
#[derive(Debug, Clone, Copy)]
struct ResumableEntry {
    /// Runs recovered from the journal.
    completed: usize,
    /// Total runs in the plan.
    total: usize,
}

/// The campaign daemon: accepts connections, executes submitted plans on
/// one shared pool, serves progress/results/traces by plan id.
#[derive(Debug)]
pub struct CampaignServer {
    listener: TcpListener,
    addr: SocketAddr,
    pool: Arc<MultiplexPool>,
    registry: Arc<Registry>,
    shutdown: Arc<AtomicBool>,
    retention: Option<Duration>,
    auth_token: Option<String>,
    spool: Option<Arc<SpoolState>>,
}

impl CampaignServer {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port) with
    /// `workers` pool threads (0 = one per core).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, workers: usize) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(CampaignServer {
            listener,
            addr,
            pool: Arc::new(MultiplexPool::new(workers)),
            registry: Arc::new(parking_lot::Mutex::new(BTreeMap::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            retention: None,
            auth_token: None,
            spool: None,
        })
    }

    /// Attaches a durable spool: every accepted plan is write-ahead
    /// journaled into `dir` (`plan-<id>.avj`, traces under `plan-<id>/`),
    /// and journals already in `dir` are recovered immediately — terminal
    /// plans reload as fetchable results, interrupted plans re-enter the
    /// pool right away when `auto_resume` is set or park until a
    /// [`ServiceRequest::Resume`] otherwise. `None` (the default) keeps
    /// all plan state in memory only.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating or scanning the spool directory.
    pub fn with_spool(mut self, dir: Option<PathBuf>, auto_resume: bool) -> Result<Self, NetError> {
        let Some(dir) = dir else {
            self.spool = None;
            return Ok(self);
        };
        std::fs::create_dir_all(&dir)?;
        let state = Arc::new(SpoolState {
            dir,
            resumable: parking_lot::Mutex::new(BTreeMap::new()),
        });
        let mut max_id = 0;
        for (id, path) in avfi_store::list_journals(&state.dir)? {
            max_id = max_id.max(id);
            recover_journal(&self.pool, &self.registry, &state, id, &path, auto_resume);
        }
        self.pool.reserve_plan_ids(max_id);
        self.spool = Some(state);
        Ok(self)
    }

    /// Limits how long finished plans keep their result and trace
    /// payloads: any plan terminal for longer than `retention` has its
    /// payloads evicted on the next request the daemon serves. Lifecycle
    /// status (phase, run counters) stays queryable after eviction;
    /// result/trace fetches return a protocol error naming the eviction.
    /// `None` (the default) retains payloads until shutdown.
    pub fn with_retention(mut self, retention: Option<Duration>) -> Self {
        self.retention = retention;
        self
    }

    /// Requires every connection to open with a
    /// [`ServiceRequest::Hello`] carrying this shared secret before any
    /// other request is served. A wrong token — or any non-hello first
    /// frame — gets a [`ServiceReply::Error`] and the connection is
    /// closed; nothing about the daemon's state is revealed first.
    /// `None` (the default) serves every connection unauthenticated.
    pub fn with_auth_token(mut self, token: Option<String>) -> Self {
        self.auth_token = token;
        self
    }

    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves connections until a client sends [`ServiceRequest::Shutdown`].
    /// Each connection gets its own thread; plans keep running when their
    /// submitter disconnects. On shutdown every still-active plan is
    /// cancelled and the call returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures (interrupted accepts are
    /// retried).
    pub fn run(self) -> Result<(), NetError> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            let pool = Arc::clone(&self.pool);
            let registry = Arc::clone(&self.registry);
            let shutdown = Arc::clone(&self.shutdown);
            let addr = self.addr;
            let retention = self.retention;
            let auth = self.auth_token.clone();
            let spool = self.spool.clone();
            // Detached: a handler blocked on an idle client's next request
            // must not delay shutdown; the process owns thread lifetime.
            std::thread::Builder::new()
                .name("avfi-conn".into())
                .spawn(move || {
                    handle_connection(
                        stream,
                        &pool,
                        &registry,
                        &shutdown,
                        addr,
                        retention,
                        auth.as_deref(),
                        spool.as_deref(),
                    )
                })
                .expect("spawn connection handler");
        }
        for ticket in self.registry.lock().values() {
            ticket.cancel();
        }
        Ok(())
    }
}

/// Serves one connection: a loop of request/reply exchanges. Returns (and
/// drops the connection) when the client disconnects or breaks framing;
/// submitted plans are unaffected either way.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    pool: &MultiplexPool,
    registry: &Registry,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    retention: Option<Duration>,
    auth_token: Option<&str>,
    spool: Option<&SpoolState>,
) {
    let Ok(mut transport) = TcpTransport::new(stream) else {
        return;
    };
    if authenticate(&mut transport, auth_token).is_err() {
        return;
    }
    loop {
        let request: ServiceRequest = match transport.recv_value() {
            Ok(r) => r,
            // Disconnect, torn frame, or junk: this client is done.
            Err(_) => return,
        };
        sweep_expired(registry, retention, spool);
        let keep_going = serve_request(
            &mut transport,
            request,
            pool,
            registry,
            shutdown,
            addr,
            spool,
        );
        if keep_going.is_err() {
            // The client vanished mid-reply (e.g. dropped during a watch
            // stream); its plans keep running for later retrieval.
            return;
        }
    }
}

/// Gates a fresh connection on the shared secret. With no token
/// configured this is a no-op (the serve loop still answers voluntary
/// hellos); with one, the first frame must be a matching
/// [`ServiceRequest::Hello`] — anything else is answered with a protocol
/// error and `Err` tells the caller to drop the connection. The error
/// message does not distinguish a wrong token from a missing hello, so a
/// probe learns nothing beyond "authentication failed".
fn authenticate(transport: &mut TcpTransport, auth_token: Option<&str>) -> Result<(), ()> {
    let Some(expected) = auth_token else {
        return Ok(());
    };
    let request: ServiceRequest = transport.recv_value().map_err(|_| ())?;
    match request {
        ServiceRequest::Hello { token } if token == expected => {
            transport.send_value(&ServiceReply::HelloOk).map_err(|_| ())
        }
        _ => {
            // Best-effort courtesy reply; the close is the real answer.
            let _ = transport.send_value(&ServiceReply::Error {
                message: "authentication failed: this daemon requires a valid \
                          hello token as the first request"
                    .into(),
            });
            Err(())
        }
    }
}

/// Handles one request, sending every reply frame it produces. `Err`
/// means the *connection* failed; request-level failures are reported to
/// the client as [`ServiceReply::Error`] and return `Ok`.
#[allow(clippy::too_many_arguments)]
fn serve_request(
    transport: &mut TcpTransport,
    request: ServiceRequest,
    pool: &MultiplexPool,
    registry: &Registry,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    spool: Option<&SpoolState>,
) -> Result<(), NetError> {
    match request {
        // Authenticated connections (and open daemons) answer voluntary
        // hellos idempotently, so a client configured with a token works
        // against a daemon running without one.
        ServiceRequest::Hello { .. } => transport.send_value(&ServiceReply::HelloOk),
        ServiceRequest::SubmitPlan {
            plan_json,
            trace_level,
        } => {
            let Some(level) = TraceLevel::parse(&trace_level) else {
                return transport.send_value(&ServiceReply::Error {
                    message: format!("unknown trace level {trace_level:?}"),
                });
            };
            match serde_json::from_str::<WorkPlan>(&plan_json) {
                Ok(plan) => {
                    let ticket = match spool {
                        Some(spool) => {
                            let dir = spool.dir.clone();
                            pool.submit_spooled(plan, level, 30.0, move |id| {
                                open_plan_journal(&dir, id, plan_json, level)
                            })
                        }
                        None => pool.submit_traced(plan, level, 30.0),
                    };
                    registry.lock().insert(ticket.id(), ticket.clone());
                    transport.send_value(&ServiceReply::Submitted {
                        plan: ticket.id(),
                        total_runs: ticket.total_runs(),
                    })
                }
                Err(e) => transport.send_value(&ServiceReply::Error {
                    message: format!("malformed plan: {e}"),
                }),
            }
        }
        ServiceRequest::Watch { plan, from_event } => {
            let Some(ticket) = lookup(registry, plan) else {
                if resumable_entry(spool, plan).is_some() {
                    return send_interrupted(transport, plan);
                }
                return send_unknown_plan(transport, plan);
            };
            let mut next = from_event;
            loop {
                let (events, phase) = ticket.wait_events_after(next);
                for e in &events {
                    let event_json = serde_json::to_string(&e.event)
                        .map_err(|err| NetError::Codec(err.to_string()))?;
                    transport.send_value(&ServiceReply::Event {
                        plan,
                        seq: e.seq,
                        event_json,
                    })?;
                }
                next += events.len();
                if phase.is_terminal() {
                    // The snapshot and the phase come from one lock hold,
                    // so a terminal phase means the log above is complete.
                    return transport.send_value(&ServiceReply::WatchEnd { plan, phase });
                }
            }
        }
        ServiceRequest::Results { plan } => {
            let Some(ticket) = lookup(registry, plan) else {
                if resumable_entry(spool, plan).is_some() {
                    return send_interrupted(transport, plan);
                }
                return send_unknown_plan(transport, plan);
            };
            if ticket.is_evicted() {
                return send_evicted(transport, plan);
            }
            match ticket.wait_results() {
                Some(results) => {
                    let results_json = serde_json::to_string(&results)
                        .map_err(|e| NetError::Codec(e.to_string()))?;
                    transport.send_value(&ServiceReply::Results { plan, results_json })
                }
                None => transport.send_value(&ServiceReply::Error {
                    message: format!("plan {plan} has no results (phase {})", ticket.phase()),
                }),
            }
        }
        ServiceRequest::Traces { plan } => {
            let Some(ticket) = lookup(registry, plan) else {
                if resumable_entry(spool, plan).is_some() {
                    return send_interrupted(transport, plan);
                }
                return send_unknown_plan(transport, plan);
            };
            if ticket.is_evicted() {
                return send_evicted(transport, plan);
            }
            ticket.wait_terminal();
            let traces_json = serde_json::to_string(&ticket.traces())
                .map_err(|e| NetError::Codec(e.to_string()))?;
            transport.send_value(&ServiceReply::Traces { plan, traces_json })
        }
        ServiceRequest::Cancel { plan } => {
            let Some(ticket) = lookup(registry, plan) else {
                if let Some(spool) = spool {
                    // Atomically claim the interrupted plan out of the
                    // resumable map; put it back if the cancel fails.
                    if let Some(entry) = spool.resumable.lock().remove(&plan) {
                        return match cancel_resumable(pool, spool, plan) {
                            Some(ticket) => {
                                registry.lock().insert(plan, ticket.clone());
                                transport.send_value(&ServiceReply::Cancelled {
                                    plan,
                                    phase: ticket.phase(),
                                })
                            }
                            None => {
                                spool.resumable.lock().insert(plan, entry);
                                transport.send_value(&ServiceReply::Error {
                                    message: format!(
                                        "plan {plan}: cancel failed (journal unreadable)"
                                    ),
                                })
                            }
                        };
                    }
                }
                return send_unknown_plan(transport, plan);
            };
            let phase = ticket.cancel();
            transport.send_value(&ServiceReply::Cancelled { plan, phase })
        }
        ServiceRequest::Resume { plan } => {
            // Idempotent on live and recovered-terminal plans: report the
            // current state instead of erroring.
            if let Some(ticket) = lookup(registry, plan) {
                return transport.send_value(&ServiceReply::Resumed {
                    plan,
                    phase: ticket.phase(),
                    completed: ticket.completed_runs(),
                    total: ticket.total_runs(),
                });
            }
            let Some(spool) = spool else {
                return send_unknown_plan(transport, plan);
            };
            // Atomically claim the interrupted plan out of the resumable
            // map; put it back if the resume fails.
            let Some(entry) = spool.resumable.lock().remove(&plan) else {
                return send_unknown_plan(transport, plan);
            };
            match resume_spooled(pool, spool, plan) {
                Ok(ticket) => {
                    registry.lock().insert(plan, ticket.clone());
                    transport.send_value(&ServiceReply::Resumed {
                        plan,
                        phase: ticket.phase(),
                        completed: ticket.completed_runs(),
                        total: ticket.total_runs(),
                    })
                }
                Err(e) => {
                    spool.resumable.lock().insert(plan, entry);
                    transport.send_value(&ServiceReply::Error {
                        message: format!("plan {plan}: resume failed: {e}"),
                    })
                }
            }
        }
        ServiceRequest::Status { plan } => {
            let Some(ticket) = lookup(registry, plan) else {
                if let Some(entry) = resumable_entry(spool, plan) {
                    return transport.send_value(&ServiceReply::Status {
                        plan,
                        phase: PlanPhase::Interrupted,
                        completed: entry.completed,
                        total: entry.total,
                    });
                }
                return send_unknown_plan(transport, plan);
            };
            transport.send_value(&ServiceReply::Status {
                plan,
                phase: ticket.phase(),
                completed: ticket.completed_runs(),
                total: ticket.total_runs(),
            })
        }
        ServiceRequest::Shutdown => {
            shutdown.store(true, Ordering::Release);
            let ack = transport.send_value(&ServiceReply::ShuttingDown);
            // Unblock the accept loop so it observes the flag; the
            // throwaway connection is dropped immediately.
            drop(TcpStream::connect(addr));
            ack
        }
    }
}

/// The retention sweep: evicts result/trace payloads of every plan that
/// has been terminal for longer than `retention`. Runs opportunistically
/// before each request is served — a daemon receiving no requests hoards
/// nothing new, so there is no need for a timer thread. Tickets stay in
/// the registry (status keeps working); only the payloads go — including
/// the plan's spooled journal and trace files when a spool is attached,
/// so eviction reclaims disk as well as memory.
fn sweep_expired(registry: &Registry, retention: Option<Duration>, spool: Option<&SpoolState>) {
    let Some(retention) = retention else {
        return;
    };
    // Clone the tickets out so payload eviction (which takes per-plan
    // locks) never runs under the registry lock.
    let tickets: Vec<PlanTicket> = registry.lock().values().cloned().collect();
    for ticket in tickets {
        if !ticket.is_evicted()
            && ticket
                .finished_elapsed()
                .is_some_and(|age| age >= retention)
        {
            ticket.evict_payloads();
            if let Some(spool) = spool {
                let id = ticket.id();
                let _ = std::fs::remove_file(spool.dir.join(avfi_store::journal_file_name(id)));
                let _ = std::fs::remove_dir_all(spool.dir.join(avfi_store::trace_dir_name(id)));
            }
        }
    }
}

/// Opens the write-ahead journal for a freshly accepted plan (the
/// [`MultiplexPool::submit_spooled`] factory): creates
/// `dir/plan-<id>.avj`, writes the [`JournalRecord::PlanSubmitted`]
/// record, and points trace spooling at `dir/plan-<id>/`. Journal
/// creation failures degrade to an unspooled plan (reported on stderr) —
/// the daemon keeps serving rather than rejecting work over disk trouble.
fn open_plan_journal(
    dir: &Path,
    id: PlanId,
    plan_json: String,
    level: TraceLevel,
) -> Option<Arc<dyn RunSink + Send + Sync>> {
    let path = dir.join(avfi_store::journal_file_name(id));
    let mut journal = match Journal::create(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "[avfi-server] spool journal create failed ({}): {e}",
                path.display()
            );
            return None;
        }
    };
    if let Err(e) = journal.append(&JournalRecord::PlanSubmitted {
        plan_json,
        trace_level: level.as_str().to_string(),
    }) {
        eprintln!(
            "[avfi-server] spool journal append failed ({}): {e}",
            path.display()
        );
        return None;
    }
    let trace_dir = dir.join(avfi_store::trace_dir_name(id));
    Some(Arc::new(PlanJournal::new(journal, Some(trace_dir))))
}

/// Recovers one spooled journal at daemon startup: terminal plans reload
/// into the registry as fetchable state (results assembled from the
/// journal, byte-identical to the uninterrupted run); interrupted plans
/// re-enter the pool immediately under `auto_resume`, or park in the
/// resumable map until a [`ServiceRequest::Resume`] otherwise.
/// Unrecoverable journals are skipped with a stderr note — recovery
/// never takes the daemon down.
fn recover_journal(
    pool: &MultiplexPool,
    registry: &Registry,
    spool: &SpoolState,
    id: PlanId,
    path: &Path,
    auto_resume: bool,
) {
    let (records, journal) = match Journal::resume(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "[avfi-server] spool recovery failed ({}): {e}",
                path.display()
            );
            return;
        }
    };
    let Some(rec) = avfi_store::summarize(&records) else {
        // Header-only or unparseable journal: nothing to reload.
        return;
    };
    let level = TraceLevel::parse(&rec.trace_level).unwrap_or(TraceLevel::Off);
    let terminal = match rec.terminal.as_deref() {
        // The journal appends every run record before the terminal one,
        // so "completed" without full coverage cannot happen through the
        // ordered path; if a journal claims it anyway, fall through to
        // interrupted and re-run the gap.
        Some("completed") if rec.is_complete() => Some(PlanPhase::Completed),
        Some("cancelled") => Some(PlanPhase::Cancelled),
        Some("failed") => Some(PlanPhase::Failed),
        _ => None,
    };
    let total = rec.plan.total_runs();
    if let Some(phase) = terminal {
        drop(journal); // terminal: nothing more to append; the file stays
        let traces = load_spooled_traces(&spool.dir, id);
        let ticket = pool.submit_recovered(RecoveredSubmission {
            plan: rec.plan,
            level,
            blackbox_seconds: 30.0,
            id,
            prefilled: rec.completed,
            traces,
            terminal: Some(phase),
            spool: None,
        });
        registry.lock().insert(id, ticket);
    } else if auto_resume {
        let traces = load_spooled_traces(&spool.dir, id);
        let trace_dir = spool.dir.join(avfi_store::trace_dir_name(id));
        let sink = Arc::new(PlanJournal::new(journal, Some(trace_dir)));
        let ticket = pool.submit_recovered(RecoveredSubmission {
            plan: rec.plan,
            level,
            blackbox_seconds: 30.0,
            id,
            prefilled: rec.completed,
            traces,
            terminal: None,
            spool: Some(sink),
        });
        registry.lock().insert(id, ticket);
    } else {
        drop(journal);
        spool.resumable.lock().insert(
            id,
            ResumableEntry {
                completed: rec.completed.len(),
                total,
            },
        );
    }
}

/// Reloads the `.avtr` traces a spooled plan's runs left in
/// `spool/plan-<id>/`, keyed by flat plan index. Unreadable files are
/// skipped — a missing trace never blocks recovery.
fn load_spooled_traces(dir: &Path, id: PlanId) -> Vec<(usize, RunTrace)> {
    let trace_dir = dir.join(avfi_store::trace_dir_name(id));
    let files = avfi_trace::list_trace_files(&trace_dir).unwrap_or_default();
    files
        .iter()
        .filter_map(|p| {
            let idx: usize = p
                .file_stem()?
                .to_str()?
                .strip_prefix("run-")?
                .parse()
                .ok()?;
            let trace = avfi_trace::read_trace_file(p).ok()?;
            Some((idx, trace))
        })
        .collect()
}

/// Reloads an interrupted plan from its journal and re-enters it into
/// the pool: journaled runs prefill their slots, spooled traces
/// re-attach, and only the unjournaled gap re-executes — with the
/// reopened journal attached so further progress keeps spooling.
fn resume_spooled(pool: &MultiplexPool, spool: &SpoolState, id: PlanId) -> io::Result<PlanTicket> {
    let path = spool.dir.join(avfi_store::journal_file_name(id));
    let (records, journal) = Journal::resume(&path)?;
    let rec = avfi_store::summarize(&records).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "journal lost its submission record",
        )
    })?;
    let level = TraceLevel::parse(&rec.trace_level).unwrap_or(TraceLevel::Off);
    let traces = load_spooled_traces(&spool.dir, id);
    let trace_dir = spool.dir.join(avfi_store::trace_dir_name(id));
    let sink = Arc::new(PlanJournal::new(journal, Some(trace_dir)));
    Ok(pool.submit_recovered(RecoveredSubmission {
        plan: rec.plan,
        level,
        blackbox_seconds: 30.0,
        id,
        prefilled: rec.completed,
        traces,
        terminal: None,
        spool: Some(sink),
    }))
}

/// Cancels an interrupted (not yet resumed) plan: journals the terminal
/// record so the cancellation survives restarts, then reloads the plan
/// as a terminal status-only registry entry. `None` when the journal is
/// unreadable.
fn cancel_resumable(pool: &MultiplexPool, spool: &SpoolState, id: PlanId) -> Option<PlanTicket> {
    let path = spool.dir.join(avfi_store::journal_file_name(id));
    let (records, mut journal) = Journal::resume(&path).ok()?;
    let rec = avfi_store::summarize(&records)?;
    if let Err(e) = journal.append(&JournalRecord::PlanTerminal {
        phase: "cancelled".into(),
    }) {
        eprintln!(
            "[avfi-server] spool cancel append failed ({}): {e}",
            path.display()
        );
    }
    drop(journal);
    let level = TraceLevel::parse(&rec.trace_level).unwrap_or(TraceLevel::Off);
    Some(pool.submit_recovered(RecoveredSubmission {
        plan: rec.plan,
        level,
        blackbox_seconds: 30.0,
        id,
        prefilled: rec.completed,
        traces: Vec::new(),
        terminal: Some(PlanPhase::Cancelled),
        spool: None,
    }))
}

fn lookup(registry: &Registry, plan: PlanId) -> Option<PlanTicket> {
    registry.lock().get(&plan).cloned()
}

fn resumable_entry(spool: Option<&SpoolState>, plan: PlanId) -> Option<ResumableEntry> {
    spool.and_then(|s| s.resumable.lock().get(&plan).copied())
}

fn send_interrupted(transport: &mut TcpTransport, plan: PlanId) -> Result<(), NetError> {
    transport.send_value(&ServiceReply::Error {
        message: format!("plan {plan} is interrupted (recovered from the spool); resume it first"),
    })
}

fn send_evicted(transport: &mut TcpTransport, plan: PlanId) -> Result<(), NetError> {
    transport.send_value(&ServiceReply::Error {
        message: format!(
            "plan {plan} results evicted: retention window elapsed (status remains available)"
        ),
    })
}

fn send_unknown_plan(transport: &mut TcpTransport, plan: PlanId) -> Result<(), NetError> {
    transport.send_value(&ServiceReply::Error {
        message: format!("unknown plan id {plan}"),
    })
}

/// Client side of the campaign protocol: one connection, a sequence of
/// request/reply exchanges (see [`avfi_net::proto`]).
#[derive(Debug)]
pub struct ServiceClient {
    transport: TcpTransport,
}

impl ServiceClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Ok(ServiceClient {
            transport: TcpTransport::connect(addr)?,
        })
    }

    /// Connects and, when `token` is given, opens with a hello frame —
    /// required against a daemon running `--auth-token`, harmless (and
    /// acknowledged) against an open one.
    ///
    /// # Errors
    ///
    /// Connection failures, or [`NetError::Protocol`] when the daemon
    /// rejects the token.
    pub fn connect_with_token(addr: &str, token: Option<&str>) -> Result<Self, NetError> {
        let mut client = Self::connect(addr)?;
        if let Some(token) = token {
            client.hello(token)?;
        }
        Ok(client)
    }

    /// Authenticates this connection with the daemon's shared secret.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] when the daemon
    /// rejects the token.
    pub fn hello(&mut self, token: &str) -> Result<(), NetError> {
        match self.request(&ServiceRequest::Hello {
            token: token.to_string(),
        })? {
            ServiceReply::HelloOk => Ok(()),
            other => Err(Self::fail(other)),
        }
    }

    fn request(&mut self, request: &ServiceRequest) -> Result<ServiceReply, NetError> {
        self.transport.send_value(request)?;
        self.transport.recv_value()
    }

    /// Turns a [`ServiceReply::Error`] into [`NetError::Protocol`].
    fn fail(reply: ServiceReply) -> NetError {
        match reply {
            ServiceReply::Error { message } => NetError::Protocol(message),
            other => NetError::Protocol(format!("unexpected {} reply", other.kind())),
        }
    }

    /// Submits a plan; returns its server-assigned id and total run count.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] when the server
    /// rejects the plan.
    pub fn submit(
        &mut self,
        plan: &WorkPlan,
        trace_level: TraceLevel,
    ) -> Result<(PlanId, usize), NetError> {
        let plan_json = serde_json::to_string(plan).map_err(|e| NetError::Codec(e.to_string()))?;
        match self.request(&ServiceRequest::SubmitPlan {
            plan_json,
            trace_level: trace_level.as_str().to_string(),
        })? {
            ServiceReply::Submitted { plan, total_runs } => Ok((plan, total_runs)),
            other => Err(Self::fail(other)),
        }
    }

    /// Streams a plan's progress events (starting at sequence number
    /// `from_event`) into `on_event` until the plan is terminal; returns
    /// the terminal phase.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] for unknown plans
    /// and undecodable events.
    pub fn watch(
        &mut self,
        plan: PlanId,
        from_event: usize,
        mut on_event: impl FnMut(usize, ProgressEvent),
    ) -> Result<PlanPhase, NetError> {
        self.transport
            .send_value(&ServiceRequest::Watch { plan, from_event })?;
        loop {
            match self.transport.recv_value()? {
                ServiceReply::Event {
                    seq, event_json, ..
                } => {
                    let event: ProgressEvent = serde_json::from_str(&event_json)
                        .map_err(|e| NetError::Protocol(format!("undecodable event: {e}")))?;
                    on_event(seq, event);
                }
                ServiceReply::WatchEnd { phase, .. } => return Ok(phase),
                other => return Err(Self::fail(other)),
            }
        }
    }

    /// Blocks until the plan reaches a terminal phase and returns it
    /// (a watch from past the end of the event stream).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceClient::watch`].
    pub fn wait_terminal(&mut self, plan: PlanId) -> Result<PlanPhase, NetError> {
        self.watch(plan, usize::MAX, |_, _| {})
    }

    /// Retrieves a completed plan's results as the server's raw JSON
    /// payload — the byte-exact artifact the determinism gate diffs
    /// against a solo engine run. Blocks until the plan is terminal.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] when the plan is
    /// unknown or finished without results (cancelled/failed).
    pub fn results_json(&mut self, plan: PlanId) -> Result<String, NetError> {
        match self.request(&ServiceRequest::Results { plan })? {
            ServiceReply::Results { results_json, .. } => Ok(results_json),
            other => Err(Self::fail(other)),
        }
    }

    /// Retrieves and deserializes a completed plan's results.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceClient::results_json`].
    pub fn results(&mut self, plan: PlanId) -> Result<Vec<StudyResult>, NetError> {
        let json = self.results_json(plan)?;
        serde_json::from_str(&json).map_err(|e| NetError::Protocol(format!("bad results: {e}")))
    }

    /// Retrieves a plan's traces as the server's raw JSON payload.
    /// Blocks until the plan is terminal.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] for unknown plans.
    pub fn traces_json(&mut self, plan: PlanId) -> Result<String, NetError> {
        match self.request(&ServiceRequest::Traces { plan })? {
            ServiceReply::Traces { traces_json, .. } => Ok(traces_json),
            other => Err(Self::fail(other)),
        }
    }

    /// Retrieves and deserializes a plan's traces, keyed by flat plan
    /// index.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServiceClient::traces_json`].
    pub fn traces(&mut self, plan: PlanId) -> Result<Vec<(usize, RunTrace)>, NetError> {
        let json = self.traces_json(plan)?;
        serde_json::from_str(&json).map_err(|e| NetError::Protocol(format!("bad traces: {e}")))
    }

    /// Cancels a plan; returns the phase after the cancel took effect.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] for unknown plans.
    pub fn cancel(&mut self, plan: PlanId) -> Result<PlanPhase, NetError> {
        match self.request(&ServiceRequest::Cancel { plan })? {
            ServiceReply::Cancelled { phase, .. } => Ok(phase),
            other => Err(Self::fail(other)),
        }
    }

    /// Resumes an interrupted plan recovered from the daemon's spool;
    /// returns `(phase, completed, total)` after the resume took effect.
    /// Idempotent on plans that are already running or terminal.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] for unknown plans
    /// and unreadable journals.
    pub fn resume(&mut self, plan: PlanId) -> Result<(PlanPhase, usize, usize), NetError> {
        match self.request(&ServiceRequest::Resume { plan })? {
            ServiceReply::Resumed {
                phase,
                completed,
                total,
                ..
            } => Ok((phase, completed, total)),
            other => Err(Self::fail(other)),
        }
    }

    /// Queries a plan's phase and `(completed, total)` run counters.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] for unknown plans.
    pub fn status(&mut self, plan: PlanId) -> Result<(PlanPhase, usize, usize), NetError> {
        match self.request(&ServiceRequest::Status { plan })? {
            ServiceReply::Status {
                phase,
                completed,
                total,
                ..
            } => Ok((phase, completed, total)),
            other => Err(Self::fail(other)),
        }
    }

    /// Asks the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] on an unexpected
    /// reply.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.request(&ServiceRequest::Shutdown)? {
            ServiceReply::ShuttingDown => Ok(()),
            other => Err(Self::fail(other)),
        }
    }
}

/// Reconnect policy for [`with_retries`]: how many times to re-dial a
/// daemon whose connection dropped, and how long to back off between
/// dials (linear: attempt `k` of `attempts` waits `k × backoff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Reconnect attempts after the initial try. 0 = fail fast.
    pub attempts: u32,
    /// Base backoff; attempt `k` sleeps `k × backoff` before dialing.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: the initial attempt's error is final.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Up to `attempts` reconnects with linear `backoff` between dials.
    pub fn new(attempts: u32, backoff: Duration) -> Self {
        RetryPolicy { attempts, backoff }
    }
}

/// Runs `op` against a fresh [`ServiceClient`] connection, reconnecting
/// with linear backoff when the daemon hangs up mid-exchange
/// ([`NetError::Disconnected`]). Every other error — protocol rejections,
/// codec failures, non-hangup I/O — is final immediately: retrying those
/// would loop on a deterministic failure.
///
/// `op` takes the connected client by `&mut` and may be called once per
/// attempt, so it must be written to be re-runnable: idempotent requests
/// (watch-from-sequence, results, status) retry transparently, while a
/// retried `submit` re-submits and can duplicate a plan whose first
/// submission landed just before the hangup — callers resuming a watch
/// should track the last seen sequence number in captured state (see the
/// `avfi-client` CLI) so the replay starts where the dead connection
/// stopped.
///
/// # Errors
///
/// The last attempt's error once the policy is exhausted, or the first
/// non-disconnect error.
pub fn with_retries<T>(
    addr: &str,
    policy: RetryPolicy,
    op: impl FnMut(&mut ServiceClient) -> Result<T, NetError>,
) -> Result<T, NetError> {
    with_retries_authed(addr, None, policy, op)
}

/// [`with_retries`] against a daemon that may require an auth token:
/// every reconnect re-runs the hello handshake before `op`, so a dropped
/// connection retried against an authenticated daemon does not trip the
/// first-frame gate. A rejected token is a protocol error and therefore
/// final — retrying a wrong secret would loop on a deterministic failure.
///
/// # Errors
///
/// Same conditions as [`with_retries`].
pub fn with_retries_authed<T>(
    addr: &str,
    token: Option<&str>,
    policy: RetryPolicy,
    mut op: impl FnMut(&mut ServiceClient) -> Result<T, NetError>,
) -> Result<T, NetError> {
    let mut attempt = 0u32;
    loop {
        let result =
            ServiceClient::connect_with_token(addr, token).and_then(|mut client| op(&mut client));
        match result {
            Err(NetError::Disconnected) if attempt < policy.attempts => {
                attempt += 1;
                std::thread::sleep(policy.backoff * attempt);
            }
            other => return other,
        }
    }
}

/// The demo plan the quickstart and the smoke tier submit: a baseline
/// study next to an output-delay study on small deterministic towns —
/// big enough to exercise multiplexed scheduling, small enough to finish
/// in seconds.
pub fn demo_plan() -> WorkPlan {
    fn scenario(seed: u64) -> Scenario {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(15.0)
            .min_route_length(50.0)
            .build()
    }
    fn campaign(seed: u64, fault: FaultSpec) -> CampaignConfig {
        CampaignConfig::builder(vec![scenario(seed), scenario(seed + 1)])
            .runs_per_scenario(1)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build()
    }
    WorkPlan::new()
        .with_study("baseline", vec![campaign(2018, FaultSpec::None)])
        .with_study(
            "output-delay",
            vec![campaign(
                2018,
                FaultSpec::Timing(TimingFault::OutputDelay { frames: 8 }),
            )],
        )
}

/// Executes `plan` in-process with a solo single-worker [`Engine`] and
/// returns the results serialized exactly as the server serializes them —
/// the reference artifact for the determinism gate.
///
/// # Errors
///
/// Propagates serialization failures (none occur for these types).
pub fn solo_results_json(plan: &WorkPlan) -> Result<String, serde_json::Error> {
    serde_json::to_string(&Engine::new().workers(1).execute(plan))
}
