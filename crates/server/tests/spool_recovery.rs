//! Spool recovery across daemon restarts: finished plans reload
//! fetchable with byte-identical results, interrupted journals surface
//! as resumable (or restart automatically with auto-resume) and resume
//! to the same bytes an uninterrupted run produces, and retention
//! eviction deletes the spooled files while plan status survives.

use avfi_core::campaign::RunResult;
use avfi_core::engine::NullSink;
use avfi_core::{Engine, RunSink, WorkPlan};
use avfi_net::proto::PlanPhase;
use avfi_net::NetError;
use avfi_server::{demo_plan, solo_results_json, CampaignServer, ServiceClient};
use avfi_store::{Journal, JournalRecord};
use avfi_trace::TraceLevel;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn fresh_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avfi-spool-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");
    dir
}

fn spawn_daemon(
    spool: &Path,
    auto_resume: bool,
    retention: Option<Duration>,
) -> (String, std::thread::JoinHandle<()>) {
    let server = CampaignServer::bind("127.0.0.1:0", 2)
        .expect("bind")
        .with_retention(retention)
        .with_spool(Some(spool.to_path_buf()), auto_resume)
        .expect("spool recovery");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || {
        server.run().expect("daemon run");
    });
    (addr, daemon)
}

/// Writes an interrupted journal for `plan` under plan id `id`: the
/// submission record plus the first `completed` runs, no terminal — what
/// a daemon killed mid-plan leaves behind.
fn write_interrupted_journal(spool: &Path, id: u64, plan: &WorkPlan, completed: usize) {
    #[derive(Default)]
    struct Collect(parking_lot::Mutex<Vec<(usize, RunResult)>>);
    impl RunSink for Collect {
        fn run_completed(
            &self,
            flat_index: usize,
            result: &RunResult,
            _trace: Option<&avfi_trace::RunTrace>,
        ) {
            self.0.lock().push((flat_index, result.clone()));
        }
    }
    let collector = Collect::default();
    Engine::new()
        .workers(2)
        .execute_resumed(plan, Vec::new(), &NullSink, Some(&collector));
    let runs = collector.0.into_inner();
    assert!(completed <= runs.len());

    let path = spool.join(avfi_store::journal_file_name(id));
    let mut journal = Journal::create(&path).expect("create journal");
    journal
        .append(&JournalRecord::PlanSubmitted {
            plan_json: serde_json::to_string(plan).expect("plan serializes"),
            trace_level: "off".into(),
        })
        .expect("append submission");
    for (idx, result) in &runs[..completed] {
        journal
            .append(&JournalRecord::RunCompleted {
                flat_index: *idx as u64,
                result_json: serde_json::to_string(result).expect("result serializes"),
            })
            .expect("append run");
    }
}

/// A completed plan's results survive a daemon restart byte for byte,
/// served from the journal alone.
#[test]
fn completed_plan_survives_restart_byte_identical() {
    let spool = fresh_spool("restart");
    let plan = demo_plan();

    let (addr, daemon) = spawn_daemon(&spool, false, None);
    let mut c = ServiceClient::connect(&addr).expect("connect");
    let (id, total) = c.submit(&plan, TraceLevel::Off).expect("submit");
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);
    let before = c.results_json(id).expect("results before restart");
    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");

    // "Restart": a new daemon over the same spool directory.
    let (addr, daemon) = spawn_daemon(&spool, false, None);
    let mut c = ServiceClient::connect(&addr).expect("reconnect");
    let (phase, completed, reported_total) = c.status(id).expect("status after restart");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!(completed, total);
    assert_eq!(reported_total, total);
    let after = c.results_json(id).expect("results after restart");
    assert_eq!(after, before, "recovered results must be byte-identical");

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&spool);
}

/// An interrupted journal parks the plan as resumable: status reports
/// `interrupted` with true counters, payload fetches direct the client
/// to resume, and an explicit resume re-executes only the missing runs —
/// final bytes identical to an uninterrupted solo run.
#[test]
fn interrupted_plan_resumes_to_identical_bytes() {
    let spool = fresh_spool("resume");
    let plan = demo_plan();
    let id = 7u64;
    write_interrupted_journal(&spool, id, &plan, 2);
    let reference = solo_results_json(&plan).expect("solo reference");

    let (addr, daemon) = spawn_daemon(&spool, false, None);
    let mut c = ServiceClient::connect(&addr).expect("connect");

    let (phase, completed, total) = c.status(id).expect("status");
    assert_eq!(phase, PlanPhase::Interrupted);
    assert_eq!(completed, 2);
    assert_eq!(total, plan.total_runs());

    match c.results_json(id) {
        Err(NetError::Protocol(message)) => {
            assert!(message.contains("resume"), "unhelpful error: {message}");
        }
        other => panic!("expected interrupted protocol error, got {other:?}"),
    }

    let (phase, _, resumed_total) = c.resume(id).expect("resume");
    assert_ne!(phase, PlanPhase::Interrupted);
    assert_eq!(resumed_total, total);
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);
    let results = c.results_json(id).expect("results after resume");
    assert_eq!(results, reference, "resumed results must be byte-identical");

    // Resume is idempotent on a finished plan.
    let (phase, completed, _) = c.resume(id).expect("idempotent resume");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!(completed, total);

    // New submissions never collide with recovered plan ids.
    let (new_id, _) = c.submit(&plan, TraceLevel::Off).expect("fresh submit");
    assert!(new_id > id, "recovered ids must be reserved, got {new_id}");

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&spool);
}

/// With `--auto-resume` the interrupted plan re-enters the pool at
/// startup — no explicit resume needed — and completes identically.
#[test]
fn auto_resume_restarts_interrupted_plans() {
    let spool = fresh_spool("auto");
    let plan = demo_plan();
    let id = 3u64;
    write_interrupted_journal(&spool, id, &plan, 1);
    let reference = solo_results_json(&plan).expect("solo reference");

    let (addr, daemon) = spawn_daemon(&spool, true, None);
    let mut c = ServiceClient::connect(&addr).expect("connect");
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);
    let results = c.results_json(id).expect("results");
    assert_eq!(results, reference);

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&spool);
}

/// Zero retention with a spool: the sweep deletes the plan's journal
/// (and trace directory) from the spool while status stays queryable —
/// so a later restart no longer resurrects the evicted plan.
#[test]
fn retention_sweep_deletes_spooled_files() {
    let spool = fresh_spool("evict");
    let plan = demo_plan();

    let (addr, daemon) = spawn_daemon(&spool, false, Some(Duration::ZERO));
    let mut c = ServiceClient::connect(&addr).expect("connect");
    let (id, total) = c.submit(&plan, TraceLevel::Blackbox).expect("submit");
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);
    let journal_path = spool.join(avfi_store::journal_file_name(id));
    assert!(journal_path.exists(), "journal must exist while retained");

    // Any served request triggers the sweep; retention 0 = expired now.
    let _ = c.results_json(id);
    let (phase, completed, reported_total) = c.status(id).expect("status after sweep");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!(completed, total);
    assert_eq!(reported_total, total);
    assert!(
        !journal_path.exists(),
        "sweep must delete the spooled journal"
    );
    assert!(
        !spool.join(avfi_store::trace_dir_name(id)).exists(),
        "sweep must delete the spooled trace directory"
    );

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&spool);
}
