//! The multiplexed determinism gate: many concurrent clients submit
//! distinct plans to one daemon sharing one worker pool, and every
//! retrieved results payload must be **byte-identical** to a solo
//! single-worker `Engine::execute` of the same plan.

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::{ProgressEvent, WorkPlan};
use avfi_net::proto::PlanPhase;
use avfi_server::{solo_results_json, CampaignServer, ServiceClient};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::TraceLevel;

fn scenario(seed: u64) -> Scenario {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(15.0)
        .min_route_length(50.0)
        .build()
}

/// A distinct two-study plan per client: different seeds, and a timing
/// fault on the second study so plans exercise different code paths.
fn client_plan(client: u64) -> WorkPlan {
    let seed = 9000 + client * 10;
    let base = CampaignConfig::builder(vec![scenario(seed), scenario(seed + 1)])
        .runs_per_scenario(1)
        .fault(FaultSpec::None)
        .agent(AgentSpec::Expert)
        .build();
    let delayed = CampaignConfig::builder(vec![scenario(seed + 2)])
        .runs_per_scenario(1)
        .fault(FaultSpec::Timing(TimingFault::OutputDelay {
            frames: 4 + client as usize,
        }))
        .agent(AgentSpec::Expert)
        .build();
    WorkPlan::new()
        .with_study("baseline", vec![base])
        .with_study("delayed", vec![delayed])
}

#[test]
fn eight_concurrent_clients_get_solo_identical_results() {
    const CLIENTS: u64 = 8;
    let server = CampaignServer::bind("127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    // Each client runs on its own thread with its own connection:
    // submit, watch the full event stream, then fetch results.
    let fetched: Vec<(u64, u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = ServiceClient::connect(&addr).expect("connect");
                    let plan = client_plan(client);
                    let (id, total) = c.submit(&plan, TraceLevel::Off).expect("submit");
                    assert_eq!(total, plan.total_runs());
                    let mut run_events = 0usize;
                    let phase = c
                        .watch(id, 0, |_, event| {
                            if matches!(event, ProgressEvent::RunCompleted { .. }) {
                                run_events += 1;
                            }
                        })
                        .expect("watch");
                    assert_eq!(phase, PlanPhase::Completed);
                    assert_eq!(run_events, total, "client {client} missed run events");
                    let json = c.results_json(id).expect("results");
                    (client, id, json)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    assert_eq!(fetched.len() as u64, CLIENTS);
    for (client, _, served_json) in &fetched {
        let solo = solo_results_json(&client_plan(*client)).expect("solo");
        assert_eq!(
            served_json, &solo,
            "client {client}: served results differ from solo engine run"
        );
    }

    // Status on a completed plan reports full completion, and a second
    // retrieval over a fresh connection returns the same bytes (results
    // are stable server-side and outlive the submitting connection).
    let (_, sample_id, sample_json) = &fetched[0];
    let mut c = ServiceClient::connect(&addr).expect("reconnect");
    let (phase, completed, total) = c.status(*sample_id).expect("status");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!(completed, total);
    let again = c.results_json(*sample_id).expect("re-fetch");
    assert_eq!(
        &again, sample_json,
        "re-fetched results must be byte-stable"
    );

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon run");
}

#[test]
fn unknown_plans_and_bad_submissions_fail_soft() {
    let server = CampaignServer::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let mut c = ServiceClient::connect(&addr).expect("connect");
    // Unknown plan id: an error reply, and the connection stays usable.
    assert!(c.results_json(999).is_err());
    assert!(c.status(999).is_err());
    // A usable connection can still submit and complete a real plan.
    let plan = client_plan(0);
    let (id, _) = c.submit(&plan, TraceLevel::Off).expect("submit");
    assert_eq!(c.wait_terminal(id).expect("wait"), PlanPhase::Completed);
    assert_eq!(
        c.results_json(id).expect("results"),
        solo_results_json(&plan).expect("solo")
    );

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon run");
}
