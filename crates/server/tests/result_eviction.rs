//! Retention eviction: a daemon configured with a retention window drops
//! finished plans' result and trace payloads once the window elapses,
//! while lifecycle status stays queryable. Fetching evicted payloads must
//! fail with a clean protocol error naming the eviction — never a torn
//! connection or a hang.

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::fault::FaultSpec;
use avfi_core::WorkPlan;
use avfi_net::proto::PlanPhase;
use avfi_net::NetError;
use avfi_server::{CampaignServer, ServiceClient};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::TraceLevel;
use std::time::Duration;

fn tiny_plan(seed: u64) -> WorkPlan {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    let scenario = Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(10.0)
        .min_route_length(50.0)
        .build();
    let campaign = CampaignConfig::builder(vec![scenario])
        .runs_per_scenario(1)
        .fault(FaultSpec::None)
        .agent(AgentSpec::Expert)
        .build();
    WorkPlan::new().with_study("ret", vec![campaign])
}

fn spawn_daemon(retention: Option<Duration>) -> (String, std::thread::JoinHandle<()>) {
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_retention(retention);
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || {
        server.run().expect("daemon run");
    });
    (addr, daemon)
}

/// Zero retention: the instant a plan is terminal, the next served
/// request sweeps its payloads. Results and traces then fail with a
/// protocol error that names the eviction; status still reports the
/// completed phase and the true run counters.
#[test]
fn fetch_after_evict_is_a_clean_protocol_error() {
    let (addr, daemon) = spawn_daemon(Some(Duration::ZERO));
    let mut c = ServiceClient::connect(&addr).expect("connect");
    let (id, total) = c
        .submit(&tiny_plan(7100), TraceLevel::Blackbox)
        .expect("submit");
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);

    // wait_terminal's WatchEnd proves the plan finished; the results
    // request itself triggers the sweep (retention 0 = already expired).
    match c.results_json(id) {
        Err(NetError::Protocol(message)) => {
            assert!(message.contains("evicted"), "unhelpful error: {message}");
        }
        other => panic!("expected eviction protocol error, got {other:?}"),
    }
    match c.traces_json(id) {
        Err(NetError::Protocol(message)) => {
            assert!(message.contains("evicted"), "unhelpful error: {message}");
        }
        other => panic!("expected eviction protocol error, got {other:?}"),
    }

    // The connection survived both errors, and lifecycle status is still
    // served from the retained ticket.
    let (phase, completed, reported_total) = c.status(id).expect("status after evict");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!(completed, total);
    assert_eq!(reported_total, total);

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");
}

/// A generous retention window: payloads survive the sweeps that every
/// request triggers, so results fetched after completion are intact.
#[test]
fn within_retention_results_are_served() {
    let (addr, daemon) = spawn_daemon(Some(Duration::from_secs(3600)));
    let mut c = ServiceClient::connect(&addr).expect("connect");
    let (id, _) = c.submit(&tiny_plan(7200), TraceLevel::Off).expect("submit");
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);
    let results = c.results(id).expect("results within retention");
    assert_eq!(results.len(), 1);
    // A second fetch still works: eviction is driven by age, not reads.
    c.results_json(id).expect("repeat fetch");
    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread");
}
