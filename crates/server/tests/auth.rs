//! Shared-secret authentication: a daemon running with an auth token
//! must serve only connections that open with a matching hello frame.
//! Wrong tokens and missing hellos get a clean protocol error — never a
//! hang, never a served request — and the connection is closed. A
//! daemon without a token stays fully open and still acknowledges
//! voluntary hellos, so token-configured clients work against it.

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::fault::FaultSpec;
use avfi_core::WorkPlan;
use avfi_net::proto::PlanPhase;
use avfi_net::NetError;
use avfi_server::{CampaignServer, ServiceClient};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::TraceLevel;

const SECRET: &str = "campaign-secret";

fn tiny_plan(seed: u64) -> WorkPlan {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    let scenario = Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(10.0)
        .min_route_length(50.0)
        .build();
    let campaign = CampaignConfig::builder(vec![scenario])
        .runs_per_scenario(1)
        .fault(FaultSpec::None)
        .agent(AgentSpec::Expert)
        .build();
    WorkPlan::new().with_study("auth", vec![campaign])
}

fn spawn_daemon(token: Option<&str>) -> (String, std::thread::JoinHandle<()>) {
    let server = CampaignServer::bind("127.0.0.1:0", 1)
        .expect("bind")
        .with_auth_token(token.map(str::to_string));
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || {
        server.run().expect("daemon run");
    });
    (addr, daemon)
}

/// Shuts the daemon down through the front door (hello included).
fn shutdown(addr: &str, token: Option<&str>, daemon: std::thread::JoinHandle<()>) {
    ServiceClient::connect_with_token(addr, token)
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("shutdown");
    daemon.join().expect("daemon thread");
}

/// The right token authenticates and the connection then serves the
/// full campaign flow: submit, watch to terminal, fetch results.
#[test]
fn correct_token_is_accepted_and_requests_are_served() {
    let (addr, daemon) = spawn_daemon(Some(SECRET));
    let mut c = ServiceClient::connect_with_token(&addr, Some(SECRET)).expect("hello accepted");
    let (id, total) = c.submit(&tiny_plan(8100), TraceLevel::Off).expect("submit");
    assert_eq!(c.wait_terminal(id).expect("terminal"), PlanPhase::Completed);
    let results = c.results(id).expect("results");
    let run_count: usize = results
        .iter()
        .flat_map(|s| &s.campaigns)
        .map(|c| c.runs().len())
        .sum();
    assert_eq!(run_count, total);
    shutdown(&addr, Some(SECRET), daemon);
}

/// A wrong token is answered with a protocol error and the connection
/// is closed: the next request cannot reach the daemon.
#[test]
fn wrong_token_is_rejected_and_the_connection_closes() {
    let (addr, daemon) = spawn_daemon(Some(SECRET));
    let err = ServiceClient::connect_with_token(&addr, Some("not-the-secret"))
        .expect_err("wrong token must be rejected");
    match err {
        NetError::Protocol(message) => {
            assert!(message.contains("authentication failed"), "got: {message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    shutdown(&addr, Some(SECRET), daemon);
}

/// Skipping the hello entirely is the same rejection: the first frame
/// gate answers the smuggled request with the auth error, serves
/// nothing, and closes. A follow-up request on the same connection
/// surfaces the hangup.
#[test]
fn missing_hello_is_rejected_before_any_request_is_served() {
    let (addr, daemon) = spawn_daemon(Some(SECRET));
    let mut c = ServiceClient::connect(&addr).expect("tcp connect");
    let err = c.status(1).expect_err("unauthenticated request must fail");
    match err {
        NetError::Protocol(message) => {
            assert!(message.contains("authentication failed"), "got: {message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert!(
        c.status(1).is_err(),
        "connection must be closed after the rejection"
    );
    shutdown(&addr, Some(SECRET), daemon);
}

/// An open daemon acknowledges a voluntary hello instead of choking on
/// it, so one client configuration works against both daemon modes.
#[test]
fn open_daemon_acknowledges_voluntary_hello() {
    let (addr, daemon) = spawn_daemon(None);
    let mut c = ServiceClient::connect_with_token(&addr, Some("ignored")).expect("hello tolerated");
    let err = c.status(99).expect_err("unknown plan");
    assert!(matches!(err, NetError::Protocol(m) if m.contains("unknown plan")));
    shutdown(&addr, None, daemon);
}
