//! Soak test: concurrent clients hammer one daemon with randomized
//! submit / cancel / disconnect interleavings (seeded, so a failure
//! reproduces), and the server must survive with every *completed* plan
//! still bit-identical to its solo golden.

use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::WorkPlan;
use avfi_net::proto::{PlanPhase, ServiceReply, ServiceRequest};
use avfi_net::TcpTransport;
use avfi_server::{solo_results_json, CampaignServer, ServiceClient};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::TraceLevel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CLIENTS: u64 = 6;
const PLANS_PER_CLIENT: u64 = 3;

fn scenario(seed: u64) -> Scenario {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(15.0)
        .min_route_length(50.0)
        .build()
}

/// Deterministic per-(client, round) plan so completed results can be
/// compared against a solo golden computed independently.
fn soak_plan(client: u64, round: u64) -> WorkPlan {
    let seed = 31_000 + client * 100 + round * 7;
    let fault = if round.is_multiple_of(2) {
        FaultSpec::None
    } else {
        FaultSpec::Timing(TimingFault::OutputDelay {
            frames: 2 + (client as usize % 5),
        })
    };
    let campaign = CampaignConfig::builder(vec![scenario(seed), scenario(seed + 1)])
        .runs_per_scenario(1)
        .fault(fault)
        .agent(AgentSpec::Expert)
        .build();
    WorkPlan::new().with_study("soak", vec![campaign])
}

/// What one client does with one plan, drawn from its seeded RNG.
enum Action {
    /// Submit, wait for completion, fetch and verify results.
    Complete,
    /// Submit and cancel immediately; accept any terminal phase.
    CancelEarly,
    /// Submit, start watching, and drop the connection mid-stream; the
    /// plan must finish anyway and be fetchable over a new connection.
    DisconnectMidWatch,
}

fn pick_action(rng: &mut StdRng) -> Action {
    match rng.random_range(0..3usize) {
        0 => Action::Complete,
        1 => Action::CancelEarly,
        _ => Action::DisconnectMidWatch,
    }
}

#[test]
fn randomized_soak_survives_cancels_and_disconnects() {
    let server = CampaignServer::bind("127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    // (client, round, plan id) of plans expected to have completed.
    let completed: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x50A4 ^ client);
                    let mut done = Vec::new();
                    for round in 0..PLANS_PER_CLIENT {
                        let plan = soak_plan(client, round);
                        match pick_action(&mut rng) {
                            Action::Complete => {
                                let mut c = ServiceClient::connect(&addr).expect("connect");
                                let (id, _) = c.submit(&plan, TraceLevel::Off).expect("submit");
                                assert_eq!(
                                    c.wait_terminal(id).expect("wait"),
                                    PlanPhase::Completed
                                );
                                done.push((client, round, id));
                            }
                            Action::CancelEarly => {
                                let mut c = ServiceClient::connect(&addr).expect("connect");
                                let (id, _) = c.submit(&plan, TraceLevel::Off).expect("submit");
                                let phase = c.cancel(id).expect("cancel");
                                // Any resolution of the cancel/complete
                                // race is legal, but it must settle.
                                let terminal = c.wait_terminal(id).expect("wait");
                                assert!(terminal.is_terminal(), "{phase} -> {terminal}");
                                if terminal == PlanPhase::Completed {
                                    done.push((client, round, id));
                                }
                            }
                            Action::DisconnectMidWatch => {
                                let mut c = ServiceClient::connect(&addr).expect("connect");
                                let (id, _) = c.submit(&plan, TraceLevel::Off).expect("submit");
                                // A raw watch connection, dropped with the
                                // event stream still in flight: the server
                                // handler hits a dead socket mid-send and
                                // must shrug it off.
                                let mut watcher =
                                    TcpTransport::connect(&addr).expect("watcher connect");
                                watcher
                                    .send_value(&ServiceRequest::Watch {
                                        plan: id,
                                        from_event: 0,
                                    })
                                    .expect("watch request");
                                let _first: ServiceReply =
                                    watcher.recv_value().expect("first event frame");
                                drop(watcher);
                                // The plan is unaffected: finish and
                                // verify over the original connection.
                                assert_eq!(
                                    c.wait_terminal(id).expect("wait"),
                                    PlanPhase::Completed
                                );
                                done.push((client, round, id));
                            }
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("soak client"))
            .collect()
    });

    // Every completed plan's served bytes must equal its solo golden.
    let mut c = ServiceClient::connect(&addr).expect("verify connect");
    assert!(
        !completed.is_empty(),
        "soak produced no completed plans to verify"
    );
    for (client, round, id) in &completed {
        let served = c.results_json(*id).expect("results");
        let solo = solo_results_json(&soak_plan(*client, *round)).expect("solo");
        assert_eq!(
            served, solo,
            "client {client} round {round}: served results drifted from solo golden"
        );
    }

    // The daemon is still healthy after the storm: one more full plan.
    let plan = soak_plan(99, 0);
    let (id, _) = c.submit(&plan, TraceLevel::Off).expect("final submit");
    assert_eq!(
        c.wait_terminal(id).expect("final wait"),
        PlanPhase::Completed
    );
    assert_eq!(
        c.results_json(id).expect("final results"),
        solo_results_json(&plan).expect("final solo")
    );

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon run");
}

/// Cancelled plans must refuse results with a soft error while keeping
/// the connection usable, and traces retrieval must work for traced
/// plans after completion.
#[test]
fn cancelled_plans_refuse_results_and_traced_plans_serve_traces() {
    let server = CampaignServer::bind("127.0.0.1:0", 1).expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let mut c = ServiceClient::connect(&addr).expect("connect");

    // A stuck-brake plan at blackbox level must emit failure traces.
    let stuck = {
        use avfi_core::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
        let fault = FaultSpec::Hardware(HardwareFault::always(
            HardwareTarget::ControlBrake,
            BitFaultModel::StuckAt { value: 1.0 },
        ));
        let campaign = CampaignConfig::builder(vec![scenario(77_000)])
            .runs_per_scenario(1)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build();
        WorkPlan::new().with_study("stuck", vec![campaign])
    };
    let (traced_id, _) = c
        .submit(&stuck, TraceLevel::Blackbox)
        .expect("submit traced");
    assert_eq!(
        c.wait_terminal(traced_id).expect("wait"),
        PlanPhase::Completed
    );
    let traces = c.traces(traced_id).expect("traces");
    assert!(!traces.is_empty(), "stuck-brake plan must serve traces");
    assert!(traces[0].1.is_failure());

    // Cancel a fresh plan before fetching: results must fail soft.
    let (id, _) = c.submit(&soak_plan(1, 1), TraceLevel::Off).expect("submit");
    c.cancel(id).expect("cancel");
    let terminal = c.wait_terminal(id).expect("wait");
    if terminal == PlanPhase::Cancelled {
        assert!(c.results_json(id).is_err(), "cancelled plan served results");
    }
    // The same connection still works after the error reply.
    let (phase, _, _) = c.status(id).expect("status");
    assert!(phase.is_terminal());

    c.shutdown_server().expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon run");
}
