//! Reconnect-with-backoff: `with_retries` must re-dial a daemon that
//! hangs up mid-exchange (`NetError::Disconnected`), stop after the
//! policy's attempt budget, and never retry deterministic failures such
//! as protocol errors. The flaky daemon here is a scripted listener that
//! drops or serves each accepted connection per a schedule — a real
//! injected disconnect, not a mocked error value.

use avfi_net::proto::{PlanPhase, ServiceReply, ServiceRequest};
use avfi_net::{NetError, TcpTransport};
use avfi_server::{with_retries, RetryPolicy};
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the scripted listener does with one accepted connection.
#[derive(Debug, Clone, Copy)]
enum Script {
    /// Accept, then drop immediately: the client sees a hangup.
    Drop,
    /// Answer one status request with a canned `Completed` reply.
    ServeStatus,
    /// Answer one cancel request with a canned `Cancelled` reply.
    ServeCancel,
    /// Answer one request with a protocol-level error reply.
    ServeError,
}

/// Spawns a listener that handles its `i`-th connection per `script[i]`
/// (connections beyond the script are dropped). Returns the address and
/// a counter of connections actually accepted.
fn scripted_daemon(script: Vec<Script>) -> (String, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let accepted = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&accepted);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let i = counter.fetch_add(1, Ordering::SeqCst);
            match script.get(i).copied().unwrap_or(Script::Drop) {
                Script::Drop => drop(stream),
                Script::ServeStatus => {
                    let Ok(mut t) = TcpTransport::new(stream) else {
                        continue;
                    };
                    let Ok(ServiceRequest::Status { plan }) = t.recv_value() else {
                        continue;
                    };
                    let _ = t.send_value(&ServiceReply::Status {
                        plan,
                        phase: PlanPhase::Completed,
                        completed: 3,
                        total: 3,
                    });
                }
                Script::ServeCancel => {
                    let Ok(mut t) = TcpTransport::new(stream) else {
                        continue;
                    };
                    let Ok(ServiceRequest::Cancel { plan }) = t.recv_value() else {
                        continue;
                    };
                    let _ = t.send_value(&ServiceReply::Cancelled {
                        plan,
                        phase: PlanPhase::Cancelled,
                    });
                }
                Script::ServeError => {
                    let Ok(mut t) = TcpTransport::new(stream) else {
                        continue;
                    };
                    let _: Result<ServiceRequest, _> = t.recv_value();
                    let _ = t.send_value(&ServiceReply::Error {
                        message: "deterministic rejection".to_string(),
                    });
                }
            }
        }
    });
    (addr, accepted)
}

/// First connection is torn down by the daemon, the retry dials again
/// and completes the exchange.
#[test]
fn reconnects_after_injected_disconnect() {
    let (addr, accepted) = scripted_daemon(vec![Script::Drop, Script::ServeStatus]);
    let policy = RetryPolicy::new(3, Duration::from_millis(5));
    let (phase, completed, total) =
        with_retries(&addr, policy, |client| client.status(7)).expect("retried status");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!((completed, total), (3, 3));
    assert_eq!(accepted.load(Ordering::SeqCst), 2, "exactly one retry");
}

/// `attempts: 0` fails fast with the disconnect itself.
#[test]
fn zero_attempts_surface_the_disconnect() {
    let (addr, accepted) = scripted_daemon(vec![Script::Drop, Script::ServeStatus]);
    let err = with_retries(&addr, RetryPolicy::none(), |client| client.status(7))
        .expect_err("no retries allowed");
    assert!(matches!(err, NetError::Disconnected), "got {err:?}");
    assert_eq!(accepted.load(Ordering::SeqCst), 1);
}

/// A daemon that keeps hanging up exhausts the attempt budget: initial
/// try plus `attempts` retries, then the disconnect is surfaced.
#[test]
fn attempt_budget_is_bounded() {
    let (addr, accepted) = scripted_daemon(vec![Script::Drop; 8]);
    let policy = RetryPolicy::new(2, Duration::from_millis(1));
    let err =
        with_retries(&addr, policy, |client| client.status(7)).expect_err("daemon never recovers");
    assert!(matches!(err, NetError::Disconnected), "got {err:?}");
    assert_eq!(accepted.load(Ordering::SeqCst), 3, "1 try + 2 retries");
}

/// A cancel whose first connection is torn down replays on a fresh dial
/// — safe because cancelling is idempotent on the server — and lands
/// the canned `Cancelled` phase (the `avfi-client cancel --retry` path).
#[test]
fn cancel_retries_after_injected_disconnect() {
    let (addr, accepted) = scripted_daemon(vec![Script::Drop, Script::Drop, Script::ServeCancel]);
    let policy = RetryPolicy::new(3, Duration::from_millis(5));
    let phase = with_retries(&addr, policy, |client| client.cancel(11)).expect("retried cancel");
    assert_eq!(phase, PlanPhase::Cancelled);
    assert_eq!(accepted.load(Ordering::SeqCst), 3, "two drops, then served");
}

/// A status poll dropped mid-exchange replays transparently (the
/// `avfi-client status --retry` path).
#[test]
fn status_retries_after_injected_disconnect() {
    let (addr, accepted) = scripted_daemon(vec![Script::Drop, Script::ServeStatus]);
    let policy = RetryPolicy::new(2, Duration::from_millis(5));
    let (phase, completed, total) =
        with_retries(&addr, policy, |client| client.status(11)).expect("retried status");
    assert_eq!(phase, PlanPhase::Completed);
    assert_eq!((completed, total), (3, 3));
    assert_eq!(accepted.load(Ordering::SeqCst), 2);
}

/// Protocol errors are deterministic; retrying them would loop on the
/// same rejection, so the first one is final even with budget left.
#[test]
fn protocol_errors_are_not_retried() {
    let (addr, accepted) = scripted_daemon(vec![Script::ServeError, Script::ServeError]);
    let policy = RetryPolicy::new(5, Duration::from_millis(1));
    let err = with_retries(&addr, policy, |client| client.status(7))
        .expect_err("server rejects the request");
    match err {
        NetError::Protocol(message) => assert!(message.contains("deterministic rejection")),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_eq!(accepted.load(Ordering::SeqCst), 1, "no retry on rejection");
}
