//! # avfi-store — durable campaign store
//!
//! Write-ahead journaling of campaign lifecycle records, crash recovery,
//! and deterministic checkpoint/resume for AVFI campaign execution.
//!
//! The campaign service (and the solo experiment binaries) execute
//! [`WorkPlan`]s whose runs take milliseconds to hours; before this crate
//! every accepted plan lived only in memory, so a daemon crash lost all
//! queued, running, and completed work. The store closes that gap with a
//! per-plan **write-ahead journal**: an append-only file of checksummed
//! lifecycle records — plan submitted, run completed (with the serialized
//! [`RunResult`]), plan terminal — that survives `SIGKILL` and powers
//! deterministic resume.
//!
//! ## Record format
//!
//! A journal file is a 5-byte header followed by zero or more records:
//!
//! ```text
//! header:  "AVFJ"  version(u8)
//! record:  len(u32 LE)  payload(len bytes)  fnv64(u64 LE)
//! ```
//!
//! `payload` is the JSON serialization of one [`JournalRecord`]; the
//! trailer is the FNV-1a-64 hash of the length prefix followed by the
//! payload — the same hash the `.avtr` trace codec uses. Each append is
//! one `write(2)` of the fully assembled record, so a crash leaves at
//! most one torn record, always at the tail.
//!
//! ## Recovery rule
//!
//! [`recover`] reads the **longest valid prefix**: records are accepted
//! in order until the first one that is truncated, fails its checksum, or
//! does not parse; everything from that point on is discarded, never
//! surfaced. Recovery is a total function — arbitrary bytes (truncations,
//! bit flips, garbage) yield some valid prefix, never a panic. Appending
//! after recovery first truncates the file back to the valid prefix so a
//! torn tail record cannot corrupt subsequent appends.
//!
//! ## Why resume is byte-identical
//!
//! A run's output depends only on its (campaign template, scenario index,
//! run index) coordinates — the engine derives each seed from those and
//! nothing else — and final results assemble in flat-plan order from
//! preassigned slots. Journaled results therefore slot back into exactly
//! the position they were first produced in, and the vendored
//! `serde_json` guarantees `f64` values roundtrip bit-for-bit through
//! their JSON text (shortest-round-trip formatting both ways). A plan
//! interrupted at **any** point and resumed with **any** worker count
//! produces final `StudyResult` JSON byte-identical to an uninterrupted
//! run — the property `resume_determinism.rs` and the smoke `store` tier
//! enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use avfi_core::campaign::RunResult;
use avfi_core::engine::{assemble_results, Engine, ProgressSink, RunSink};
use avfi_core::{StudyResult, WorkPlan};
use avfi_trace::RunTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Journal file magic: "AVFJ".
pub const MAGIC: [u8; 4] = *b"AVFJ";
/// Journal format version.
pub const VERSION: u8 = 1;
/// Extension of journal files.
pub const JOURNAL_EXT: &str = "avj";

/// Header length in bytes (magic + version).
const HEADER_LEN: usize = 5;
/// Per-record framing overhead (length prefix + checksum trailer).
const RECORD_OVERHEAD: usize = 4 + 8;

/// One write-ahead journal record. The JSON serialization of this enum is
/// the record payload on disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A plan was accepted: the full serialized `WorkPlan` plus the
    /// flight-recorder level it runs at. Always the first record.
    PlanSubmitted {
        /// JSON-serialized `avfi_core::engine::WorkPlan`.
        plan_json: String,
        /// Trace level name (`"off"`, `"summary"`, `"blackbox"`).
        trace_level: String,
    },
    /// One run finished: the flat-plan index and its serialized result.
    RunCompleted {
        /// Position in the flattened work queue.
        flat_index: u64,
        /// JSON-serialized `avfi_core::campaign::RunResult`.
        result_json: String,
    },
    /// The plan reached a terminal phase (`"completed"`, `"cancelled"`,
    /// `"failed"`). Written after the last run record.
    PlanTerminal {
        /// Terminal phase name.
        phase: String,
    },
}

/// FNV-1a-64 over a sequence of byte slices (the same constants the
/// `.avtr` codec and `avfi_trace::fingerprint` use).
fn fnv64(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Encodes one record into its on-disk framing:
/// `len(u32 LE) ‖ payload ‖ fnv64(len ‖ payload)(u64 LE)`.
pub fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record).expect("journal record serializes");
    let payload = payload.as_bytes();
    let len = (payload.len() as u32).to_le_bytes();
    let cksum = fnv64(&[&len, payload]).to_le_bytes();
    let mut buf = Vec::with_capacity(payload.len() + RECORD_OVERHEAD);
    buf.extend_from_slice(&len);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&cksum);
    buf
}

/// The journal header (magic + version).
fn header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = VERSION;
    h
}

/// Recovers the longest valid record prefix from raw journal bytes.
///
/// Returns the decoded records and the byte length of the valid prefix
/// (header included). A missing or corrupt header recovers as
/// `(vec![], 0)`; decoding stops — silently, by design — at the first
/// truncated record, checksum mismatch, or unparseable payload. Total:
/// never panics, never surfaces a partial record.
pub fn recover(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC || bytes[4] != VERSION {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
        let Some(end) = pos
            .checked_add(4)
            .and_then(|p| p.checked_add(len))
            .and_then(|p| p.checked_add(8))
        else {
            break;
        };
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let trailer = &bytes[pos + 4 + len..end];
        let cksum = u64::from_le_bytes(trailer.try_into().expect("8-byte slice"));
        if fnv64(&[len_bytes, payload]) != cksum {
            break;
        }
        let Ok(record) = serde_json::from_slice::<JournalRecord>(payload) else {
            break;
        };
        records.push(record);
        pos = end;
    }
    (records, pos)
}

/// Reads and recovers a journal file. A missing file recovers as empty
/// (`(vec![], 0)`); other filesystem errors propagate.
///
/// # Errors
///
/// Filesystem errors other than a missing file.
pub fn recover_file(path: &Path) -> io::Result<(Vec<JournalRecord>, u64)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let (records, valid_len) = recover(&bytes);
    Ok((records, valid_len as u64))
}

/// An open journal positioned for appending. Every append writes one
/// fully assembled record with a single `write(2)` and flushes, so a
/// crash tears at most the final record — which recovery then discards.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates (or truncates) a journal file and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = File::create(path)?;
        file.write_all(&header())?;
        file.flush()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Recovers `path` and reopens it for appending: the file is
    /// truncated back to the recovered valid prefix (discarding any torn
    /// tail record) — or recreated with a fresh header when nothing
    /// valid was recovered — and the journal is positioned at its end.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn resume(path: &Path) -> io::Result<(Vec<JournalRecord>, Journal)> {
        let (records, valid_len) = recover_file(path)?;
        if valid_len < HEADER_LEN as u64 {
            return Ok((records, Journal::create(path)?));
        }
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
        };
        use std::io::Seek;
        journal.file.seek(io::SeekFrom::End(0))?;
        Ok((records, journal))
    }

    /// Appends one record and flushes.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        self.file.write_all(&encode_record(record))?;
        self.file.flush()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A recovered plan journal, summarized: the plan, its trace level, the
/// deduplicated in-bounds completed runs, and the terminal phase if one
/// was journaled.
#[derive(Debug)]
pub struct RecoveredPlan {
    /// The journaled plan.
    pub plan: WorkPlan,
    /// The exact `plan_json` bytes the journal holds (for identity
    /// checks against a caller-provided plan).
    pub plan_json: String,
    /// Trace level name recorded at submission.
    pub trace_level: String,
    /// Completed runs: sorted by flat index, first record wins on
    /// duplicates, out-of-bounds indices dropped.
    pub completed: Vec<(usize, RunResult)>,
    /// Terminal phase name, if the plan finished before the crash.
    pub terminal: Option<String>,
}

impl RecoveredPlan {
    /// `true` when every run of the plan is journaled.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.plan.total_runs()
    }
}

/// Summarizes recovered records into a [`RecoveredPlan`]. Returns `None`
/// unless the first record is a [`JournalRecord::PlanSubmitted`] whose
/// plan deserializes. Run records that do not deserialize, duplicate an
/// earlier flat index, or point outside the plan are skipped — resume
/// simply re-executes those runs, and determinism keeps the output
/// identical.
pub fn summarize(records: &[JournalRecord]) -> Option<RecoveredPlan> {
    let Some(JournalRecord::PlanSubmitted {
        plan_json,
        trace_level,
    }) = records.first()
    else {
        return None;
    };
    let plan: WorkPlan = serde_json::from_str(plan_json).ok()?;
    let total = plan.total_runs();
    let mut completed: BTreeMap<usize, RunResult> = BTreeMap::new();
    let mut terminal = None;
    for record in &records[1..] {
        match record {
            JournalRecord::RunCompleted {
                flat_index,
                result_json,
            } => {
                let idx = *flat_index as usize;
                if idx < total && !completed.contains_key(&idx) {
                    if let Ok(result) = serde_json::from_str::<RunResult>(result_json) {
                        completed.insert(idx, result);
                    }
                }
            }
            JournalRecord::PlanTerminal { phase } => terminal = Some(phase.clone()),
            JournalRecord::PlanSubmitted { .. } => {}
        }
    }
    Some(RecoveredPlan {
        plan,
        plan_json: plan_json.clone(),
        trace_level: trace_level.clone(),
        completed: completed.into_iter().collect(),
        terminal,
    })
}

/// A live write-ahead journal for one executing plan: the engine-facing
/// [`RunSink`] that appends a [`JournalRecord::RunCompleted`] as each run
/// finishes (and, when a trace directory is configured, spools the run's
/// `.avtr` trace next to it) and the terminal record at the end.
///
/// Append failures are reported to stderr and swallowed: journaling is
/// best-effort durability, and a lost record only means the run is
/// re-executed on resume — determinism keeps the final output identical.
#[derive(Debug)]
pub struct PlanJournal {
    journal: parking_lot::Mutex<Journal>,
    trace_dir: Option<PathBuf>,
}

impl PlanJournal {
    /// Wraps an open journal; traces are spooled into `trace_dir` when
    /// given.
    pub fn new(journal: Journal, trace_dir: Option<PathBuf>) -> PlanJournal {
        PlanJournal {
            journal: parking_lot::Mutex::new(journal),
            trace_dir,
        }
    }

    fn append(&self, record: &JournalRecord) {
        let mut journal = self.journal.lock();
        if let Err(e) = journal.append(record) {
            eprintln!(
                "[avfi-store] journal append failed ({}): {e}",
                journal.path().display()
            );
        }
    }
}

impl RunSink for PlanJournal {
    fn run_completed(&self, flat_index: usize, result: &RunResult, trace: Option<&RunTrace>) {
        let result_json = serde_json::to_string(result).expect("run result serializes");
        self.append(&JournalRecord::RunCompleted {
            flat_index: flat_index as u64,
            result_json,
        });
        if let (Some(dir), Some(trace)) = (&self.trace_dir, trace) {
            if let Err(e) = avfi_trace::write_trace_file(dir, flat_index, trace) {
                eprintln!("[avfi-store] trace spool failed ({}): {e}", dir.display());
            }
        }
    }

    fn plan_terminal(&self, phase: &str) {
        self.append(&JournalRecord::PlanTerminal {
            phase: phase.to_string(),
        });
    }
}

/// Deterministic journal file name for a spooled plan: `plan-<id>.avj`.
pub fn journal_file_name(plan_id: u64) -> String {
    format!("plan-{plan_id}.{JOURNAL_EXT}")
}

/// Directory a spooled plan's traces land in: `plan-<id>/`.
pub fn trace_dir_name(plan_id: u64) -> String {
    format!("plan-{plan_id}")
}

/// Extracts the plan id from a `plan-<id>.avj` file name.
pub fn journal_plan_id(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    if path.extension()?.to_str()? != JOURNAL_EXT {
        return None;
    }
    stem.strip_prefix("plan-")?.parse().ok()
}

/// Lists the `plan-<id>.avj` journals in `dir`, sorted by plan id. A
/// missing directory lists as empty.
///
/// # Errors
///
/// Propagates filesystem errors other than a missing directory.
pub fn list_journals(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut journals: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| journal_plan_id(&p).map(|id| (id, p)))
        .collect();
    journals.sort_by_key(|(id, _)| *id);
    Ok(journals)
}

/// Checkpointed solo execution: runs `plan` through `engine`, journaling
/// every completed run into `dir` so an interrupted invocation resumes
/// where it stopped — and an already-finished one returns instantly from
/// the journal.
///
/// The journal file is named by the FNV fingerprint of the serialized
/// plan (`plan-<fnv hex>.avj`), so re-invoking with the same plan finds
/// its own checkpoint and a different plan never collides with it. The
/// final results are **byte-identical** to an uninterrupted
/// `engine.execute(plan)` for any worker count and any interruption
/// point.
///
/// # Errors
///
/// Filesystem errors, and `InvalidData` when the journal at the derived
/// path was written for a different plan (fingerprint collision).
pub fn run_spooled(
    engine: &Engine,
    plan: &WorkPlan,
    dir: &Path,
    trace_level: &str,
    sink: &dyn ProgressSink,
) -> io::Result<Vec<StudyResult>> {
    let plan_json = serde_json::to_string(plan).expect("plan serializes");
    let path = dir.join(format!(
        "plan-{:016x}.{JOURNAL_EXT}",
        avfi_trace::fingerprint(plan_json.as_bytes())
    ));
    let (records, mut journal) = Journal::resume(&path)?;
    let recovered = summarize(&records);
    if let Some(rec) = &recovered {
        if rec.plan_json != plan_json {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: journal belongs to a different plan", path.display()),
            ));
        }
        if rec.terminal.as_deref() == Some("completed") && rec.is_complete() {
            // Checkpoint hit: every run is journaled; assemble without
            // executing anything. Byte-identical by the resume argument.
            let runs: Vec<RunResult> = rec.completed.iter().map(|(_, r)| r.clone()).collect();
            return Ok(assemble_results(plan, runs));
        }
    }
    let prefilled = match recovered {
        // A terminal record without full coverage cannot happen through
        // the ordered append path; if the journal shows one anyway,
        // restart it cleanly (keeping the recovered runs as prefill).
        Some(rec) if rec.terminal.is_some() => {
            journal = Journal::create(&path)?;
            journal.append(&JournalRecord::PlanSubmitted {
                plan_json: plan_json.clone(),
                trace_level: trace_level.to_string(),
            })?;
            for (idx, result) in &rec.completed {
                journal.append(&JournalRecord::RunCompleted {
                    flat_index: *idx as u64,
                    result_json: serde_json::to_string(result).expect("run result serializes"),
                })?;
            }
            rec.completed
        }
        Some(rec) => rec.completed,
        None => {
            // Fresh (or unrecoverable) journal: restart from the header.
            journal = Journal::create(&path)?;
            journal.append(&JournalRecord::PlanSubmitted {
                plan_json: plan_json.clone(),
                trace_level: trace_level.to_string(),
            })?;
            Vec::new()
        }
    };
    let spool = PlanJournal::new(journal, None);
    Ok(engine.execute_resumed(plan, prefilled, sink, Some(&spool)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::PlanSubmitted {
                plan_json: "{\"studies\":[]}".into(),
                trace_level: "blackbox".into(),
            },
            JournalRecord::RunCompleted {
                flat_index: 0,
                result_json: "{\"x\":1}".into(),
            },
            JournalRecord::PlanTerminal {
                phase: "completed".into(),
            },
        ]
    }

    fn encode_all(records: &[JournalRecord]) -> Vec<u8> {
        let mut bytes = header().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn roundtrip_full_journal() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let (back, valid_len) = recover(&bytes);
        assert_eq!(back, records);
        assert_eq!(valid_len, bytes.len());
    }

    #[test]
    fn empty_and_garbage_recover_empty() {
        assert_eq!(recover(&[]), (Vec::new(), 0));
        assert_eq!(recover(b"AVTR\x01junk"), (Vec::new(), 0));
        assert_eq!(recover(&header()), (Vec::new(), HEADER_LEN));
        // Bad version.
        let mut h = header().to_vec();
        h[4] = 99;
        assert_eq!(recover(&h), (Vec::new(), 0));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let two = encode_all(&records[..2]);
        // Every truncation point strictly inside the third record must
        // recover exactly the first two.
        for cut in two.len()..bytes.len() {
            let (back, valid_len) = recover(&bytes[..cut]);
            assert_eq!(back, records[..2], "cut at {cut}");
            assert_eq!(valid_len, two.len(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_middle_record_drops_the_rest() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        let one = encode_all(&records[..1]);
        // Flip a payload byte of the second record.
        bytes[one.len() + 6] ^= 0x40;
        let (back, valid_len) = recover(&bytes);
        assert_eq!(back, records[..1]);
        assert_eq!(valid_len, one.len());
    }

    #[test]
    fn resume_truncates_torn_tail_and_appends() {
        let dir = std::env::temp_dir().join(format!("avfi-store-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("j.avj");
        let records = sample_records();
        {
            let mut j = Journal::create(&path).unwrap();
            for r in &records[..2] {
                j.append(r).unwrap();
            }
        }
        // Simulate a torn append: half of a third record.
        let torn = encode_record(&records[2]);
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&torn[..torn.len() / 2]).unwrap();
        }
        let (recovered, mut j) = Journal::resume(&path).unwrap();
        assert_eq!(recovered, records[..2]);
        j.append(&records[2]).unwrap();
        drop(j);
        let (finala, _) = recover_file(&path).unwrap();
        assert_eq!(finala, records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summarize_dedupes_and_bounds_checks() {
        let plan = WorkPlan::new();
        let plan_json = serde_json::to_string(&plan).unwrap();
        let records = vec![
            JournalRecord::PlanSubmitted {
                plan_json,
                trace_level: "off".into(),
            },
            // Out of bounds for an empty plan; must be dropped.
            JournalRecord::RunCompleted {
                flat_index: 5,
                result_json: "{}".into(),
            },
        ];
        let rec = summarize(&records).expect("plan summarizes");
        assert!(rec.completed.is_empty());
        assert!(rec.is_complete());
        assert!(rec.terminal.is_none());
        // No PlanSubmitted head → no summary.
        assert!(summarize(&records[1..]).is_none());
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn journal_names_roundtrip() {
        assert_eq!(journal_file_name(7), "plan-7.avj");
        assert_eq!(trace_dir_name(7), "plan-7");
        assert_eq!(journal_plan_id(Path::new("/spool/plan-42.avj")), Some(42));
        assert_eq!(journal_plan_id(Path::new("/spool/plan-42.avtr")), None);
        assert_eq!(journal_plan_id(Path::new("/spool/other.avj")), None);
    }
}
