//! Crash-injection property tests of the write-ahead journal: arbitrary
//! truncations (a crash mid-append) and arbitrary bit flips (media
//! corruption) must recover **exactly** the longest valid record prefix
//! — never a partial or altered record, never a panic.

use avfi_store::{encode_record, recover, JournalRecord, MAGIC, VERSION};
use proptest::prelude::*;

/// An arbitrary journal record with payload strings of varying length
/// (length variation moves the record boundaries around, which is what
/// the truncation property exercises).
fn arb_record() -> impl Strategy<Value = JournalRecord> {
    (0u8..3, 0u64..10_000, 0usize..40).prop_map(|(tag, n, pad)| {
        let padding = "x".repeat(pad);
        match tag {
            0 => JournalRecord::PlanSubmitted {
                plan_json: format!("{{\"studies\":[],\"pad\":\"{padding}\"}}"),
                trace_level: "blackbox".into(),
            },
            1 => JournalRecord::RunCompleted {
                flat_index: n,
                result_json: format!("{{\"run\":{n},\"pad\":\"{padding}\"}}"),
            },
            _ => JournalRecord::PlanTerminal {
                phase: "completed".into(),
            },
        }
    })
}

/// Encodes a full journal; returns the bytes and the cumulative byte
/// boundary after the header and after each record (`boundaries[k]` =
/// length of a journal holding exactly the first `k` records).
fn encode_journal(records: &[JournalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(VERSION);
    let mut boundaries = vec![bytes.len()];
    for record in records {
        bytes.extend_from_slice(&encode_record(record));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Number of whole records lying entirely before byte `pos`.
fn records_before(boundaries: &[usize], pos: usize) -> usize {
    boundaries.iter().filter(|&&b| b <= pos).count().max(1) - 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a journal at ANY byte offset (simulating a crash mid-
    /// append) recovers exactly the records whose bytes survived whole.
    #[test]
    fn truncation_recovers_exact_prefix(
        records in prop::collection::vec(arb_record(), 0..8),
        cut_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let (bytes, boundaries) = encode_journal(&records);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let (recovered, valid_len) = recover(&bytes[..cut]);
        if cut < boundaries[0] {
            // Not even the header survived.
            prop_assert_eq!(recovered.len(), 0);
            prop_assert_eq!(valid_len, 0);
        } else {
            let k = records_before(&boundaries, cut);
            prop_assert_eq!(&recovered[..], &records[..k]);
            prop_assert_eq!(valid_len, boundaries[k]);
        }
    }

    /// Flipping any single bit anywhere in the journal is detected: the
    /// records before the flipped byte survive, everything from the
    /// damaged record on is discarded, and nothing panics.
    #[test]
    fn bit_flip_recovers_exact_prefix(
        records in prop::collection::vec(arb_record(), 1..8),
        pos_seed in proptest::arbitrary::any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut bytes, boundaries) = encode_journal(&records);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let (recovered, valid_len) = recover(&bytes);
        if pos < boundaries[0] {
            // Header damage: the whole journal is rejected.
            prop_assert_eq!(recovered.len(), 0);
            prop_assert_eq!(valid_len, 0);
        } else {
            // Records lying entirely before the flipped byte survive.
            let k = records_before(&boundaries, pos);
            prop_assert_eq!(&recovered[..], &records[..k]);
            prop_assert_eq!(valid_len, boundaries[k]);
        }
    }

    /// Arbitrary garbage — headerless random bytes, or random bytes
    /// behind a valid header — never panics, and the reported valid
    /// prefix is a fixed point: recovering it again yields the same
    /// records and the same length.
    #[test]
    fn garbage_is_total_and_idempotent(
        noise in prop::collection::vec(proptest::arbitrary::any::<u8>(), 0..256),
        with_header in proptest::bool::ANY,
    ) {
        let mut bytes = Vec::new();
        if with_header {
            bytes.extend_from_slice(&MAGIC);
            bytes.push(VERSION);
        }
        bytes.extend_from_slice(&noise);
        let (recovered, valid_len) = recover(&bytes);
        prop_assert!(valid_len <= bytes.len());
        let (again, len_again) = recover(&bytes[..valid_len]);
        prop_assert_eq!(again, recovered);
        prop_assert_eq!(len_again, valid_len);
    }
}
