//! The resume contract, end to end: a plan interrupted at any point and
//! resumed with any worker count produces a final results JSON that is
//! **byte-identical** to an uninterrupted run. Also covers the
//! checkpointed solo path (`run_spooled`): fresh run, instant checkpoint
//! hit, and resume after a torn journal tail.

use avfi_core::campaign::{AgentSpec, CampaignConfig, RunResult};
use avfi_core::engine::NullSink;
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::{Engine, RunSink, WorkPlan};
use avfi_sim::scenario::{Scenario, TownSpec};
use std::path::PathBuf;

/// A plan with two studies and a fault sweep — enough flat indices (8)
/// that interruption points land inside, between, and across campaigns.
fn test_plan() -> WorkPlan {
    let scenario = |seed: u64| {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(10.0)
            .min_route_length(50.0)
            .build()
    };
    let campaign = |seed: u64, fault: FaultSpec| {
        CampaignConfig::builder(vec![scenario(seed), scenario(seed + 1)])
            .runs_per_scenario(2)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build()
    };
    WorkPlan::new()
        .with_study("baseline", vec![campaign(9000, FaultSpec::None)])
        .with_study(
            "output-delay",
            vec![campaign(
                9100,
                FaultSpec::Timing(TimingFault::OutputDelay { frames: 8 }),
            )],
        )
}

/// Captures every `(flat_index, RunResult)` the engine reports, so tests
/// can replay arbitrary prefixes/subsets as resume prefill.
#[derive(Default)]
struct CollectRuns(parking_lot::Mutex<Vec<(usize, RunResult)>>);

impl RunSink for CollectRuns {
    fn run_completed(
        &self,
        flat_index: usize,
        result: &RunResult,
        _trace: Option<&avfi_trace::RunTrace>,
    ) {
        self.0.lock().push((flat_index, result.clone()));
    }
}

fn results_json(results: &[avfi_core::StudyResult]) -> String {
    serde_json::to_string(results).expect("results serialize")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avfi-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");
    dir
}

/// Interrupt after every k-th run and resume with 1 and 3 workers: the
/// reassembled JSON must match the uninterrupted run byte for byte.
#[test]
fn resume_is_byte_identical_at_every_interruption_point() {
    let plan = test_plan();
    let engine = Engine::new().workers(2);
    let collector = CollectRuns::default();
    let solo = engine.execute_resumed(&plan, Vec::new(), &NullSink, Some(&collector));
    let solo_json = results_json(&solo);
    let runs = collector.0.into_inner();
    assert_eq!(runs.len(), plan.total_runs());

    for k in 0..=runs.len() {
        for workers in [1usize, 3] {
            let resumed = Engine::new().workers(workers).execute_resumed(
                &plan,
                runs[..k].to_vec(),
                &NullSink,
                None,
            );
            assert_eq!(
                results_json(&resumed),
                solo_json,
                "prefix {k}, {workers} workers"
            );
        }
    }
}

/// Resume prefill need not be a prefix: scattered subsets, duplicates,
/// and out-of-range indices all reassemble to the identical bytes.
#[test]
fn resume_tolerates_arbitrary_prefill_subsets() {
    let plan = test_plan();
    let engine = Engine::new().workers(3);
    let collector = CollectRuns::default();
    let solo_json =
        results_json(&engine.execute_resumed(&plan, Vec::new(), &NullSink, Some(&collector)));
    let runs = collector.0.into_inner();

    let scattered: Vec<(usize, RunResult)> =
        runs.iter().filter(|(i, _)| i % 3 == 1).cloned().collect();
    let mut with_junk = scattered.clone();
    // A duplicate of an already-prefilled index and an out-of-range
    // index must both be ignored (first entry wins, bounds checked).
    with_junk.push(scattered[0].clone());
    with_junk.push((plan.total_runs() + 40, runs[0].1.clone()));

    for prefill in [scattered, with_junk] {
        let resumed = engine.execute_resumed(&plan, prefill, &NullSink, None);
        assert_eq!(results_json(&resumed), solo_json);
    }
}

/// `run_spooled` writes a checkpoint on first execution; a second
/// invocation with the same plan assembles from the journal without
/// executing anything, byte-identical.
#[test]
fn run_spooled_checkpoint_round_trip() {
    let plan = test_plan();
    let engine = Engine::new().workers(2);
    let dir = fresh_dir("checkpoint");
    let solo_json = results_json(&engine.execute(&plan));

    let first = avfi_store::run_spooled(&engine, &plan, &dir, "off", &NullSink).expect("spooled");
    assert_eq!(results_json(&first), solo_json);

    // Fast path: the journal is terminal and complete.
    let again = avfi_store::run_spooled(&engine, &plan, &dir, "off", &NullSink).expect("replay");
    assert_eq!(results_json(&again), solo_json);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash mid-plan leaves a journal with some runs and a torn tail;
/// re-invoking `run_spooled` discards the tail, re-executes only the
/// missing runs, and still emits identical bytes.
#[test]
fn run_spooled_resumes_after_torn_journal() {
    let plan = test_plan();
    let engine = Engine::new().workers(2);
    let dir = fresh_dir("torn");
    let solo_json = results_json(&engine.execute(&plan));

    // Hand-write the crashed journal at run_spooled's derived path: the
    // submission record, three completed runs, then a torn half-record.
    let plan_json = serde_json::to_string(&plan).expect("plan serializes");
    let path = dir.join(format!(
        "plan-{:016x}.avj",
        avfi_trace::fingerprint(plan_json.as_bytes())
    ));
    let collector = CollectRuns::default();
    engine.execute_resumed(&plan, Vec::new(), &NullSink, Some(&collector));
    let runs = collector.0.into_inner();
    let mut journal = avfi_store::Journal::create(&path).expect("create journal");
    journal
        .append(&avfi_store::JournalRecord::PlanSubmitted {
            plan_json,
            trace_level: "off".into(),
        })
        .expect("append submission");
    for (idx, result) in &runs[..3] {
        journal
            .append(&avfi_store::JournalRecord::RunCompleted {
                flat_index: *idx as u64,
                result_json: serde_json::to_string(result).expect("result serializes"),
            })
            .expect("append run");
    }
    drop(journal);
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("reopen journal");
        // A length prefix promising more bytes than follow: the torn
        // tail a crash mid-append leaves behind.
        file.write_all(&[0xFF, 0x00, 0x00, 0x00, b'{', b'"'])
            .expect("write torn tail");
    }

    let resumed = avfi_store::run_spooled(&engine, &plan, &dir, "off", &NullSink).expect("resume");
    assert_eq!(results_json(&resumed), solo_json);

    // The resumed invocation completed the journal: the next one is a
    // pure checkpoint hit, still identical.
    let replay = avfi_store::run_spooled(&engine, &plan, &dir, "off", &NullSink).expect("replay");
    assert_eq!(results_json(&replay), solo_json);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal written for a different plan at the same path is refused,
/// not silently merged.
#[test]
fn run_spooled_refuses_foreign_journal() {
    let plan = test_plan();
    let engine = Engine::new().workers(1);
    let dir = fresh_dir("foreign");
    let plan_json = serde_json::to_string(&plan).expect("plan serializes");
    let path = dir.join(format!(
        "plan-{:016x}.avj",
        avfi_trace::fingerprint(plan_json.as_bytes())
    ));
    let mut journal = avfi_store::Journal::create(&path).expect("create journal");
    journal
        .append(&avfi_store::JournalRecord::PlanSubmitted {
            plan_json: "{\"studies\":[]}".into(),
            trace_level: "off".into(),
        })
        .expect("append submission");
    drop(journal);

    let err = avfi_store::run_spooled(&engine, &plan, &dir, "off", &NullSink)
        .expect_err("foreign journal must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}
