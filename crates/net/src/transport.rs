//! Message transports: in-process channels and localhost TCP.

use crate::codec;
use crate::error::NetError;
use crate::message::Message;
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// A bidirectional, blocking message pipe.
///
/// Implementations must be usable from one thread at a time; the lockstep
/// protocol never needs concurrent send/recv on one endpoint.
pub trait Transport {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer is gone, or an I/O /
    /// codec error for socket transports.
    fn send(&mut self, msg: Message) -> Result<(), NetError>;

    /// Sends one message and hands it back when the transport merely
    /// serialized it (socket transports) rather than transferring ownership
    /// (channel transports). Hot loops use the returned message to reuse
    /// large payload buffers (e.g. observation frames) across cycles.
    ///
    /// The default implementation forwards to [`Transport::send`] and
    /// returns `None`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Transport::send`].
    fn send_reclaim(&mut self, msg: Message) -> Result<Option<Message>, NetError> {
        self.send(msg)?;
        Ok(None)
    }

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer is gone.
    fn recv(&mut self) -> Result<Message, NetError>;
}

/// In-process transport endpoint backed by crossbeam channels — the fast
/// path used by campaign runners (no serialization).
#[derive(Debug)]
pub struct InProcTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

impl InProcTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (InProcTransport, InProcTransport) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            InProcTransport { tx: atx, rx: brx },
            InProcTransport { tx: btx, rx: arx },
        )
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        self.tx.send(msg).map_err(|_| NetError::Disconnected)
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }
}

/// TCP transport endpoint: length-prefixed frames over a socket, the
/// faithful reproduction of CARLA's client/server link.
///
/// Generic over the byte stream so tests can inject fault-carrying
/// `Read`/`Write` impls; production code uses the [`TcpStream`] default.
/// Besides the lockstep [`Transport`] impl it frames *any* serde value
/// via [`TcpTransport::send_value`] / [`TcpTransport::recv_value`] — the
/// campaign service's request/reply enums ride the same wire format.
#[derive(Debug)]
pub struct TcpTransport<S = TcpStream> {
    stream: S,
    inbox: BytesMut,
    outbox: BytesMut,
}

impl TcpTransport<TcpStream> {
    /// Wraps a connected stream.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `TCP_NODELAY` cannot be set (lockstep
    /// latency would otherwise be dominated by Nagle's algorithm).
    pub fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport::from_stream(stream))
    }

    /// Connects to a listening server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl<S: Read + Write> TcpTransport<S> {
    /// Wraps any byte stream without socket-specific setup (used by tests
    /// to inject fault-carrying streams).
    pub fn from_stream(stream: S) -> Self {
        TcpTransport {
            stream,
            inbox: BytesMut::with_capacity(64 * 1024),
            outbox: BytesMut::with_capacity(64 * 1024),
        }
    }

    /// Frames and sends one serde value.
    ///
    /// `ErrorKind::Interrupted` (EINTR — a signal landing during the
    /// blocking write) is retried: it means "nothing happened", never
    /// "the connection broke", so propagating it would kill a healthy
    /// connection mid-frame and desync the peer.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] for unserializable or oversized payloads
    /// (nothing is written), [`NetError::Disconnected`] when the peer is
    /// gone, [`NetError::Io`] for other socket failures.
    pub fn send_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), NetError> {
        self.outbox.clear();
        codec::encode_value(value, &mut self.outbox)?;
        let mut rest: &[u8] = &self.outbox;
        while !rest.is_empty() {
            match self.stream.write(rest) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => rest = &rest[n..],
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Receives and decodes the next framed serde value, blocking until a
    /// complete frame arrives.
    ///
    /// Like [`TcpTransport::send_value`], `ErrorKind::Interrupted` reads
    /// are retried instead of propagated.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] on EOF or peer hangup,
    /// [`NetError::Codec`] on malformed frames, [`NetError::Io`] for
    /// other socket failures.
    pub fn recv_value<T: Deserialize>(&mut self) -> Result<T, NetError> {
        loop {
            if let Some(msg) = codec::decode_value(&mut self.inbox)? {
                return Ok(msg);
            }
            // Read straight into the accumulation buffer: `read` fills
            // `inbox`'s own tail, so bytes land exactly where `decode`
            // consumes them — no intermediate stack chunk and no second
            // copy on the wire path. When a length prefix is already
            // buffered, size the read window to the rest of that frame so
            // one syscall typically completes it.
            let filled = self.inbox.len();
            let want = codec::pending_frame_len(&self.inbox)
                .map_or(READ_CHUNK, |total| (total - filled).max(READ_CHUNK));
            self.inbox.resize(filled + want, 0);
            let n = loop {
                match self.stream.read(&mut self.inbox[filled..]) {
                    Ok(n) => break n,
                    // EINTR mid-frame: the read transferred nothing and
                    // the connection is fine — retry with the same window.
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => {
                        // Restore the buffer to exactly the received bytes
                        // before propagating, or decode would see garbage
                        // next call.
                        self.inbox.truncate(filled);
                        return Err(e.into());
                    }
                }
            };
            self.inbox.truncate(filled + n);
            if n == 0 {
                return Err(NetError::Disconnected);
            }
        }
    }
}

impl<S: Read + Write> Transport for TcpTransport<S> {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        self.send_value(&msg)
    }

    fn send_reclaim(&mut self, msg: Message) -> Result<Option<Message>, NetError> {
        self.send_value(&msg)?;
        Ok(Some(msg))
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.recv_value()
    }
}

/// Read-window granularity for [`TcpTransport::recv_value`].
const READ_CHUNK: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::physics::VehicleControl;
    use std::io;
    use std::net::TcpListener;
    use std::thread;

    fn ctrl(frame: u64) -> Message {
        Message::Control {
            frame,
            control: VehicleControl::new(0.1, 0.9, 0.0),
        }
    }

    #[test]
    fn inproc_roundtrip() {
        let (mut a, mut b) = InProcTransport::pair();
        a.send(ctrl(1)).unwrap();
        assert_eq!(b.recv().unwrap(), ctrl(1));
        b.send(Message::Shutdown).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Shutdown);
    }

    #[test]
    fn inproc_disconnect_detected() {
        let (mut a, b) = InProcTransport::pair();
        drop(b);
        assert!(matches!(a.send(ctrl(1)), Err(NetError::Disconnected)));
        assert!(matches!(a.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn tcp_roundtrip_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            // Echo 10 messages back.
            for _ in 0..10 {
                let m = t.recv().unwrap();
                t.send(m).unwrap();
            }
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        for i in 0..10 {
            c.send(ctrl(i)).unwrap();
            assert_eq!(c.recv().unwrap(), ctrl(i));
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_large_observation_frame_roundtrip() {
        // Observation frames exceed one read window, so this exercises the
        // direct-into-inbox accumulation across several reads.
        use avfi_sim::scenario::{Scenario, TownSpec};
        use avfi_sim::world::World;
        let mut w = World::from_scenario(&Scenario::builder(TownSpec::grid(2, 2)).seed(3).build());
        let msg = Message::Observation(Box::new(w.observe()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            for _ in 0..3 {
                let m = t.recv().unwrap();
                t.send(m).unwrap();
            }
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        for _ in 0..3 {
            c.send(msg.clone()).unwrap();
            assert_eq!(c.recv().unwrap(), msg);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_disconnect_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        server.join().unwrap();
        assert!(matches!(c.recv(), Err(NetError::Disconnected)));
    }

    /// A stream that interrupts: every other `read` / `write` call fails
    /// with `ErrorKind::Interrupted` (EINTR), and the calls that do
    /// succeed move a single byte — the worst-case signal storm.
    struct InterruptingStream {
        /// Bytes served to `read`.
        incoming: Vec<u8>,
        read_pos: usize,
        /// Bytes accepted from `write`.
        written: Vec<u8>,
        ops: usize,
        reads_interrupted: usize,
        writes_interrupted: usize,
    }

    impl InterruptingStream {
        fn serving(incoming: Vec<u8>) -> Self {
            InterruptingStream {
                incoming,
                read_pos: 0,
                written: Vec::new(),
                ops: 0,
                reads_interrupted: 0,
                writes_interrupted: 0,
            }
        }
    }

    impl Read for InterruptingStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.ops += 1;
            if self.ops % 2 == 1 {
                self.reads_interrupted += 1;
                return Err(io::Error::new(ErrorKind::Interrupted, "EINTR"));
            }
            if self.read_pos >= self.incoming.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.incoming[self.read_pos];
            self.read_pos += 1;
            Ok(1)
        }
    }

    impl Write for InterruptingStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.ops += 1;
            if self.ops % 2 == 1 {
                self.writes_interrupted += 1;
                return Err(io::Error::new(ErrorKind::Interrupted, "EINTR"));
            }
            if buf.is_empty() {
                return Ok(0);
            }
            self.written.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Regression (EINTR retry, recv path): a signal landing mid-frame
    /// must not kill a healthy connection — every interrupted read is
    /// retried until the frame completes.
    #[test]
    fn recv_retries_interrupted_reads_mid_frame() {
        let mut wire = BytesMut::new();
        codec::encode(&ctrl(99), &mut wire).unwrap();
        let mut t = TcpTransport::from_stream(InterruptingStream::serving(wire.to_vec()));
        assert_eq!(t.recv().unwrap(), ctrl(99));
        assert!(
            t.stream.reads_interrupted >= wire.len(),
            "every other read was an EINTR ({} interrupts for {} bytes)",
            t.stream.reads_interrupted,
            wire.len()
        );
        // The connection stays usable: EOF after the frame is a clean
        // disconnect, not a mid-frame failure.
        assert!(matches!(t.recv(), Err(NetError::Disconnected)));
    }

    /// Regression (EINTR retry, send path): interrupted writes are
    /// retried and the emitted frame is byte-perfect despite the storm.
    #[test]
    fn send_retries_interrupted_writes_mid_frame() {
        let mut t = TcpTransport::from_stream(InterruptingStream::serving(Vec::new()));
        t.send(ctrl(7)).unwrap();
        let mut expected = BytesMut::new();
        codec::encode(&ctrl(7), &mut expected).unwrap();
        assert_eq!(t.stream.written, expected.to_vec());
        assert!(t.stream.writes_interrupted >= expected.len());
    }

    /// Non-EINTR errors still propagate from the value paths.
    struct FailingStream(ErrorKind);

    impl Read for FailingStream {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::new(self.0, "injected"))
        }
    }

    impl Write for FailingStream {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(self.0, "injected"))
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn hard_errors_are_not_retried() {
        let mut t = TcpTransport::from_stream(FailingStream(ErrorKind::PermissionDenied));
        assert!(matches!(t.recv(), Err(NetError::Io(_))));
        assert!(matches!(t.send(ctrl(1)), Err(NetError::Io(_))));
        // Abortive hangup kinds surface as the routine Disconnected signal.
        let mut t = TcpTransport::from_stream(FailingStream(ErrorKind::ConnectionReset));
        assert!(matches!(t.recv(), Err(NetError::Disconnected)));
        assert!(matches!(t.send(ctrl(1)), Err(NetError::Disconnected)));
    }

    #[test]
    fn generic_values_roundtrip_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            let v: Vec<u64> = t.recv_value().unwrap();
            t.send_value(&v.iter().sum::<u64>()).unwrap();
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        c.send_value(&vec![1u64, 2, 3]).unwrap();
        let sum: u64 = c.recv_value().unwrap();
        assert_eq!(sum, 6);
        server.join().unwrap();
    }
}
