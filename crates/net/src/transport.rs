//! Message transports: in-process channels and localhost TCP.

use crate::codec;
use crate::error::NetError;
use crate::message::Message;
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::io::{Read, Write};
use std::net::TcpStream;

/// A bidirectional, blocking message pipe.
///
/// Implementations must be usable from one thread at a time; the lockstep
/// protocol never needs concurrent send/recv on one endpoint.
pub trait Transport {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer is gone, or an I/O /
    /// codec error for socket transports.
    fn send(&mut self, msg: Message) -> Result<(), NetError>;

    /// Sends one message and hands it back when the transport merely
    /// serialized it (socket transports) rather than transferring ownership
    /// (channel transports). Hot loops use the returned message to reuse
    /// large payload buffers (e.g. observation frames) across cycles.
    ///
    /// The default implementation forwards to [`Transport::send`] and
    /// returns `None`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Transport::send`].
    fn send_reclaim(&mut self, msg: Message) -> Result<Option<Message>, NetError> {
        self.send(msg)?;
        Ok(None)
    }

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Disconnected`] if the peer is gone.
    fn recv(&mut self) -> Result<Message, NetError>;
}

/// In-process transport endpoint backed by crossbeam channels — the fast
/// path used by campaign runners (no serialization).
#[derive(Debug)]
pub struct InProcTransport {
    tx: Sender<Message>,
    rx: Receiver<Message>,
}

impl InProcTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (InProcTransport, InProcTransport) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            InProcTransport { tx: atx, rx: brx },
            InProcTransport { tx: btx, rx: arx },
        )
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        self.tx.send(msg).map_err(|_| NetError::Disconnected)
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }
}

/// TCP transport endpoint: length-prefixed frames over a socket, the
/// faithful reproduction of CARLA's client/server link.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    inbox: BytesMut,
    outbox: BytesMut,
}

impl TcpTransport {
    /// Wraps a connected stream.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `TCP_NODELAY` cannot be set (lockstep
    /// latency would otherwise be dominated by Nagle's algorithm).
    pub fn new(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            inbox: BytesMut::with_capacity(64 * 1024),
            outbox: BytesMut::with_capacity(64 * 1024),
        })
    }

    /// Connects to a listening server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: Message) -> Result<(), NetError> {
        self.send_reclaim(msg).map(|_| ())
    }

    fn send_reclaim(&mut self, msg: Message) -> Result<Option<Message>, NetError> {
        self.outbox.clear();
        codec::encode(&msg, &mut self.outbox)?;
        self.stream.write_all(&self.outbox)?;
        Ok(Some(msg))
    }

    fn recv(&mut self) -> Result<Message, NetError> {
        loop {
            if let Some(msg) = codec::decode(&mut self.inbox)? {
                return Ok(msg);
            }
            // Read straight into the accumulation buffer: `read` fills
            // `inbox`'s own tail, so bytes land exactly where `decode`
            // consumes them — no intermediate stack chunk and no second
            // copy on the wire path. When a length prefix is already
            // buffered, size the read window to the rest of that frame so
            // one syscall typically completes it.
            let filled = self.inbox.len();
            let want = codec::pending_frame_len(&self.inbox)
                .map_or(READ_CHUNK, |total| (total - filled).max(READ_CHUNK));
            self.inbox.resize(filled + want, 0);
            let n = self.stream.read(&mut self.inbox[filled..]);
            // Restore the buffer to exactly the received bytes before
            // propagating any error, or decode would see garbage next call.
            self.inbox.truncate(filled + n.as_ref().map_or(0, |&n| n));
            if n? == 0 {
                return Err(NetError::Disconnected);
            }
        }
    }
}

/// Read-window granularity for [`TcpTransport::recv`].
const READ_CHUNK: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::physics::VehicleControl;
    use std::net::TcpListener;
    use std::thread;

    fn ctrl(frame: u64) -> Message {
        Message::Control {
            frame,
            control: VehicleControl::new(0.1, 0.9, 0.0),
        }
    }

    #[test]
    fn inproc_roundtrip() {
        let (mut a, mut b) = InProcTransport::pair();
        a.send(ctrl(1)).unwrap();
        assert_eq!(b.recv().unwrap(), ctrl(1));
        b.send(Message::Shutdown).unwrap();
        assert_eq!(a.recv().unwrap(), Message::Shutdown);
    }

    #[test]
    fn inproc_disconnect_detected() {
        let (mut a, b) = InProcTransport::pair();
        drop(b);
        assert!(matches!(a.send(ctrl(1)), Err(NetError::Disconnected)));
        assert!(matches!(a.recv(), Err(NetError::Disconnected)));
    }

    #[test]
    fn tcp_roundtrip_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            // Echo 10 messages back.
            for _ in 0..10 {
                let m = t.recv().unwrap();
                t.send(m).unwrap();
            }
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        for i in 0..10 {
            c.send(ctrl(i)).unwrap();
            assert_eq!(c.recv().unwrap(), ctrl(i));
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_large_observation_frame_roundtrip() {
        // Observation frames exceed one read window, so this exercises the
        // direct-into-inbox accumulation across several reads.
        use avfi_sim::scenario::{Scenario, TownSpec};
        use avfi_sim::world::World;
        let mut w = World::from_scenario(&Scenario::builder(TownSpec::grid(2, 2)).seed(3).build());
        let msg = Message::Observation(Box::new(w.observe()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            for _ in 0..3 {
                let m = t.recv().unwrap();
                t.send(m).unwrap();
            }
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        for _ in 0..3 {
            c.send(msg.clone()).unwrap();
            assert_eq!(c.recv().unwrap(), msg);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_disconnect_detected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        server.join().unwrap();
        assert!(matches!(c.recv(), Err(NetError::Disconnected)));
    }
}
