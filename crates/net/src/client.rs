//! The agent client: receives observations, answers with controls.

use crate::error::NetError;
use crate::message::Message;
use crate::transport::Transport;
use avfi_sim::physics::VehicleControl;
use avfi_sim::world::WorldObservation;

/// The agent-side endpoint of the lockstep protocol.
///
/// A typical client loop:
///
/// ```no_run
/// # use avfi_net::{SimClient, TcpTransport};
/// # use avfi_sim::physics::VehicleControl;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let transport = TcpTransport::connect("127.0.0.1:2000")?;
/// let mut client = SimClient::new(transport);
/// while let Some(obs) = client.recv_observation()? {
///     let control = VehicleControl::new(0.0, 0.5, 0.0); // your ADA here
///     client.send_control(obs.sensors.frame, control)?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SimClient<T> {
    transport: T,
}

impl<T: Transport> SimClient<T> {
    /// Creates a client over a transport endpoint.
    pub fn new(transport: T) -> Self {
        SimClient { transport }
    }

    /// Waits for the next observation. Returns `None` on an orderly
    /// `Shutdown` from the server.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; a `Control` message from the server
    /// is a protocol error.
    pub fn recv_observation(&mut self) -> Result<Option<WorldObservation>, NetError> {
        match self.transport.recv()? {
            Message::Observation(obs) => Ok(Some(*obs)),
            Message::Shutdown => Ok(None),
            other => Err(NetError::Protocol(format!(
                "unexpected {} from server",
                other.kind()
            ))),
        }
    }

    /// Sends the actuation command answering frame `frame`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_control(&mut self, frame: u64, control: VehicleControl) -> Result<(), NetError> {
        self.transport.send(Message::Control { frame, control })
    }

    /// Ends the session.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        self.transport.send(Message::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SimServer;
    use crate::transport::{InProcTransport, TcpTransport};
    use avfi_sim::scenario::{Scenario, TownSpec};
    use avfi_sim::world::{MissionStatus, World};
    use std::net::TcpListener;
    use std::thread;

    fn world(budget: f64) -> World {
        let s = Scenario::builder(TownSpec::grid(2, 2))
            .seed(2)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(budget)
            .build();
        World::from_scenario(&s)
    }

    #[test]
    fn full_loop_in_process() {
        let (server_end, client_end) = InProcTransport::pair();
        let mut server = SimServer::new(world(2.0), server_end);
        let handle = thread::spawn(move || server.serve_mission().unwrap());
        let mut client = SimClient::new(client_end);
        let mut seen = 0;
        while let Some(obs) = client.recv_observation().unwrap() {
            client
                .send_control(obs.sensors.frame, VehicleControl::new(0.0, 0.5, 0.0))
                .unwrap();
            seen += 1;
        }
        assert_eq!(handle.join().unwrap(), MissionStatus::Timeout);
        assert_eq!(seen, 30);
    }

    #[test]
    fn full_loop_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server_thread = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let transport = TcpTransport::new(stream).unwrap();
            let mut server = SimServer::new(world(1.0), transport);
            server.serve_mission().unwrap()
        });
        let mut client = SimClient::new(TcpTransport::connect(&addr.to_string()).unwrap());
        let mut seen = 0;
        while let Some(obs) = client.recv_observation().unwrap() {
            client
                .send_control(obs.sensors.frame, VehicleControl::coast())
                .unwrap();
            seen += 1;
        }
        assert_eq!(server_thread.join().unwrap(), MissionStatus::Timeout);
        assert_eq!(seen, 15);
    }

    #[test]
    fn early_shutdown_from_client() {
        let (server_end, client_end) = InProcTransport::pair();
        let mut server = SimServer::new(world(100.0), server_end);
        let handle = thread::spawn(move || server.serve_mission().unwrap());
        let mut client = SimClient::new(client_end);
        let obs = client.recv_observation().unwrap().unwrap();
        assert_eq!(obs.sensors.frame, 0);
        client.shutdown().unwrap();
        assert_eq!(handle.join().unwrap(), MissionStatus::Running);
    }
}
