//! Frame clock: lockstep frame accounting with optional real-time pacing.

use std::time::{Duration, Instant};

/// Tracks frame numbers and (optionally) paces a loop to a fixed frame
/// rate.
///
/// In lockstep simulation the clock is purely virtual — `tick` just counts.
/// With pacing enabled (demo/replay mode) `tick` sleeps so that frames are
/// emitted at the configured rate in wall-clock time.
#[derive(Debug)]
pub struct FrameClock {
    fps: u32,
    frame: u64,
    pacing: bool,
    started: Instant,
}

impl FrameClock {
    /// Creates a virtual (non-pacing) clock.
    ///
    /// # Panics
    ///
    /// Panics if `fps == 0`.
    pub fn new(fps: u32) -> Self {
        assert!(fps > 0, "fps must be non-zero");
        FrameClock {
            fps,
            frame: 0,
            pacing: false,
            started: Instant::now(),
        }
    }

    /// Creates a clock that sleeps in `tick` to hold `fps` in wall time.
    pub fn with_pacing(fps: u32) -> Self {
        let mut c = Self::new(fps);
        c.pacing = true;
        c
    }

    /// Configured frame rate.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Frames ticked so far.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Virtual time corresponding to the current frame, seconds.
    pub fn virtual_time(&self) -> f64 {
        self.frame as f64 / self.fps as f64
    }

    /// Advances one frame, sleeping when pacing is enabled.
    pub fn tick(&mut self) {
        self.frame += 1;
        if self.pacing {
            let target = self.started + Duration::from_secs_f64(self.virtual_time());
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_counts() {
        let mut c = FrameClock::new(15);
        for _ in 0..30 {
            c.tick();
        }
        assert_eq!(c.frame(), 30);
        assert!((c.virtual_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pacing_holds_rate() {
        let mut c = FrameClock::with_pacing(200);
        let t0 = Instant::now();
        for _ in 0..20 {
            c.tick();
        }
        let elapsed = t0.elapsed().as_secs_f64();
        // 20 frames at 200 fps = 100 ms; allow generous slack for CI.
        assert!(elapsed >= 0.09, "elapsed={elapsed}");
        assert!(elapsed < 1.0, "elapsed={elapsed}");
    }

    #[test]
    #[should_panic(expected = "fps")]
    fn zero_fps_rejected() {
        let _ = FrameClock::new(0);
    }
}
