//! # avfi-net — the sensor–compute–actuate loop
//!
//! CARLA "operates by running two components, the server and the client.
//! The server is responsible for generating the virtual urban environments,
//! and the client functions as an ADA \[autonomous driving agent\]. The
//! server sends sensor data, along with other measurements of the car, to
//! the client; \[the client's\] decisions are then sent from the client to
//! the server, which applies those commands to the AV's actuators."
//!
//! This crate reproduces that loop in lockstep (CARLA synchronous mode) at
//! 15 FPS:
//!
//! * [`message::Message`] — the protocol: observation frames down,
//!   control commands up,
//! * [`codec`] — length-prefixed framing (built on [`bytes`]),
//! * [`transport`] — an in-process channel transport (crossbeam) and a
//!   real localhost TCP transport,
//! * [`server::SimServer`] / [`client::SimClient`] — the two endpoints,
//! * [`clock::FrameClock`] — frame accounting and optional real-time
//!   pacing,
//! * [`proto`] — the campaign-service protocol (`avfi-server` /
//!   `avfi-client`): plan submission, progress streaming, cancellation,
//!   and result retrieval as framed request/reply messages.
//!
//! AVFI's *timing faults* target exactly this seam ("delays in flow of
//! data from one component of the AV system to another"); the fault
//! injectors in `avfi-core` wrap the command and observation streams these
//! types carry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod clock;
pub mod codec;
pub mod error;
pub mod message;
pub mod proto;
pub mod server;
pub mod transport;

pub use client::SimClient;
pub use error::NetError;
pub use message::Message;
pub use proto::{PlanId, PlanLifecycle, PlanPhase, ServiceReply, ServiceRequest};
pub use server::SimServer;
pub use transport::{InProcTransport, TcpTransport, Transport};
