//! Campaign-service wire protocol: fault injection as a service.
//!
//! The lockstep [`Message`](crate::message::Message) protocol drives one
//! mission; this module defines the *campaign* protocol a persistent
//! `avfi-server` daemon speaks with many concurrent clients. Clients
//! submit serialized work plans, watch per-plan progress streams, cancel
//! plans, and retrieve results and traces by plan id — all as
//! length-prefixed frames over the same [`codec`](crate::codec) framing
//! (via [`TcpTransport::send_value`](crate::transport::TcpTransport::send_value) /
//! [`recv_value`](crate::transport::TcpTransport::recv_value)).
//!
//! ## Layering
//!
//! `avfi-net` sits *below* `avfi-core`, so plan, progress-event, result
//! and trace payloads cross this protocol as **opaque JSON strings**
//! (`plan_json`, `event_json`, …). The server and client crates own the
//! concrete types (`WorkPlan`, `ProgressEvent`, `StudyResult`,
//! `RunTrace`) and serialize them with the same `serde_json` the codec
//! uses, so a retrieved results payload is byte-identical to a local
//! serialization of the same value — the property the service's
//! determinism gate diffs on.
//!
//! ## Conversation shape
//!
//! One connection carries a sequence of request/reply exchanges. Every
//! request gets exactly one reply, except [`ServiceRequest::Watch`],
//! which streams [`ServiceReply::Event`] frames until the plan reaches a
//! terminal phase and then closes the exchange with
//! [`ServiceReply::WatchEnd`].

use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Server-assigned identifier of one submitted plan.
pub type PlanId = u64;

/// One client → server request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Shared-secret authentication hello. When the daemon runs with an
    /// auth token, this must be the first frame on every connection;
    /// any other first frame — or a wrong token — is answered with
    /// [`ServiceReply::Error`] and the connection is closed. A daemon
    /// without a token accepts (and ignores) hellos.
    Hello {
        /// The shared secret.
        token: String,
    },
    /// Submit a serialized `WorkPlan` for execution.
    SubmitPlan {
        /// JSON-serialized `avfi_core::engine::WorkPlan`.
        plan_json: String,
        /// Flight-recorder level for the plan's runs
        /// (`"off"`, `"summary"`, or `"blackbox"`).
        trace_level: String,
    },
    /// Stream progress events for a plan, starting at event `from_event`
    /// (0 replays the full history), until the plan is terminal.
    Watch {
        /// The plan to watch.
        plan: PlanId,
        /// First event sequence number to deliver.
        from_event: usize,
    },
    /// Retrieve a plan's results, blocking until the plan is terminal.
    Results {
        /// The plan to read.
        plan: PlanId,
    },
    /// Retrieve the traces a plan's runs emitted, blocking until the
    /// plan is terminal.
    Traces {
        /// The plan to read.
        plan: PlanId,
    },
    /// Cancel a plan: unstarted runs are dropped, in-flight runs finish.
    Cancel {
        /// The plan to cancel.
        plan: PlanId,
    },
    /// Resume an interrupted plan recovered from the daemon's spool:
    /// journaled runs are reloaded, only the unjournaled gap re-executes,
    /// and the final results are byte-identical to an uninterrupted run.
    /// Idempotent — resuming a plan that is already running or terminal
    /// just reports its current state.
    Resume {
        /// The plan to resume.
        plan: PlanId,
    },
    /// Query a plan's lifecycle phase and completion counters.
    Status {
        /// The plan to query.
        plan: PlanId,
    },
    /// Ask the daemon to shut down cleanly.
    Shutdown,
}

impl ServiceRequest {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceRequest::Hello { .. } => "hello",
            ServiceRequest::SubmitPlan { .. } => "submit-plan",
            ServiceRequest::Watch { .. } => "watch",
            ServiceRequest::Results { .. } => "results",
            ServiceRequest::Traces { .. } => "traces",
            ServiceRequest::Cancel { .. } => "cancel",
            ServiceRequest::Resume { .. } => "resume",
            ServiceRequest::Status { .. } => "status",
            ServiceRequest::Shutdown => "shutdown",
        }
    }
}

/// One server → client reply frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceReply {
    /// Acknowledges a [`ServiceRequest::Hello`]: the connection is
    /// authenticated and regular requests are accepted.
    HelloOk,
    /// A plan was accepted and queued.
    Submitted {
        /// Server-assigned plan id.
        plan: PlanId,
        /// Total runs the plan flattens to.
        total_runs: usize,
    },
    /// One progress event of a watched plan.
    Event {
        /// The watched plan.
        plan: PlanId,
        /// Sequence number of this event within the plan's stream.
        seq: usize,
        /// JSON-serialized `avfi_core::engine::ProgressEvent`.
        event_json: String,
    },
    /// A watch stream ended because the plan reached a terminal phase.
    WatchEnd {
        /// The watched plan.
        plan: PlanId,
        /// The terminal phase.
        phase: PlanPhase,
    },
    /// A plan's results.
    Results {
        /// The plan.
        plan: PlanId,
        /// JSON-serialized `Vec<avfi_core::engine::StudyResult>`.
        results_json: String,
    },
    /// A plan's collected traces.
    Traces {
        /// The plan.
        plan: PlanId,
        /// JSON-serialized `Vec<(usize, avfi_trace::RunTrace)>`, keyed
        /// by flat plan index and sorted by it.
        traces_json: String,
    },
    /// Acknowledges a resume request: the plan is executing again (or
    /// was already past the point of needing a resume).
    Resumed {
        /// The plan.
        plan: PlanId,
        /// Phase after the resume took effect.
        phase: PlanPhase,
        /// Runs already recovered from the journal (or finished).
        completed: usize,
        /// Total runs in the plan.
        total: usize,
    },
    /// Acknowledges a cancel request.
    Cancelled {
        /// The plan.
        plan: PlanId,
        /// The phase after the cancel took effect (a plan that already
        /// completed stays `Completed`).
        phase: PlanPhase,
    },
    /// A plan's current status.
    Status {
        /// The plan.
        plan: PlanId,
        /// Current lifecycle phase.
        phase: PlanPhase,
        /// Runs finished so far.
        completed: usize,
        /// Total runs in the plan.
        total: usize,
    },
    /// Acknowledges a shutdown request; the daemon stops accepting work.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable description.
        message: String,
    },
}

impl ServiceReply {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceReply::HelloOk => "hello-ok",
            ServiceReply::Submitted { .. } => "submitted",
            ServiceReply::Event { .. } => "event",
            ServiceReply::WatchEnd { .. } => "watch-end",
            ServiceReply::Results { .. } => "results",
            ServiceReply::Traces { .. } => "traces",
            ServiceReply::Resumed { .. } => "resumed",
            ServiceReply::Cancelled { .. } => "cancelled",
            ServiceReply::Status { .. } => "status",
            ServiceReply::ShuttingDown => "shutting-down",
            ServiceReply::Error { .. } => "error",
        }
    }
}

/// Lifecycle phase of a submitted plan.
///
/// ```text
///            ┌──────────────► Cancelled ◄──────┬────────────┐
///            │                                 │            │
///  Queued ───┴──► Running ──┬──► Completed     │            │
///                           └──► Failed        │            │
///                                              │            │
///              Interrupted ────► Running ──────┘   (resume) │
///                    └──────────────────────────────────────┘
/// ```
///
/// Terminal phases (`Completed`, `Cancelled`, `Failed`) are absorbing.
/// `Interrupted` is never reached by a live transition — a daemon
/// restart *recovers* a non-terminal spooled plan into it (via
/// [`PlanLifecycle::starting_at`]); resuming moves it back to `Running`,
/// and it can still be cancelled outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanPhase {
    /// Accepted, no run claimed yet.
    Queued,
    /// At least one run claimed by a worker.
    Running,
    /// Recovered from a journal with runs still missing; awaiting resume.
    Interrupted,
    /// Every run finished; results are available.
    Completed,
    /// Cancelled before completion; no results.
    Cancelled,
    /// Execution failed; no results.
    Failed,
}

impl PlanPhase {
    /// `true` for absorbing phases (no further transitions).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            PlanPhase::Completed | PlanPhase::Cancelled | PlanPhase::Failed
        )
    }

    /// Whether the lifecycle state machine permits `self → to`.
    pub fn can_transition(self, to: PlanPhase) -> bool {
        matches!(
            (self, to),
            (PlanPhase::Queued, PlanPhase::Running)
                | (PlanPhase::Queued, PlanPhase::Cancelled)
                | (PlanPhase::Running, PlanPhase::Completed)
                | (PlanPhase::Running, PlanPhase::Cancelled)
                | (PlanPhase::Running, PlanPhase::Failed)
                | (PlanPhase::Interrupted, PlanPhase::Running)
                | (PlanPhase::Interrupted, PlanPhase::Cancelled)
        )
    }

    /// Phase name as it appears in CLI output.
    pub fn name(self) -> &'static str {
        match self {
            PlanPhase::Queued => "queued",
            PlanPhase::Running => "running",
            PlanPhase::Interrupted => "interrupted",
            PlanPhase::Completed => "completed",
            PlanPhase::Cancelled => "cancelled",
            PlanPhase::Failed => "failed",
        }
    }
}

impl fmt::Display for PlanPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Enforced plan lifecycle: a [`PlanPhase`] that only moves along legal
/// transitions. The server holds one per plan; every phase change goes
/// through [`PlanLifecycle::advance`], so an illegal transition is a bug
/// surfaced as [`NetError::Protocol`] instead of silently corrupted
/// bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct PlanLifecycle {
    phase: Option<PlanPhase>,
}

impl PlanLifecycle {
    /// A fresh lifecycle in [`PlanPhase::Queued`].
    pub fn new() -> Self {
        PlanLifecycle {
            phase: Some(PlanPhase::Queued),
        }
    }

    /// A lifecycle starting in an arbitrary phase — used by spool
    /// recovery, which reloads plans mid-lifecycle (e.g. at
    /// [`PlanPhase::Interrupted`]) instead of replaying their history.
    pub fn starting_at(phase: PlanPhase) -> Self {
        PlanLifecycle { phase: Some(phase) }
    }

    /// The current phase.
    pub fn phase(&self) -> PlanPhase {
        self.phase.unwrap_or(PlanPhase::Queued)
    }

    /// Advances to `to`.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] if the state machine forbids the
    /// transition; the phase is left unchanged.
    pub fn advance(&mut self, to: PlanPhase) -> Result<PlanPhase, NetError> {
        let from = self.phase();
        if !from.can_transition(to) {
            return Err(NetError::Protocol(format!(
                "illegal plan transition {from} → {to}"
            )));
        }
        self.phase = Some(to);
        Ok(to)
    }

    /// Advances to `to` if legal; keeps the current phase otherwise
    /// (used where a race makes both outcomes valid, e.g. cancelling a
    /// plan that just completed).
    pub fn advance_if_legal(&mut self, to: PlanPhase) -> PlanPhase {
        let _ = self.advance(to);
        self.phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path() {
        let mut l = PlanLifecycle::new();
        assert_eq!(l.phase(), PlanPhase::Queued);
        l.advance(PlanPhase::Running).unwrap();
        l.advance(PlanPhase::Completed).unwrap();
        assert!(l.phase().is_terminal());
    }

    #[test]
    fn cancel_is_legal_from_queued_and_running() {
        let mut l = PlanLifecycle::new();
        l.advance(PlanPhase::Cancelled).unwrap();
        let mut l = PlanLifecycle::new();
        l.advance(PlanPhase::Running).unwrap();
        l.advance(PlanPhase::Cancelled).unwrap();
    }

    #[test]
    fn terminal_phases_are_absorbing() {
        for terminal in [
            PlanPhase::Completed,
            PlanPhase::Cancelled,
            PlanPhase::Failed,
        ] {
            for next in [
                PlanPhase::Queued,
                PlanPhase::Running,
                PlanPhase::Interrupted,
                PlanPhase::Completed,
                PlanPhase::Cancelled,
                PlanPhase::Failed,
            ] {
                assert!(
                    !terminal.can_transition(next),
                    "{terminal} → {next} must be illegal"
                );
            }
        }
    }

    #[test]
    fn interrupted_resumes_or_cancels_only() {
        let mut l = PlanLifecycle::starting_at(PlanPhase::Interrupted);
        assert_eq!(l.phase(), PlanPhase::Interrupted);
        assert!(!l.phase().is_terminal());
        l.advance(PlanPhase::Running).unwrap();
        l.advance(PlanPhase::Completed).unwrap();

        let mut l = PlanLifecycle::starting_at(PlanPhase::Interrupted);
        l.advance(PlanPhase::Cancelled).unwrap();

        let mut l = PlanLifecycle::starting_at(PlanPhase::Interrupted);
        assert!(l.advance(PlanPhase::Completed).is_err());
        // A live plan never becomes Interrupted — only recovery starts
        // a lifecycle there.
        assert!(!PlanPhase::Running.can_transition(PlanPhase::Interrupted));
        assert!(!PlanPhase::Queued.can_transition(PlanPhase::Interrupted));
    }

    #[test]
    fn skipping_running_to_complete_is_illegal() {
        let mut l = PlanLifecycle::new();
        let err = l.advance(PlanPhase::Completed).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
        assert_eq!(l.phase(), PlanPhase::Queued, "phase unchanged on error");
    }

    #[test]
    fn advance_if_legal_resolves_races_quietly() {
        let mut l = PlanLifecycle::new();
        l.advance(PlanPhase::Running).unwrap();
        l.advance(PlanPhase::Completed).unwrap();
        // A cancel racing completion loses without erroring.
        assert_eq!(
            l.advance_if_legal(PlanPhase::Cancelled),
            PlanPhase::Completed
        );
    }

    #[test]
    fn requests_roundtrip_through_json() {
        let reqs = [
            ServiceRequest::Hello {
                token: "secret".into(),
            },
            ServiceRequest::SubmitPlan {
                plan_json: "{\"studies\":[]}".into(),
                trace_level: "blackbox".into(),
            },
            ServiceRequest::Watch {
                plan: 7,
                from_event: 3,
            },
            ServiceRequest::Results { plan: 7 },
            ServiceRequest::Traces { plan: 7 },
            ServiceRequest::Cancel { plan: 7 },
            ServiceRequest::Resume { plan: 7 },
            ServiceRequest::Status { plan: 7 },
            ServiceRequest::Shutdown,
        ];
        for req in reqs {
            let s = serde_json::to_string(&req).unwrap();
            let back: ServiceRequest = serde_json::from_str(&s).unwrap();
            assert_eq!(back, req);
            assert!(!req.kind().is_empty());
        }
    }

    #[test]
    fn replies_roundtrip_through_json() {
        let replies = [
            ServiceReply::HelloOk,
            ServiceReply::Submitted {
                plan: 1,
                total_runs: 12,
            },
            ServiceReply::Event {
                plan: 1,
                seq: 0,
                event_json: "{}".into(),
            },
            ServiceReply::WatchEnd {
                plan: 1,
                phase: PlanPhase::Completed,
            },
            ServiceReply::Results {
                plan: 1,
                results_json: "[]".into(),
            },
            ServiceReply::Traces {
                plan: 1,
                traces_json: "[]".into(),
            },
            ServiceReply::Resumed {
                plan: 1,
                phase: PlanPhase::Running,
                completed: 9,
                total: 12,
            },
            ServiceReply::Cancelled {
                plan: 1,
                phase: PlanPhase::Cancelled,
            },
            ServiceReply::Status {
                plan: 1,
                phase: PlanPhase::Running,
                completed: 3,
                total: 12,
            },
            ServiceReply::ShuttingDown,
            ServiceReply::Error {
                message: "no such plan".into(),
            },
        ];
        for reply in replies {
            let s = serde_json::to_string(&reply).unwrap();
            let back: ServiceReply = serde_json::from_str(&s).unwrap();
            assert_eq!(back, reply);
            assert!(!reply.kind().is_empty());
        }
    }
}
