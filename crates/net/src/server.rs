//! The world server: owns the simulation and serves the lockstep protocol.

use crate::error::NetError;
use crate::message::Message;
use crate::transport::Transport;
use avfi_sim::world::{MissionStatus, World, WorldObservation};

/// Serves a [`World`] over a [`Transport`] in lockstep: each cycle sends an
/// observation, waits for the matching control, and advances one frame.
#[derive(Debug)]
pub struct SimServer<T> {
    world: World,
    transport: T,
    /// Observation buffer reclaimed from serializing transports, refreshed
    /// in place via [`World::observe_into`] so steady-state serving does
    /// not reallocate the sensor payload each frame.
    scratch: Option<Box<WorldObservation>>,
}

impl<T: Transport> SimServer<T> {
    /// Creates a server for a world and a transport endpoint.
    pub fn new(world: World, transport: T) -> Self {
        SimServer {
            world,
            transport,
            scratch: None,
        }
    }

    /// Read access to the world (for inspection after serving).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Consumes the server, returning the world (for metric extraction).
    pub fn into_world(self) -> World {
        self.world
    }

    /// Runs one protocol cycle: observation out, control in, world step.
    ///
    /// Returns the mission status after the step, or `None` when the client
    /// sent `Shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; replies other than `Control` or
    /// `Shutdown` are a [`NetError::Protocol`] error.
    pub fn serve_step(&mut self) -> Result<Option<MissionStatus>, NetError> {
        let obs = match self.scratch.take() {
            Some(mut obs) => {
                self.world.observe_into(&mut obs);
                obs
            }
            None => Box::new(self.world.observe()),
        };
        let frame = obs.sensors.frame;
        if let Some(Message::Observation(obs)) =
            self.transport.send_reclaim(Message::Observation(obs))?
        {
            self.scratch = Some(obs);
        }
        match self.transport.recv()? {
            Message::Control {
                frame: ack,
                control,
            } => {
                if ack != frame {
                    return Err(NetError::Protocol(format!(
                        "control for frame {ack}, expected {frame}"
                    )));
                }
                Ok(Some(self.world.step(control)))
            }
            Message::Shutdown => Ok(None),
            other => Err(NetError::Protocol(format!(
                "unexpected {} from client",
                other.kind()
            ))),
        }
    }

    /// Serves until the mission ends or the client shuts down, then sends
    /// `Shutdown`. Returns the final mission status.
    ///
    /// # Errors
    ///
    /// Propagates transport/protocol failures.
    pub fn serve_mission(&mut self) -> Result<MissionStatus, NetError> {
        loop {
            match self.serve_step()? {
                None => return Ok(self.world.mission()),
                Some(status) if status.is_terminal() => {
                    self.transport.send(Message::Shutdown)?;
                    return Ok(status);
                }
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;
    use avfi_sim::physics::VehicleControl;
    use avfi_sim::scenario::{Scenario, TownSpec};
    use std::thread;

    fn world(budget: f64) -> World {
        let s = Scenario::builder(TownSpec::grid(2, 2))
            .seed(1)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(budget)
            .build();
        World::from_scenario(&s)
    }

    #[test]
    fn lockstep_until_timeout() {
        let (server_end, mut client_end) = InProcTransport::pair();
        let mut server = SimServer::new(world(1.0), server_end);
        let client = thread::spawn(move || {
            let mut frames = 0u64;
            loop {
                match client_end.recv().unwrap() {
                    Message::Observation(obs) => {
                        client_end
                            .send(Message::Control {
                                frame: obs.sensors.frame,
                                control: VehicleControl::new(0.0, 0.3, 0.0),
                            })
                            .unwrap();
                        frames += 1;
                    }
                    Message::Shutdown => return frames,
                    other => panic!("unexpected {}", other.kind()),
                }
            }
        });
        let status = server.serve_mission().unwrap();
        assert_eq!(status, MissionStatus::Timeout);
        let frames = client.join().unwrap();
        assert_eq!(frames, 15); // 1 s at 15 fps
    }

    #[test]
    fn client_shutdown_stops_server() {
        let (server_end, mut client_end) = InProcTransport::pair();
        let mut server = SimServer::new(world(100.0), server_end);
        let client = thread::spawn(move || {
            // Answer two frames, then hang up.
            for _ in 0..2 {
                match client_end.recv().unwrap() {
                    Message::Observation(obs) => client_end
                        .send(Message::Control {
                            frame: obs.sensors.frame,
                            control: VehicleControl::coast(),
                        })
                        .unwrap(),
                    other => panic!("unexpected {}", other.kind()),
                }
            }
            let _ = client_end.recv().unwrap();
            client_end.send(Message::Shutdown).unwrap();
        });
        let status = server.serve_mission().unwrap();
        assert_eq!(status, MissionStatus::Running);
        client.join().unwrap();
        assert_eq!(server.world().frame(), 2);
    }

    #[test]
    fn stale_frame_is_protocol_error() {
        let (server_end, mut client_end) = InProcTransport::pair();
        let mut server = SimServer::new(world(100.0), server_end);
        let client = thread::spawn(move || {
            let _ = client_end.recv().unwrap();
            client_end
                .send(Message::Control {
                    frame: 999,
                    control: VehicleControl::coast(),
                })
                .unwrap();
        });
        let err = server.serve_step().unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
        client.join().unwrap();
    }
}
