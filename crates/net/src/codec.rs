//! Length-prefixed message framing.
//!
//! Wire format per frame: `u32` little-endian payload length, then the
//! JSON-serialized value. Built on [`bytes`] so partially received
//! frames accumulate without copying.
//!
//! The framing is generic over any serde value: the lockstep loop frames
//! [`Message`]s, the campaign service (`proto`) frames its request/reply
//! enums through the same functions via [`encode_value`] /
//! [`decode_value`].

use crate::error::NetError;
use crate::message::Message;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Maximum accepted payload size (guards against corrupt length prefixes).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Encodes one value into a length-prefixed frame.
///
/// The [`MAX_FRAME`] cap is enforced **before any bytes are written**:
/// a payload above the cap would either be rejected by every conforming
/// peer (64 MiB – 4 GiB) or — worse — silently truncate its `u32` length
/// prefix (> 4 GiB) and desynchronize the stream for good. Oversized
/// payloads therefore fail here, on the send side, leaving `out`
/// untouched.
///
/// # Errors
///
/// Returns [`NetError::Codec`] if serialization fails or the serialized
/// payload exceeds [`MAX_FRAME`].
pub fn encode_value<T: Serialize + ?Sized>(value: &T, out: &mut BytesMut) -> Result<(), NetError> {
    let payload = serde_json::to_vec(value).map_err(|e| NetError::Codec(e.to_string()))?;
    if payload.len() > MAX_FRAME {
        return Err(NetError::Codec(format!(
            "{}-byte payload exceeds the {MAX_FRAME}-byte frame cap (refused before writing)",
            payload.len()
        )));
    }
    out.reserve(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(&payload);
    Ok(())
}

/// Encodes one [`Message`] into a length-prefixed frame.
///
/// # Errors
///
/// Same failure modes as [`encode_value`].
pub fn encode(msg: &Message, out: &mut BytesMut) -> Result<(), NetError> {
    encode_value(msg, out)
}

/// Total length (prefix + payload) of the frame accumulating at the
/// front of `buf`, once its length prefix has arrived and is within
/// [`MAX_FRAME`]. Transports use it to size read windows so one syscall
/// typically completes the frame.
pub fn pending_frame_len(buf: &BytesMut) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    (len <= MAX_FRAME).then_some(4 + len)
}

/// Attempts to decode one value from the accumulation buffer.
///
/// Returns `Ok(None)` when more bytes are needed; consumed bytes are
/// removed from `buf`.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on an oversized length prefix or malformed
/// payload.
pub fn decode_value<T: Deserialize>(buf: &mut BytesMut) -> Result<Option<T>, NetError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Codec(format!("frame of {len} bytes exceeds cap")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let payload = buf.split_to(len);
    let msg = serde_json::from_slice(&payload).map_err(|e| NetError::Codec(e.to_string()))?;
    Ok(Some(msg))
}

/// Attempts to decode one [`Message`] from the accumulation buffer.
///
/// # Errors
///
/// Same failure modes as [`decode_value`].
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, NetError> {
    decode_value(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::physics::VehicleControl;

    fn ctrl(frame: u64) -> Message {
        Message::Control {
            frame,
            control: VehicleControl::new(-0.25, 0.5, 0.0),
        }
    }

    #[test]
    fn roundtrip_single() {
        let mut buf = BytesMut::new();
        encode(&ctrl(7), &mut buf).unwrap();
        let got = decode(&mut buf).unwrap().unwrap();
        assert_eq!(got, ctrl(7));
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frame_waits() {
        let mut full = BytesMut::new();
        encode(&ctrl(1), &mut full).unwrap();
        let mut buf = BytesMut::new();
        // Feed one byte at a time; decode must return None until complete.
        for (i, b) in full.iter().enumerate() {
            buf.put_u8(*b);
            let r = decode(&mut buf).unwrap();
            if i + 1 < full.len() {
                assert!(r.is_none(), "decoded early at byte {i}");
            } else {
                assert_eq!(r.unwrap(), ctrl(1));
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        encode(&ctrl(1), &mut buf).unwrap();
        encode(&Message::Shutdown, &mut buf).unwrap();
        encode(&ctrl(3), &mut buf).unwrap();
        assert_eq!(decode(&mut buf).unwrap().unwrap(), ctrl(1));
        assert_eq!(decode(&mut buf).unwrap().unwrap(), Message::Shutdown);
        assert_eq!(decode(&mut buf).unwrap().unwrap(), ctrl(3));
        assert!(decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn generic_value_roundtrip() {
        let mut buf = BytesMut::new();
        let v = vec!["service".to_string(), "frames".to_string()];
        encode_value(&v, &mut buf).unwrap();
        let got: Vec<String> = decode_value(&mut buf).unwrap().unwrap();
        assert_eq!(got, v);
        assert!(buf.is_empty());
    }

    #[test]
    fn pending_frame_len_reports_total() {
        let mut buf = BytesMut::new();
        assert_eq!(pending_frame_len(&buf), None);
        encode(&ctrl(1), &mut buf).unwrap();
        let total = buf.len();
        assert_eq!(pending_frame_len(&buf), Some(total));
        decode(&mut buf).unwrap().unwrap();
        assert_eq!(pending_frame_len(&buf), None);
        // An oversized prefix is not a plannable frame.
        let mut bad = BytesMut::new();
        bad.put_u32_le(u32::MAX);
        assert_eq!(pending_frame_len(&bad), None);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(b"junk");
        assert!(matches!(decode(&mut buf), Err(NetError::Codec(_))));
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(4);
        buf.put_slice(b"{{{{");
        assert!(matches!(decode(&mut buf), Err(NetError::Codec(_))));
    }

    /// Regression (send-side frame cap): a payload one byte over
    /// [`MAX_FRAME`] must be refused before anything lands in the output
    /// buffer. Unchecked, a 64 MiB–4 GiB payload emits a frame every
    /// conforming peer rejects, and a > 4 GiB one truncates its `u32`
    /// length prefix and permanently desyncs the stream; the cap check
    /// runs before either write can happen (the > 4 GiB case is the same
    /// code path — `payload.len() > MAX_FRAME` fires long before the
    /// `as u32` cast could wrap).
    #[test]
    fn send_side_cap_rejects_oversized_payload_before_writing() {
        // A JSON string of n ASCII bytes serializes to n + 2 bytes, so
        // this payload is exactly MAX_FRAME + 1 bytes.
        let over = "x".repeat(MAX_FRAME - 1);
        let mut out = BytesMut::new();
        let err = encode_value(&over, &mut out).unwrap_err();
        assert!(matches!(err, NetError::Codec(_)), "{err}");
        assert!(err.to_string().contains("frame cap"), "{err}");
        assert!(
            out.is_empty(),
            "nothing may be written for an oversized payload"
        );
    }

    /// Boundary partner of the cap test: a payload of exactly
    /// [`MAX_FRAME`] bytes is legal, fully framed, and decodes back.
    #[test]
    fn send_side_cap_admits_payload_at_exact_limit() {
        let at_limit = "x".repeat(MAX_FRAME - 2);
        let mut out = BytesMut::new();
        encode_value(&at_limit, &mut out).unwrap();
        assert_eq!(out.len(), 4 + MAX_FRAME);
        assert_eq!(pending_frame_len(&out), Some(4 + MAX_FRAME));
        let back: String = decode_value(&mut out).unwrap().unwrap();
        assert_eq!(back.len(), at_limit.len());
    }
}
