//! Length-prefixed message framing.
//!
//! Wire format per frame: `u32` little-endian payload length, then the
//! JSON-serialized [`Message`]. Built on [`bytes`] so partially received
//! frames accumulate without copying.

use crate::error::NetError;
use crate::message::Message;
use bytes::{Buf, BufMut, BytesMut};

/// Maximum accepted payload size (guards against corrupt length prefixes).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Encodes one message into a length-prefixed frame.
///
/// # Errors
///
/// Returns [`NetError::Codec`] if serialization fails (it cannot for the
/// message types in this crate, but the API is honest).
pub fn encode(msg: &Message, out: &mut BytesMut) -> Result<(), NetError> {
    let payload = serde_json::to_vec(msg).map_err(|e| NetError::Codec(e.to_string()))?;
    out.reserve(4 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_slice(&payload);
    Ok(())
}

/// Total length (prefix + payload) of the frame accumulating at the
/// front of `buf`, once its length prefix has arrived and is within
/// [`MAX_FRAME`]. Transports use it to size read windows so one syscall
/// typically completes the frame.
pub fn pending_frame_len(buf: &BytesMut) -> Option<usize> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    (len <= MAX_FRAME).then_some(4 + len)
}

/// Attempts to decode one message from the accumulation buffer.
///
/// Returns `Ok(None)` when more bytes are needed; consumed bytes are
/// removed from `buf`.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on an oversized length prefix or malformed
/// payload.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, NetError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(NetError::Codec(format!("frame of {len} bytes exceeds cap")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let payload = buf.split_to(len);
    let msg = serde_json::from_slice(&payload).map_err(|e| NetError::Codec(e.to_string()))?;
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::physics::VehicleControl;

    fn ctrl(frame: u64) -> Message {
        Message::Control {
            frame,
            control: VehicleControl::new(-0.25, 0.5, 0.0),
        }
    }

    #[test]
    fn roundtrip_single() {
        let mut buf = BytesMut::new();
        encode(&ctrl(7), &mut buf).unwrap();
        let got = decode(&mut buf).unwrap().unwrap();
        assert_eq!(got, ctrl(7));
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frame_waits() {
        let mut full = BytesMut::new();
        encode(&ctrl(1), &mut full).unwrap();
        let mut buf = BytesMut::new();
        // Feed one byte at a time; decode must return None until complete.
        for (i, b) in full.iter().enumerate() {
            buf.put_u8(*b);
            let r = decode(&mut buf).unwrap();
            if i + 1 < full.len() {
                assert!(r.is_none(), "decoded early at byte {i}");
            } else {
                assert_eq!(r.unwrap(), ctrl(1));
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        encode(&ctrl(1), &mut buf).unwrap();
        encode(&Message::Shutdown, &mut buf).unwrap();
        encode(&ctrl(3), &mut buf).unwrap();
        assert_eq!(decode(&mut buf).unwrap().unwrap(), ctrl(1));
        assert_eq!(decode(&mut buf).unwrap().unwrap(), Message::Shutdown);
        assert_eq!(decode(&mut buf).unwrap().unwrap(), ctrl(3));
        assert!(decode(&mut buf).unwrap().is_none());
    }

    #[test]
    fn pending_frame_len_reports_total() {
        let mut buf = BytesMut::new();
        assert_eq!(pending_frame_len(&buf), None);
        encode(&ctrl(1), &mut buf).unwrap();
        let total = buf.len();
        assert_eq!(pending_frame_len(&buf), Some(total));
        decode(&mut buf).unwrap().unwrap();
        assert_eq!(pending_frame_len(&buf), None);
        // An oversized prefix is not a plannable frame.
        let mut bad = BytesMut::new();
        bad.put_u32_le(u32::MAX);
        assert_eq!(pending_frame_len(&bad), None);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        buf.put_slice(b"junk");
        assert!(matches!(decode(&mut buf), Err(NetError::Codec(_))));
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(4);
        buf.put_slice(b"{{{{");
        assert!(matches!(decode(&mut buf), Err(NetError::Codec(_))));
    }
}
