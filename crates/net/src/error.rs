//! Error types for the client/server loop.

use std::fmt;

/// Errors from transports and protocol endpoints.
#[derive(Debug)]
pub enum NetError {
    /// The peer hung up (channel closed or socket EOF).
    Disconnected,
    /// A frame could not be decoded.
    Codec(String),
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// The peer sent a message that is invalid in the current protocol
    /// state (e.g. an observation where a control was expected).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert!(NetError::Codec("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<NetError>();
    }
}
