//! Error types for the client/server loop.

use std::fmt;

/// Errors from transports and protocol endpoints.
#[derive(Debug)]
pub enum NetError {
    /// The peer hung up (channel closed or socket EOF).
    Disconnected,
    /// A frame could not be decoded.
    Codec(String),
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// The peer sent a message that is invalid in the current protocol
    /// state (e.g. an observation where a control was expected).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    /// Folds abortive peer hangups into [`NetError::Disconnected`].
    ///
    /// A peer that vanishes mid-connection surfaces as `ConnectionReset`
    /// / `ConnectionAborted` (RST), `BrokenPipe` (write after FIN), or
    /// `UnexpectedEof` — never as the clean zero-byte read the transport
    /// maps itself. Callers match `Disconnected` as the documented "peer
    /// is gone" signal (a server's per-client loop treats it as routine
    /// churn), so these kinds must not hide inside `Io`.
    fn from(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof => NetError::Disconnected,
            _ => NetError::Io(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert!(NetError::Codec("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<NetError>();
    }

    fn from_kind(kind: std::io::ErrorKind) -> NetError {
        NetError::from(std::io::Error::new(kind, "injected"))
    }

    /// Regression (disconnect-kind mapping): each abortive-hangup I/O
    /// kind must surface as `Disconnected`, the documented "peer is
    /// gone" signal, not as an opaque `Io` error.
    #[test]
    fn connection_reset_maps_to_disconnected() {
        assert!(matches!(
            from_kind(std::io::ErrorKind::ConnectionReset),
            NetError::Disconnected
        ));
    }

    #[test]
    fn connection_aborted_maps_to_disconnected() {
        assert!(matches!(
            from_kind(std::io::ErrorKind::ConnectionAborted),
            NetError::Disconnected
        ));
    }

    #[test]
    fn broken_pipe_maps_to_disconnected() {
        assert!(matches!(
            from_kind(std::io::ErrorKind::BrokenPipe),
            NetError::Disconnected
        ));
    }

    #[test]
    fn unexpected_eof_maps_to_disconnected() {
        assert!(matches!(
            from_kind(std::io::ErrorKind::UnexpectedEof),
            NetError::Disconnected
        ));
    }

    /// Genuine I/O faults (not hangups) must keep their kind visible.
    #[test]
    fn other_io_kinds_stay_io() {
        match from_kind(std::io::ErrorKind::PermissionDenied) {
            NetError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::PermissionDenied),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
