//! Protocol messages exchanged between the world server and the agent
//! client.

use avfi_sim::physics::VehicleControl;
use avfi_sim::world::WorldObservation;
use serde::{Deserialize, Serialize};

/// One protocol message.
///
/// The lockstep protocol is strictly alternating: the server sends an
/// [`Message::Observation`], the client answers with a [`Message::Control`]
/// for the same frame, and the server advances the world by one step.
/// `Shutdown` ends the session from either side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Server → client: sensor frame plus car measurements.
    Observation(Box<WorldObservation>),
    /// Client → server: actuation command for a frame.
    Control {
        /// Frame the command answers (echo of the observation frame).
        frame: u64,
        /// The actuation command.
        control: VehicleControl,
    },
    /// Either side: end the session.
    Shutdown,
}

impl Message {
    /// Short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Observation(_) => "observation",
            Message::Control { .. } => "control",
            Message::Shutdown => "shutdown",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_roundtrips_through_json() {
        let m = Message::Control {
            frame: 42,
            control: VehicleControl::new(0.5, 1.0, 0.0),
        };
        let s = serde_json::to_string(&m).unwrap();
        let back: Message = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
        assert_eq!(back.kind(), "control");
    }

    #[test]
    fn shutdown_roundtrips() {
        let s = serde_json::to_string(&Message::Shutdown).unwrap();
        let back: Message = serde_json::from_str(&s).unwrap();
        assert_eq!(back, Message::Shutdown);
    }
}
