//! Failure triage: walk the failed-run traces of a campaign and answer
//! the debugging questions aggregate metrics can't — *which* injection
//! causally preceded the first violation, *how long* the fault took to
//! manifest, and *what kinds* of violations a fault model produces.
//!
//! Input is the trace directory an [`Engine`](crate::engine::Engine)
//! execution filled; output is a per-campaign table (rendered through
//! [`report::Table`](crate::report::Table)) plus JSON export for golden
//! diffing.

use crate::report::Table;
use avfi_trace::{read_trace_file, RunTrace, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The equivalence class of a failure: mission outcome, kind of the
/// first violation, and the causally preceding injection channel.
///
/// Two runs in the same class failed *the same way* for triage purposes.
/// The shrinker accepts a reduction only when the reduced run stays in
/// the class of the original failure; the cross-campaign view groups
/// failures by class to surface shared root causes. Including the
/// outcome makes the class strictly finer than the ISSUE-minimum
/// (violation kind, causal channel) pair: a timeout without any
/// violation is a class of its own, and a reduction that silently flips
/// a drove-through-it violation run into a timeout is rejected.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FailureClass {
    /// Mission outcome name (`"timeout"`, `"stuck"`, or `"success"` for
    /// runs that reached the goal but committed violations).
    pub outcome: String,
    /// Kind of the first violation, if any.
    pub first_violation: Option<String>,
    /// Channel of the injection causally preceding the first violation.
    pub causal_channel: Option<String>,
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} / {}",
            self.outcome,
            self.first_violation.as_deref().unwrap_or("-"),
            self.causal_channel.as_deref().unwrap_or("-"),
        )
    }
}

/// The failure class of a traced run, or `None` when the run is not a
/// failure (mission succeeded with zero violations).
pub fn failure_class(trace: &RunTrace) -> Option<FailureClass> {
    if !trace.is_failure() {
        return None;
    }
    let first = trace.first_violation();
    let (kind, frame) = match first {
        Some(TraceEvent::Violation { kind, frame, .. }) => (Some(kind.to_string()), Some(*frame)),
        _ => (None, None),
    };
    let causal = frame
        .and_then(|f| trace.last_injection_before(f))
        .map(|(_, ch)| ch.label().to_string());
    Some(FailureClass {
        outcome: trace.summary.outcome.clone(),
        first_violation: kind,
        causal_channel: causal,
    })
}

/// One cross-campaign failure group: every failed run, in any campaign,
/// that shares a [`FailureClass`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossCampaignGroup {
    /// The shared failure class.
    pub class: FailureClass,
    /// Total failed runs across campaigns in this class.
    pub failures: usize,
    /// `(campaign label, failures)` pairs, campaign label =
    /// `study · fault · agent`, in report order.
    pub campaigns: Vec<(String, usize)>,
}

/// Triage of one failed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageEntry {
    /// Trace file name the entry came from.
    pub file: String,
    /// Scenario index within the campaign.
    pub scenario_index: usize,
    /// Run index within the scenario.
    pub run_index: usize,
    /// Per-run seed.
    pub seed: u64,
    /// Mission outcome name.
    pub outcome: String,
    /// Total violations in the run.
    pub violations: usize,
    /// Kind of the first violation, if any violation occurred.
    pub first_violation: Option<String>,
    /// Simulation time of the first violation, seconds.
    pub first_violation_time: Option<f64>,
    /// Channel of the last injection at or before the first violation —
    /// the injection that causally preceded it.
    pub causal_channel: Option<String>,
    /// Seconds from the first injection to the first violation (the
    /// fault-activation latency; `None` without both endpoints).
    pub activation_latency: Option<f64>,
}

/// Triage of one campaign (all failed runs sharing a (study, fault,
/// agent) identity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignTriage {
    /// Study name from the trace headers.
    pub study: String,
    /// Fault label.
    pub fault: String,
    /// Agent name.
    pub agent: String,
    /// Failed runs triaged.
    pub failures: usize,
    /// Violation-kind histogram over the campaign's failed runs, sorted
    /// by kind name.
    pub violation_histogram: Vec<(String, usize)>,
    /// Causal-channel histogram (first-violation attribution), sorted by
    /// channel name.
    pub channel_histogram: Vec<(String, usize)>,
    /// Median fault-activation latency across runs that have one, seconds.
    pub median_latency: Option<f64>,
    /// Per-run entries, in flat-plan order.
    pub entries: Vec<TriageEntry>,
}

/// Triage of a whole trace directory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TriageReport {
    /// Per-campaign triage, in order of first appearance in the flat plan.
    pub campaigns: Vec<CampaignTriage>,
    /// Traces read in total (failed and successful).
    pub traces_read: usize,
}

impl TriageReport {
    /// Builds a report from `(file name, trace)` pairs, keeping only
    /// failed runs. Pairs must be in flat-plan order (as
    /// [`list_trace_files`](avfi_trace::list_trace_files) yields them).
    pub fn from_traces<'a, I>(traces: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a RunTrace)>,
    {
        let mut campaigns: Vec<CampaignTriage> = Vec::new();
        let mut traces_read = 0usize;
        for (file, trace) in traces {
            traces_read += 1;
            if !trace.is_failure() {
                continue;
            }
            let key = (
                trace.header.study.clone(),
                trace.header.fault.clone(),
                trace.header.agent.clone(),
            );
            let campaign = match campaigns
                .iter_mut()
                .find(|c| (c.study.clone(), c.fault.clone(), c.agent.clone()) == key)
            {
                Some(c) => c,
                None => {
                    campaigns.push(CampaignTriage {
                        study: key.0,
                        fault: key.1,
                        agent: key.2,
                        failures: 0,
                        violation_histogram: Vec::new(),
                        channel_histogram: Vec::new(),
                        median_latency: None,
                        entries: Vec::new(),
                    });
                    campaigns.last_mut().expect("just pushed")
                }
            };
            campaign.failures += 1;
            campaign.entries.push(triage_run(file, trace));
        }
        for campaign in &mut campaigns {
            finalize(campaign);
        }
        TriageReport {
            campaigns,
            traces_read,
        }
    }

    /// Reads every trace file in `dir` and triages it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and decode errors.
    pub fn from_dir(dir: &Path) -> io::Result<Self> {
        let files = avfi_trace::list_trace_files(dir)?;
        let mut traces = Vec::with_capacity(files.len());
        for path in files {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            traces.push((name, read_trace_file(&path)?));
        }
        Ok(Self::from_traces(
            traces.iter().map(|(n, t)| (n.as_str(), t)),
        ))
    }

    /// Groups failures by [`FailureClass`] *across* campaigns — shared
    /// root causes the per-campaign tables hide. Computed on demand (not
    /// serialized with the report) and sorted by descending failure
    /// count, then by class, so the view is deterministic.
    pub fn cross_campaign(&self) -> Vec<CrossCampaignGroup> {
        let mut groups: BTreeMap<FailureClass, Vec<(String, usize)>> = BTreeMap::new();
        for c in &self.campaigns {
            let label = format!("{} · {} · {}", c.study, c.fault, c.agent);
            for e in &c.entries {
                let class = FailureClass {
                    outcome: e.outcome.clone(),
                    first_violation: e.first_violation.clone(),
                    causal_channel: e.causal_channel.clone(),
                };
                let campaigns = groups.entry(class).or_default();
                match campaigns.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += 1,
                    None => campaigns.push((label.clone(), 1)),
                }
            }
        }
        let mut out: Vec<CrossCampaignGroup> = groups
            .into_iter()
            .map(|(class, campaigns)| CrossCampaignGroup {
                failures: campaigns.iter().map(|(_, n)| n).sum(),
                class,
                campaigns,
            })
            .collect();
        out.sort_by(|a, b| {
            b.failures
                .cmp(&a.failures)
                .then_with(|| a.class.cmp(&b.class))
        });
        out
    }

    /// Renders the cross-campaign failure-class table.
    pub fn render_cross_campaign(&self) -> String {
        let groups = self.cross_campaign();
        if groups.is_empty() {
            return String::new();
        }
        let mut out = String::from(
            "cross-campaign failure classes (outcome / first violation / causal channel)\n",
        );
        let mut table = Table::new(vec!["class", "failures", "campaigns", "breakdown"]);
        for g in &groups {
            let breakdown: Vec<String> = g
                .campaigns
                .iter()
                .map(|(label, n)| format!("{label}×{n}"))
                .collect();
            table.row(vec![
                g.class.to_string(),
                g.failures.to_string(),
                g.campaigns.len().to_string(),
                breakdown.join("  "),
            ]);
        }
        out.push_str(&table.render());
        out
    }

    /// Renders the per-campaign triage tables plus the cross-campaign
    /// failure-class view.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.campaigns {
            out.push_str(&format!(
                "study {} · fault {} · agent {} — {} failed run(s), median activation latency {}\n",
                c.study,
                c.fault,
                c.agent,
                c.failures,
                c.median_latency
                    .map(|l| format!("{l:.2} s"))
                    .unwrap_or_else(|| "n/a".to_string()),
            ));
            let mut table = Table::new(vec![
                "trace",
                "scenario",
                "run",
                "outcome",
                "violations",
                "first violation",
                "t_violation (s)",
                "causal channel",
                "latency (s)",
            ]);
            for e in &c.entries {
                table.row(vec![
                    e.file.clone(),
                    e.scenario_index.to_string(),
                    e.run_index.to_string(),
                    e.outcome.clone(),
                    e.violations.to_string(),
                    e.first_violation.clone().unwrap_or_else(|| "-".into()),
                    e.first_violation_time
                        .map(|t| format!("{t:.2}"))
                        .unwrap_or_else(|| "-".into()),
                    e.causal_channel.clone().unwrap_or_else(|| "-".into()),
                    e.activation_latency
                        .map(|l| format!("{l:.2}"))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
            out.push_str(&table.render());
            if !c.violation_histogram.is_empty() {
                out.push_str("violations: ");
                let parts: Vec<String> = c
                    .violation_histogram
                    .iter()
                    .map(|(k, n)| format!("{k}×{n}"))
                    .collect();
                out.push_str(&parts.join("  "));
                out.push('\n');
            }
            out.push('\n');
        }
        if self.campaigns.is_empty() {
            out.push_str("no failed runs to triage\n");
        } else {
            out.push_str(&self.render_cross_campaign());
        }
        out
    }

    /// Serializes the report to pretty JSON (golden-diff friendly: field
    /// order is fixed and maps are sorted).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none occur for these types).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

/// Triages a single failed run.
fn triage_run(file: &str, trace: &RunTrace) -> TriageEntry {
    let first_violation = trace.first_violation();
    let (first_kind, first_time, first_frame) = match first_violation {
        Some(TraceEvent::Violation {
            kind, time, frame, ..
        }) => (Some(kind.to_string()), Some(*time), Some(*frame)),
        _ => (None, None, None),
    };
    let causal = first_frame.and_then(|f| trace.last_injection_before(f));
    let activation_latency = match (trace.summary.injection_time, first_time) {
        (Some(t0), Some(t1)) if t1 >= t0 => Some(t1 - t0),
        _ => None,
    };
    TriageEntry {
        file: file.to_string(),
        scenario_index: trace.header.scenario_index,
        run_index: trace.header.run_index,
        seed: trace.header.seed,
        outcome: trace.summary.outcome.clone(),
        violations: trace.summary.violations,
        first_violation: first_kind,
        first_violation_time: first_time,
        causal_channel: causal.map(|(_, ch)| ch.label().to_string()),
        activation_latency,
    }
}

/// Fills the campaign-level histograms and median latency from entries.
fn finalize(campaign: &mut CampaignTriage) {
    let mut violations: BTreeMap<String, usize> = BTreeMap::new();
    let mut channels: BTreeMap<String, usize> = BTreeMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    for e in &campaign.entries {
        if let Some(k) = &e.first_violation {
            *violations.entry(k.clone()).or_default() += 1;
        }
        if let Some(ch) = &e.causal_channel {
            *channels.entry(ch.clone()).or_default() += 1;
        }
        if let Some(l) = e.activation_latency {
            latencies.push(l);
        }
    }
    campaign.violation_histogram = violations.into_iter().collect();
    campaign.channel_histogram = channels.into_iter().collect();
    latencies.sort_by(f64::total_cmp);
    campaign.median_latency = if latencies.is_empty() {
        None
    } else {
        Some(latencies[latencies.len() / 2])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::scenario::{Scenario, TownSpec};
    use avfi_sim::violation::ViolationKind;
    use avfi_trace::{FaultChannel, TraceHeader, TraceLevel, TraceSummary};

    fn failed_trace(study: &str, run_index: usize) -> RunTrace {
        RunTrace {
            header: TraceHeader {
                study: study.to_string(),
                fault: "stuck brake".to_string(),
                agent: "expert".to_string(),
                scenario_index: 0,
                run_index,
                seed: 42 + run_index as u64,
                scenario: Scenario::builder(TownSpec::grid(2, 2)).build(),
                fault_spec_json: "\"None\"".to_string(),
                weights_fingerprint: None,
                level: TraceLevel::Blackbox,
                blackbox_frames: 16,
            },
            summary: TraceSummary {
                success: false,
                outcome: "stuck".to_string(),
                duration: 30.0,
                distance_km: 0.1,
                violations: 1,
                injection_time: Some(2.0),
            },
            events: vec![
                TraceEvent::TriggerFired { frame: 30 },
                TraceEvent::Injection {
                    frame: 30,
                    channel: FaultChannel::ControlHardware,
                },
                TraceEvent::Violation {
                    frame: 75,
                    time: 5.0,
                    kind: ViolationKind::OffRoad,
                    x: 1.0,
                    y: 2.0,
                    odometer: 12.0,
                },
            ],
            frames: Vec::new(),
            dropped_frames: 0,
            dropped_events: 0,
        }
    }

    #[test]
    fn triage_attributes_causal_injection() {
        let t = failed_trace("s", 0);
        let report = TriageReport::from_traces([("run-000000.avtr", &t)]);
        assert_eq!(report.campaigns.len(), 1);
        let c = &report.campaigns[0];
        assert_eq!(c.failures, 1);
        let e = &c.entries[0];
        assert_eq!(e.causal_channel.as_deref(), Some("hw-control"));
        assert_eq!(e.first_violation.as_deref(), Some("off-road"));
        assert_eq!(e.activation_latency, Some(3.0));
        assert_eq!(c.violation_histogram, vec![("off-road".to_string(), 1)]);
        assert_eq!(c.median_latency, Some(3.0));
    }

    #[test]
    fn successful_runs_are_skipped() {
        let mut ok = failed_trace("s", 1);
        ok.summary.success = true;
        ok.summary.violations = 0;
        ok.events
            .retain(|e| !matches!(e, TraceEvent::Violation { .. }));
        let failed = failed_trace("s", 0);
        let report =
            TriageReport::from_traces([("run-000000.avtr", &failed), ("run-000001.avtr", &ok)]);
        assert_eq!(report.traces_read, 2);
        assert_eq!(report.campaigns.len(), 1);
        assert_eq!(report.campaigns[0].failures, 1);
    }

    #[test]
    fn render_and_json_are_stable() {
        let t = failed_trace("s", 0);
        let report = TriageReport::from_traces([("run-000000.avtr", &t)]);
        let text = report.render();
        assert!(text.contains("causal channel"));
        assert!(text.contains("hw-control"));
        let json = report.to_json().unwrap();
        let back: TriageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = TriageReport::from_traces(std::iter::empty());
        assert!(report.render().contains("no failed runs"));
    }

    #[test]
    fn failure_class_extracts_triple_and_skips_successes() {
        let t = failed_trace("s", 0);
        let class = failure_class(&t).expect("failed run has a class");
        assert_eq!(class.outcome, "stuck");
        assert_eq!(class.first_violation.as_deref(), Some("off-road"));
        assert_eq!(class.causal_channel.as_deref(), Some("hw-control"));
        assert_eq!(class.to_string(), "stuck / off-road / hw-control");

        let mut ok = failed_trace("s", 1);
        ok.summary.success = true;
        ok.summary.violations = 0;
        assert_eq!(failure_class(&ok), None);

        // A timeout with no violation is a class of its own.
        let mut quiet = failed_trace("s", 2);
        quiet.summary.outcome = "timeout".to_string();
        quiet.summary.violations = 0;
        quiet
            .events
            .retain(|e| !matches!(e, TraceEvent::Violation { .. }));
        let class = failure_class(&quiet).unwrap();
        assert_eq!(class.first_violation, None);
        assert_eq!(class.causal_channel, None);
    }

    #[test]
    fn cross_campaign_groups_identical_classes_across_studies() {
        // Same (outcome, violation, channel) triple in two different
        // studies must land in one group; a distinct class gets its own.
        let a = failed_trace("study-a", 0);
        let b = failed_trace("study-b", 0);
        let mut c = failed_trace("study-a", 1);
        c.summary.outcome = "timeout".to_string();
        let report = TriageReport::from_traces([
            ("run-000000.avtr", &a),
            ("run-000001.avtr", &b),
            ("run-000002.avtr", &c),
        ]);
        let groups = report.cross_campaign();
        assert_eq!(groups.len(), 2);
        let shared = &groups[0];
        assert_eq!(shared.failures, 2, "largest group first");
        assert_eq!(shared.campaigns.len(), 2);
        assert!(shared.campaigns[0].0.starts_with("study-a"));
        assert!(shared.campaigns[1].0.starts_with("study-b"));
        let rendered = report.render();
        assert!(rendered.contains("cross-campaign failure classes"));
        assert!(rendered.contains("stuck / off-road / hw-control"));
    }
}
