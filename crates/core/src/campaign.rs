//! Fault-injection campaigns: seeded batches of missions run in parallel.
//!
//! A campaign fixes an agent, a fault plan, and a set of scenarios, then
//! runs `runs_per_scenario` missions per scenario with derived seeds. Each
//! run is fully self-contained and deterministic, so campaigns parallelize
//! over worker threads without affecting results.

use crate::engine::{Engine, ProgressSink, WorkPlan};
use crate::fault::FaultSpec;
use crate::harness::AvDriver;
use avfi_agent::IlNetwork;
use avfi_sim::recorder::Recorder;
use avfi_sim::rng::split_seed;
use avfi_sim::scenario::Scenario;
use avfi_sim::violation::Violation;
use avfi_sim::world::{MissionStatus, World};
use avfi_trace::{RunTrace, TraceEvent, TraceHeader, TraceLevel, TraceSummary};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which agent a campaign drives.
///
/// Serializable so campaign plans can cross the `avfi-server` wire: the
/// neural variant ships its full weight blob, which is exactly what
/// "rebuilt per run from serialized weights" needs on the receiving side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AgentSpec {
    /// The rule-based oracle autopilot.
    Expert,
    /// The imitation-learning CNN, rebuilt per run from serialized
    /// weights (so parallel runs and per-run ML faults never share state).
    Neural {
        /// Trained weights, shared read-only across runs.
        weights: Arc<Vec<u8>>,
    },
}

impl AgentSpec {
    /// Builds the neural spec from a trained network.
    pub fn neural(net: &mut IlNetwork) -> AgentSpec {
        AgentSpec::Neural {
            weights: Arc::new(net.to_weights()),
        }
    }

    /// Agent name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AgentSpec::Expert => "expert",
            AgentSpec::Neural { .. } => "il-cnn",
        }
    }
}

/// Mission outcome of one run (serializable mirror of
/// [`MissionStatus`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MissionOutcome {
    /// Goal reached.
    Success {
        /// Completion time, seconds.
        time: f64,
    },
    /// Time budget exhausted.
    Timeout,
    /// Vehicle immobile (crashed/pinned).
    Stuck,
}

impl MissionOutcome {
    /// `true` on success.
    pub fn is_success(self) -> bool {
        matches!(self, MissionOutcome::Success { .. })
    }

    /// Outcome name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            MissionOutcome::Success { .. } => "success",
            MissionOutcome::Timeout => "timeout",
            MissionOutcome::Stuck => "stuck",
        }
    }
}

impl From<MissionStatus> for MissionOutcome {
    fn from(s: MissionStatus) -> Self {
        match s {
            MissionStatus::Success { time } => MissionOutcome::Success { time },
            MissionStatus::Stuck => MissionOutcome::Stuck,
            // A run stopped while Running is accounted as a timeout.
            MissionStatus::Timeout | MissionStatus::Running => MissionOutcome::Timeout,
        }
    }
}

/// Result of one fault-injected mission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Fault label (e.g. `"Gaussian"`, `"delay 30f"`).
    pub fault: String,
    /// Agent name.
    pub agent: String,
    /// Index of the scenario within the campaign.
    pub scenario_index: usize,
    /// Index of the run within the scenario.
    pub run_index: usize,
    /// Derived seed the run used.
    pub seed: u64,
    /// Mission outcome.
    pub outcome: MissionOutcome,
    /// Simulated duration, seconds.
    pub duration: f64,
    /// Distance driven, kilometers.
    pub distance_km: f64,
    /// All violations recorded by the traffic monitor.
    pub violations: Vec<Violation>,
    /// Simulation time of the first injection, if any.
    pub injection_time: Option<f64>,
}

/// Configuration of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Scenario templates; each gets `runs_per_scenario` derived-seed runs.
    pub scenarios: Vec<Scenario>,
    /// Missions per scenario.
    pub runs_per_scenario: usize,
    /// The fault plan applied to every run.
    pub fault: FaultSpec,
    /// The agent under test.
    pub agent: AgentSpec,
    /// Worker threads (0 = one per available core).
    pub parallelism: usize,
}

impl CampaignConfig {
    /// Starts a builder over scenario templates.
    ///
    /// # Panics
    ///
    /// Panics if `scenarios` is empty.
    pub fn builder(scenarios: Vec<Scenario>) -> CampaignConfigBuilder {
        assert!(
            !scenarios.is_empty(),
            "campaign needs at least one scenario"
        );
        CampaignConfigBuilder {
            config: CampaignConfig {
                scenarios,
                runs_per_scenario: 5,
                fault: FaultSpec::None,
                agent: AgentSpec::Expert,
                parallelism: 0,
            },
        }
    }

    /// Total number of runs.
    pub fn total_runs(&self) -> usize {
        self.scenarios.len() * self.runs_per_scenario
    }
}

/// Builder for [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    config: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Sets the missions per scenario.
    pub fn runs_per_scenario(mut self, n: usize) -> Self {
        self.config.runs_per_scenario = n;
        self
    }

    /// Sets the fault plan.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.config.fault = fault;
        self
    }

    /// Sets the agent.
    pub fn agent(mut self, agent: AgentSpec) -> Self {
        self.config.agent = agent;
        self
    }

    /// Sets the worker-thread count (0 = auto).
    pub fn parallelism(mut self, n: usize) -> Self {
        self.config.parallelism = n;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CampaignConfig {
        self.config
    }
}

/// Results of a campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Fault label.
    pub fault: String,
    /// Agent name.
    pub agent: String,
    /// All run results, in (scenario, run) order.
    runs: Vec<RunResult>,
}

impl CampaignResult {
    /// Assembles a result from runs already in (scenario, run) order (used
    /// by the execution engine's deterministic reassembly).
    pub(crate) fn from_runs(fault: String, agent: String, runs: Vec<RunResult>) -> Self {
        CampaignResult { fault, agent, runs }
    }

    /// All runs.
    pub fn runs(&self) -> &[RunResult] {
        &self.runs
    }

    /// Total kilometers driven across runs.
    pub fn total_km(&self) -> f64 {
        self.runs.iter().map(|r| r.distance_km).sum()
    }

    /// Total violations across runs.
    pub fn total_violations(&self) -> usize {
        self.runs.iter().map(|r| r.violations.len()).sum()
    }
}

/// A runnable campaign.
#[derive(Debug)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Executes every run (parallel over worker threads) and collects the
    /// results. Results are identical regardless of thread count.
    ///
    /// This is a single-campaign plan handed to the
    /// [`Engine`](crate::engine::Engine); studies that run several
    /// campaigns should build a [`WorkPlan`](crate::engine::WorkPlan)
    /// instead so the queues merge and no cores idle between campaigns.
    pub fn run(&self) -> CampaignResult {
        self.run_with(&crate::engine::NullSink)
    }

    /// Like [`Campaign::run`], streaming progress events into `sink`.
    pub fn run_with(&self, sink: &dyn ProgressSink) -> CampaignResult {
        let plan = WorkPlan::single("campaign", self.config.clone());
        Engine::new()
            .workers(self.config.parallelism)
            .execute_with(&plan, sink)
            .pop()
            .expect("plan has one study")
            .campaigns
            .pop()
            .expect("study has one campaign")
    }
}

/// What the flight recorder should capture for a traced run.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Detail level (`Off` callers should use [`run_single`] instead).
    pub level: TraceLevel,
    /// Study name recorded in trace headers.
    pub study: String,
    /// Black-box ring capacity, frames.
    pub blackbox_frames: usize,
    /// Fingerprint of the neural agent's weights, when neural.
    pub weights_fingerprint: Option<u64>,
}

/// Executes one fault-injected mission with the flight recorder on.
///
/// The [`RunResult`] is bit-identical to what [`run_single`] produces —
/// recording only observes the run. The second return is the trace to
/// persist: at `Summary` level every run yields one (events only); at
/// `Blackbox` level only *failed* runs do (with the ring's frame window),
/// so campaign-scale disk stays proportional to failures.
///
/// `recorder` is the caller's reusable capture buffer (one per worker):
/// it is reset, used, and handed back with its allocation intact.
pub fn run_single_traced(
    template: &Scenario,
    scenario_index: usize,
    run_index: usize,
    fault: &FaultSpec,
    agent: &AgentSpec,
    trace: &TraceSpec,
    recorder: &mut Recorder,
) -> (RunResult, Option<RunTrace>) {
    let mut scenario = template.clone();
    scenario.seed = split_seed(
        template.seed,
        ((scenario_index as u64) << 32) | (run_index as u64 + 1),
    );
    let mut world = World::from_scenario(&scenario);
    let blackbox = trace.level == TraceLevel::Blackbox;
    if blackbox {
        recorder.reset();
        world.install_recorder(std::mem::take(recorder));
    }
    let mut driver = match agent {
        AgentSpec::Expert => AvDriver::expert(fault.clone(), scenario.seed),
        AgentSpec::Neural { weights } => {
            let net = IlNetwork::from_weights(weights).expect("valid campaign weights");
            AvDriver::neural(net, fault.clone(), scenario.seed)
        }
    };
    driver.enable_event_log();
    let mut obs = world.observe();
    loop {
        let control = driver.drive_frame(&obs, &world);
        if world.step(control).is_terminal() {
            break;
        }
        world.observe_into(&mut obs);
    }
    if blackbox {
        *recorder = world.take_recorder();
    }

    let result = RunResult {
        fault: fault.label(),
        agent: driver.agent_name().to_string(),
        scenario_index,
        run_index,
        seed: scenario.seed,
        outcome: world.mission().into(),
        duration: world.time(),
        distance_km: world.odometer() / 1000.0,
        violations: world.monitor().events().to_vec(),
        injection_time: driver.injection_time(),
    };

    let (mut events, dropped_events) = driver.take_events();
    events.extend(result.violations.iter().map(|v| TraceEvent::Violation {
        frame: v.frame,
        time: v.time,
        kind: v.kind,
        x: v.position.x,
        y: v.position.y,
        odometer: v.odometer,
    }));
    // Stable by frame: harness events keep their order, violations land
    // after same-frame injections (cause before effect).
    events.sort_by_key(TraceEvent::frame);

    let run_trace = RunTrace {
        header: TraceHeader {
            study: trace.study.clone(),
            fault: result.fault.clone(),
            agent: result.agent.clone(),
            scenario_index,
            run_index,
            seed: scenario.seed,
            scenario: template.clone(),
            fault_spec_json: serde_json::to_string(fault).expect("fault spec serializes"),
            weights_fingerprint: trace.weights_fingerprint,
            level: trace.level,
            blackbox_frames: if blackbox { trace.blackbox_frames } else { 0 },
        },
        summary: TraceSummary {
            success: result.outcome.is_success(),
            outcome: result.outcome.name().to_string(),
            duration: result.duration,
            distance_km: result.distance_km,
            violations: result.violations.len(),
            injection_time: result.injection_time,
        },
        events,
        frames: if blackbox {
            recorder.chronological().copied().collect()
        } else {
            Vec::new()
        },
        dropped_frames: if blackbox { recorder.dropped() } else { 0 },
        dropped_events,
    };
    // Black-box semantics: the ring is flushed to disk only when the run
    // failed; summary traces are cheap enough to keep for every run.
    let emit = match trace.level {
        TraceLevel::Off => false,
        TraceLevel::Summary => true,
        TraceLevel::Blackbox => run_trace.is_failure(),
    };
    (result, emit.then_some(run_trace))
}

/// Executes one fault-injected mission.
pub fn run_single(
    template: &Scenario,
    scenario_index: usize,
    run_index: usize,
    fault: &FaultSpec,
    agent: &AgentSpec,
) -> RunResult {
    // Derive a per-run scenario: same town/config, new mission/traffic
    // seed. The stream index mixes in `scenario_index` so two scenarios
    // that happen to share a template seed still get distinct traffic
    // (mixing only `run_index` would replay identical runs across them).
    let mut scenario = template.clone();
    scenario.seed = split_seed(
        template.seed,
        ((scenario_index as u64) << 32) | (run_index as u64 + 1),
    );
    let mut world = World::from_scenario(&scenario);
    let mut driver = match agent {
        AgentSpec::Expert => AvDriver::expert(fault.clone(), scenario.seed),
        AgentSpec::Neural { weights } => {
            let net = IlNetwork::from_weights(weights).expect("valid campaign weights");
            AvDriver::neural(net, fault.clone(), scenario.seed)
        }
    };
    let mut obs = world.observe();
    loop {
        let control = driver.drive_frame(&obs, &world);
        if world.step(control).is_terminal() {
            break;
        }
        world.observe_into(&mut obs);
    }
    RunResult {
        fault: fault.label(),
        agent: driver.agent_name().to_string(),
        scenario_index,
        run_index,
        seed: scenario.seed,
        outcome: world.mission().into(),
        duration: world.time(),
        distance_km: world.odometer() / 1000.0,
        violations: world.monitor().events().to_vec(),
        injection_time: driver.injection_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::timing::TimingFault;
    use avfi_sim::scenario::TownSpec;

    fn quick_scenario(seed: u64) -> Scenario {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(20.0)
            .min_route_length(60.0)
            .build()
    }

    #[test]
    fn expert_campaign_runs_and_is_deterministic() {
        let config = CampaignConfig::builder(vec![quick_scenario(1)])
            .runs_per_scenario(3)
            .parallelism(2)
            .build();
        let a = Campaign::new(config.clone()).run();
        let b = Campaign::new(config).run();
        assert_eq!(a.runs().len(), 3);
        for (x, y) in a.runs().iter().zip(b.runs()) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.distance_km, y.distance_km);
            assert_eq!(x.violations.len(), y.violations.len());
            assert_eq!(x.outcome.is_success(), y.outcome.is_success());
        }
    }

    #[test]
    fn parallelism_does_not_change_results() {
        let mk = |threads| {
            Campaign::new(
                CampaignConfig::builder(vec![quick_scenario(2)])
                    .runs_per_scenario(4)
                    .parallelism(threads)
                    .build(),
            )
            .run()
        };
        let serial = mk(1);
        let parallel = mk(4);
        for (x, y) in serial.runs().iter().zip(parallel.runs()) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.duration, y.duration);
            assert_eq!(x.distance_km, y.distance_km);
        }
    }

    #[test]
    fn runs_get_distinct_seeds() {
        let config = CampaignConfig::builder(vec![quick_scenario(3)])
            .runs_per_scenario(4)
            .build();
        let result = Campaign::new(config).run();
        let seeds: std::collections::HashSet<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn same_template_seed_scenarios_diverge() {
        // Two scenarios with identical template seeds must not replay the
        // same mission: the per-run seed derivation mixes in the scenario
        // index, so their trajectories (and per-run seeds) differ.
        let config = CampaignConfig::builder(vec![quick_scenario(5), quick_scenario(5)])
            .runs_per_scenario(2)
            .parallelism(1)
            .build();
        let result = Campaign::new(config).run();
        assert_eq!(result.runs().len(), 4);
        let seeds: std::collections::HashSet<u64> = result.runs().iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 4, "per-run seeds collided across scenarios");
        let a = &result.runs()[0]; // scenario 0, run 0
        let b = &result.runs()[2]; // scenario 1, run 0
        assert_ne!(a.seed, b.seed);
        assert_ne!(
            (a.duration, a.distance_km),
            (b.duration, b.distance_km),
            "same-seed scenarios replayed an identical trajectory"
        );
    }

    #[test]
    fn fault_label_propagates() {
        let config = CampaignConfig::builder(vec![quick_scenario(4)])
            .runs_per_scenario(1)
            .fault(FaultSpec::Timing(TimingFault::OutputDelay { frames: 10 }))
            .build();
        let result = Campaign::new(config).run();
        assert_eq!(result.fault, "delay 10f");
        assert_eq!(result.runs()[0].fault, "delay 10f");
        assert_eq!(result.runs()[0].injection_time, Some(0.0));
    }
}
