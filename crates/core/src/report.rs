//! Report rendering: aligned ASCII tables, bar charts, box-plot rows, and
//! machine-readable JSON/CSV export of campaign results.

use crate::campaign::CampaignResult;
use crate::stats::Summary;
use std::fmt::Write as _;

/// An aligned plain-text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", render_row(&self.headers));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row));
        }
        out
    }
}

/// Renders a horizontal ASCII bar scaled to `max_value` over `width`
/// characters.
pub fn bar(value: f64, max_value: f64, width: usize) -> String {
    if max_value <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max_value) * width as f64).round() as usize;
    "█".repeat(n.clamp(if value > 0.0 { 1 } else { 0 }, width))
}

/// Renders a one-line box plot (min, Q1, median, Q3, max) on a fixed-width
/// axis from `axis_lo` to `axis_hi` — the textual cousin of the paper's
/// box-and-whisker figures.
pub fn box_plot_row(s: &Summary, axis_lo: f64, axis_hi: f64, width: usize) -> String {
    if s.n == 0 || axis_hi <= axis_lo {
        return " ".repeat(width);
    }
    let scale = |v: f64| -> usize {
        (((v - axis_lo) / (axis_hi - axis_lo)) * (width - 1) as f64)
            .round()
            .clamp(0.0, (width - 1) as f64) as usize
    };
    let mut chars: Vec<char> = vec![' '; width];
    let (min_i, q1_i, med_i, q3_i, max_i) = (
        scale(s.min),
        scale(s.q1),
        scale(s.median),
        scale(s.q3),
        scale(s.max),
    );
    for c in chars.iter_mut().take(q1_i).skip(min_i) {
        *c = '-';
    }
    for c in chars.iter_mut().take(max_i + 1).skip(q3_i) {
        *c = '-';
    }
    for c in chars.iter_mut().take(q3_i + 1).skip(q1_i) {
        *c = '█';
    }
    chars[med_i] = '│';
    chars[min_i] = '|';
    chars[max_i.min(width - 1)] = '|';
    chars.into_iter().collect()
}

/// Serializes a campaign result to pretty JSON.
///
/// # Errors
///
/// Propagates serialization failures (none occur for these types).
pub fn to_json(result: &CampaignResult) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(result)
}

/// Renders per-run rows as CSV (one line per run, header included).
pub fn to_csv(results: &[&CampaignResult]) -> String {
    let mut out = String::from(
        "fault,agent,scenario,run,seed,success,duration_s,distance_km,violations,accidents,injection_time_s\n",
    );
    for result in results {
        for r in result.runs() {
            let accidents = r.violations.iter().filter(|v| v.kind.is_accident()).count();
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.2},{:.4},{},{},{}",
                r.fault,
                r.agent,
                r.scenario_index,
                r.run_index,
                r.seed,
                r.outcome.is_success(),
                r.duration,
                r.distance_km,
                r.violations.len(),
                accidents,
                r.injection_time
                    .map(|t| format!("{t:.2}"))
                    .unwrap_or_default(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        let w = lines[0].chars().count();
        for l in &lines {
            assert_eq!(l.chars().count(), w, "misaligned: {l:?}");
        }
        assert!(s.contains("a-much-longer-name"));
    }

    #[test]
    fn row_padding() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        // Tiny non-zero values still show one tick.
        assert_eq!(bar(0.01, 10.0, 10).chars().count(), 1);
    }

    #[test]
    fn box_plot_marks_quartiles() {
        let s = Summary::of(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        let row = box_plot_row(&s, 0.0, 10.0, 40);
        assert_eq!(row.chars().count(), 40);
        assert!(row.contains('│'), "median marker missing: {row:?}");
        assert!(row.contains('█'), "IQR box missing");
    }

    #[test]
    fn box_plot_empty_is_blank() {
        let s = Summary::of(&[]);
        assert_eq!(box_plot_row(&s, 0.0, 1.0, 10).trim(), "");
    }
}
