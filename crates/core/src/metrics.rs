//! Resilience metrics from §II of the paper: MSR, VPK, APK, TTV.

use crate::campaign::RunResult;
use avfi_sim::violation::ViolationKind;
use std::collections::BTreeMap;

/// Floor on per-run distance when normalizing to per-km rates, km. A car
/// that never moved has no exposure; rates below this floor would explode.
pub const MIN_KM: f64 = 0.05;

/// Mission Success Rate: the percentage of runs that completed their
/// navigation mission in the allotted time. Higher is more resilient.
pub fn mission_success_rate(runs: &[RunResult]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    100.0 * runs.iter().filter(|r| r.outcome.is_success()).count() as f64 / runs.len() as f64
}

/// Traffic Violations Per Kilometer for one run. Lower is more resilient.
pub fn violations_per_km(run: &RunResult) -> f64 {
    run.violations.len() as f64 / run.distance_km.max(MIN_KM)
}

/// Accidents (collision violations) Per Kilometer for one run.
pub fn accidents_per_km(run: &RunResult) -> f64 {
    let accidents = run
        .violations
        .iter()
        .filter(|v| v.kind.is_accident())
        .count();
    accidents as f64 / run.distance_km.max(MIN_KM)
}

/// Per-run VPK distribution across a campaign.
pub fn vpk_distribution(runs: &[RunResult]) -> Vec<f64> {
    runs.iter().map(violations_per_km).collect()
}

/// Per-run APK distribution across a campaign.
pub fn apk_distribution(runs: &[RunResult]) -> Vec<f64> {
    runs.iter().map(accidents_per_km).collect()
}

/// Campaign-aggregate VPK: total violations over total kilometers (the
/// "per fault injection campaign" definition in §II).
pub fn aggregate_vpk(runs: &[RunResult]) -> f64 {
    let violations: usize = runs.iter().map(|r| r.violations.len()).sum();
    let km: f64 = runs.iter().map(|r| r.distance_km).sum();
    violations as f64 / km.max(MIN_KM)
}

/// Campaign-aggregate APK.
pub fn aggregate_apk(runs: &[RunResult]) -> f64 {
    let accidents: usize = runs
        .iter()
        .flat_map(|r| &r.violations)
        .filter(|v| v.kind.is_accident())
        .count();
    let km: f64 = runs.iter().map(|r| r.distance_km).sum();
    accidents as f64 / km.max(MIN_KM)
}

/// Time to Traffic Violation for one run: seconds from the first injection
/// to the first violation occurring at or after it. `None` when nothing
/// was injected or no violation followed. Higher means the system has more
/// time to detect and correct its state.
pub fn time_to_violation(run: &RunResult) -> Option<f64> {
    let t0 = run.injection_time?;
    run.violations
        .iter()
        .filter(|v| v.time >= t0 - 1e-9)
        .map(|v| v.time - t0)
        .fold(None, |best, t| match best {
            Some(b) if b <= t => Some(b),
            _ => Some(t),
        })
}

/// TTV distribution across a campaign (runs with a post-injection
/// violation only).
pub fn ttv_distribution(runs: &[RunResult]) -> Vec<f64> {
    runs.iter().filter_map(time_to_violation).collect()
}

/// Violation counts by kind across a campaign.
pub fn violations_by_kind(runs: &[RunResult]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for kind in ViolationKind::ALL {
        let n = runs
            .iter()
            .flat_map(|r| &r.violations)
            .filter(|v| v.kind == kind)
            .count();
        if n > 0 {
            map.insert(kind.to_string(), n);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::MissionOutcome;
    use avfi_sim::math::Vec2;
    use avfi_sim::violation::Violation;

    fn run(success: bool, km: f64, violations: Vec<Violation>, inj: Option<f64>) -> RunResult {
        RunResult {
            fault: "test".into(),
            agent: "expert".into(),
            scenario_index: 0,
            run_index: 0,
            seed: 0,
            outcome: if success {
                MissionOutcome::Success { time: 10.0 }
            } else {
                MissionOutcome::Timeout
            },
            duration: 60.0,
            distance_km: km,
            violations,
            injection_time: inj,
        }
    }

    fn violation(kind: ViolationKind, time: f64) -> Violation {
        Violation {
            kind,
            time,
            frame: (time * 15.0) as u64,
            position: Vec2::ZERO,
            odometer: 0.0,
        }
    }

    #[test]
    fn msr_counts_successes() {
        let runs = vec![
            run(true, 0.5, vec![], None),
            run(false, 0.5, vec![], None),
            run(true, 0.5, vec![], None),
            run(true, 0.5, vec![], None),
        ];
        assert_eq!(mission_success_rate(&runs), 75.0);
        assert_eq!(mission_success_rate(&[]), 0.0);
    }

    #[test]
    fn vpk_and_apk() {
        let r = run(
            true,
            2.0,
            vec![
                violation(ViolationKind::LaneDeparture, 1.0),
                violation(ViolationKind::CollisionVehicle, 2.0),
                violation(ViolationKind::Speeding, 3.0),
            ],
            None,
        );
        assert_eq!(violations_per_km(&r), 1.5);
        assert_eq!(accidents_per_km(&r), 0.5);
    }

    #[test]
    fn vpk_guard_against_zero_distance() {
        let r = run(
            false,
            0.0,
            vec![violation(ViolationKind::OffRoad, 1.0)],
            None,
        );
        assert!(violations_per_km(&r) <= 1.0 / MIN_KM);
    }

    #[test]
    fn aggregate_pools_distance() {
        let runs = vec![
            run(
                true,
                1.0,
                vec![violation(ViolationKind::Speeding, 1.0)],
                None,
            ),
            run(true, 3.0, vec![], None),
        ];
        assert_eq!(aggregate_vpk(&runs), 0.25);
        assert_eq!(aggregate_apk(&runs), 0.0);
    }

    #[test]
    fn ttv_first_violation_after_injection() {
        let r = run(
            false,
            1.0,
            vec![
                violation(ViolationKind::Speeding, 2.0), // before injection
                violation(ViolationKind::OffRoad, 7.5),
                violation(ViolationKind::CurbDriving, 9.0),
            ],
            Some(5.0),
        );
        assert_eq!(time_to_violation(&r), Some(2.5));
    }

    #[test]
    fn ttv_none_cases() {
        let no_inj = run(
            true,
            1.0,
            vec![violation(ViolationKind::OffRoad, 1.0)],
            None,
        );
        assert_eq!(time_to_violation(&no_inj), None);
        let no_viol = run(true, 1.0, vec![], Some(3.0));
        assert_eq!(time_to_violation(&no_viol), None);
        let all_before = run(
            true,
            1.0,
            vec![violation(ViolationKind::OffRoad, 1.0)],
            Some(3.0),
        );
        assert_eq!(time_to_violation(&all_before), None);
    }

    #[test]
    fn kind_tabulation() {
        let runs = vec![run(
            true,
            1.0,
            vec![
                violation(ViolationKind::LaneDeparture, 1.0),
                violation(ViolationKind::LaneDeparture, 2.0),
                violation(ViolationKind::CollisionStatic, 3.0),
            ],
            None,
        )];
        let by_kind = violations_by_kind(&runs);
        assert_eq!(by_kind["lane-departure"], 2);
        assert_eq!(by_kind["collision-static"], 1);
        assert!(!by_kind.contains_key("speeding"));
    }
}
