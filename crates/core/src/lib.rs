//! # avfi-core — the Autonomous Vehicle Fault Injector
//!
//! The primary contribution of Jha et al., *AVFI: Fault Injection for
//! Autonomous Vehicles* (DSN 2018): an end-to-end resilience-assessment
//! engine that injects faults into a simulated AV's
//! sensor–compute–actuation pipeline and quantifies domain-specific
//! failure metrics.
//!
//! AVFI runs fault-injection campaigns in two steps: "(a) selecting the
//! location of faults (e.g., choosing specific neurons and layers in the
//! IL-CNN) and (b) injecting the faults into the chosen locations using
//! the fault models". The four fault classes of the paper map to modules
//! here:
//!
//! | Paper class | Module | Examples |
//! |---|---|---|
//! | Data faults | [`fault::input`] | camera Gaussian/S&P noise, solid & transparent occlusions, water drops; GPS bias; speedometer corruption |
//! | Hardware faults | [`fault::hardware`] | single/multi-bit flips and stuck-at on control commands and sensor scalars |
//! | Timing faults | [`fault::timing`] | output delay between ADA and actuation, frame drops, out-of-order delivery |
//! | Machine-learning faults | [`fault::ml`] | weight noise, weight bit flips, stuck-at neurons in the IL-CNN |
//!
//! Fault *location* selection lives in [`localizer`], *when* to inject in
//! [`trigger`], and the wrapper that applies everything around a driving
//! agent in [`harness`]. [`campaign`] runs seeded, parallel campaigns;
//! [`engine`] flattens whole multi-campaign studies into one
//! deterministic work-stealing queue with streamed
//! [`engine::ProgressSink`] observability, and [`engine::pool`] keeps a
//! persistent [`engine::MultiplexPool`] that multiplexes many
//! concurrently submitted plans onto one shared worker pool (the
//! `avfi-server` campaign service is built on it);
//! [`metrics`] computes the paper's resilience metrics (MSR, VPK, APK,
//! TTV); [`stats`] and [`report`] summarize and render results. The
//! flight recorder (the `avfi-trace` crate) plugs in through
//! [`engine::TraceConfig`]; [`replay`] re-executes any recorded run and
//! verifies bit-identity, [`triage`] walks failed-run traces to
//! attribute each first violation to the injection that preceded it, and
//! [`shrink`] delta-debugs any failed trace into a minimal,
//! replay-verified repro. [`adaptive`] layers a deterministic
//! Thompson-sampling planner above [`engine`]: instead of sweeping the
//! fault grid uniformly it spends a fixed run budget where failures
//! concentrate, proposing batches through `Engine::evaluate_jobs`.
//!
//! ## Quick example
//!
//! ```no_run
//! use avfi_core::campaign::{AgentSpec, CampaignConfig, Campaign};
//! use avfi_core::fault::FaultSpec;
//! use avfi_core::fault::input::{ImageFault, InputFault};
//! use avfi_core::metrics;
//! use avfi_sim::scenario::{Scenario, TownSpec};
//!
//! let scenario = Scenario::builder(TownSpec::grid(3, 3)).build();
//! let config = CampaignConfig::builder(vec![scenario])
//!     .agent(AgentSpec::Expert)
//!     .fault(FaultSpec::Input(InputFault::always(ImageFault::gaussian(0.1))))
//!     .runs_per_scenario(5)
//!     .build();
//! let result = Campaign::new(config).run();
//! println!("MSR = {:.1}%", metrics::mission_success_rate(result.runs()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod campaign;
pub mod compare;
pub mod engine;
pub mod fault;
pub mod harness;
pub mod localizer;
pub mod metrics;
pub mod replay;
pub mod report;
pub mod shrink;
pub mod stats;
pub mod triage;
pub mod trigger;

pub use adaptive::{
    run_adaptive, AdaptiveConfig, AdaptiveOutcome, AdaptivePlanner, AdaptiveSpace,
    AdaptiveTrajectory,
};
pub use campaign::{Campaign, CampaignConfig, CampaignResult, RunResult, TraceSpec};
pub use engine::{
    Engine, MultiplexPool, PlanEvent, PlanTicket, ProgressEvent, ProgressSink, RecoveredSubmission,
    RunSink, StudyResult, TraceConfig, WorkPlan,
};
pub use fault::FaultSpec;
pub use harness::AvDriver;
pub use shrink::{shrink_trace, MinimalRepro, ShrinkConfig, ShrinkOutcome};
pub use trigger::Trigger;
