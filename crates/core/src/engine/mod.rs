//! Deterministic work-stealing execution engine for campaign studies.
//!
//! The paper's evaluation is campaign-*batches*: every figure sweeps fault
//! models × scenarios × repetitions, and follow-up work (Jha et al., DSN
//! 2019) motivates making such sweeps cheap enough to run thousands of
//! experiments. A [`Campaign`](crate::campaign::Campaign) already shards
//! its own runs across threads, but running campaigns one after another
//! leaves cores idle at every campaign boundary (the straggler of each
//! campaign serializes the whole study).
//!
//! This module flattens an entire [`WorkPlan`] — every (study × campaign ×
//! scenario × repetition) tuple — into one shared work queue. Idle workers
//! steal the next item from the queue regardless of which campaign it
//! belongs to, so there are no barriers between campaigns and no idle
//! tail until the very last item. Each item is tagged with its (study,
//! campaign, run) indices and its result is written into a preassigned
//! slot, so reassembled results are **bit-identical for any worker
//! count** — scheduling affects only wall-clock, never output.
//!
//! Progress is streamed through a pluggable [`ProgressSink`]: runs
//! completed, kilometers driven, violations so far, per-campaign
//! completion, and per-worker utilization, so multi-hour campaigns are
//! observable instead of silent. Event *ordering* follows scheduling and
//! is therefore not deterministic; only the returned results are.
//!
//! [`pool`] lifts the same scheme into a *persistent* service shape: a
//! [`MultiplexPool`](pool::MultiplexPool) keeps one long-lived worker
//! pool and multiplexes many independently submitted plans onto it with
//! fair round-robin scheduling and per-plan cancellation, while keeping
//! every plan's results byte-identical to a solo [`Engine::execute`].

use crate::campaign::{
    run_single, run_single_traced, AgentSpec, CampaignConfig, CampaignResult, RunResult, TraceSpec,
};
use avfi_sim::recorder::Recorder;
use avfi_sim::FRAME_DT;
use avfi_trace::TraceLevel;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub mod pool;

pub use pool::{MultiplexPool, PlanEvent, PlanTicket, RecoveredSubmission};

/// One named group of campaigns (e.g. "fig2 input faults").
///
/// Serializable so whole plans can cross the `avfi-server` wire; the
/// neural agent's weights travel inside
/// [`AgentSpec`](crate::campaign::AgentSpec).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyPlan {
    /// Study name, echoed in results and progress events.
    pub name: String,
    /// The campaigns of the study, in output order.
    pub campaigns: Vec<CampaignConfig>,
}

/// A complete execution plan: one or more studies, flattened by the
/// engine into a single work-item queue.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkPlan {
    studies: Vec<StudyPlan>,
}

impl WorkPlan {
    /// An empty plan.
    pub fn new() -> Self {
        WorkPlan::default()
    }

    /// A plan holding a single one-campaign study.
    pub fn single(name: impl Into<String>, campaign: CampaignConfig) -> Self {
        let mut plan = WorkPlan::new();
        plan.add_study(name, vec![campaign]);
        plan
    }

    /// Appends a study (builder style).
    pub fn with_study(mut self, name: impl Into<String>, campaigns: Vec<CampaignConfig>) -> Self {
        self.add_study(name, campaigns);
        self
    }

    /// Appends a study.
    pub fn add_study(&mut self, name: impl Into<String>, campaigns: Vec<CampaignConfig>) {
        self.studies.push(StudyPlan {
            name: name.into(),
            campaigns,
        });
    }

    /// The studies in the plan.
    pub fn studies(&self) -> &[StudyPlan] {
        &self.studies
    }

    /// Total number of campaigns across studies.
    pub fn total_campaigns(&self) -> usize {
        self.studies.iter().map(|s| s.campaigns.len()).sum()
    }

    /// Total number of runs across studies.
    pub fn total_runs(&self) -> usize {
        self.studies
            .iter()
            .flat_map(|s| &s.campaigns)
            .map(CampaignConfig::total_runs)
            .sum()
    }
}

/// Results of one study: the campaigns in plan order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StudyResult {
    /// Study name from the plan.
    pub name: String,
    /// Campaign results, in the study's campaign order.
    pub campaigns: Vec<CampaignResult>,
}

/// A progress event streamed by the engine while a plan executes.
///
/// Events are emitted from worker threads as work completes; their order
/// is scheduling-dependent (only final results are deterministic).
/// Serializable so the campaign server can stream events to watching
/// clients as wire frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProgressEvent {
    /// Execution started.
    Started {
        /// Total runs in the flattened queue.
        total_runs: usize,
        /// Total campaigns across studies.
        campaigns: usize,
        /// Worker threads executing the queue.
        workers: usize,
    },
    /// One run finished.
    RunCompleted {
        /// Study index within the plan.
        study: usize,
        /// Campaign index within the study.
        campaign: usize,
        /// Scenario index within the campaign.
        scenario: usize,
        /// Run index within the scenario.
        run: usize,
        /// Index of the worker that executed the run.
        worker: usize,
        /// Runs completed so far (including this one).
        completed: usize,
        /// Total runs in the queue.
        total: usize,
        /// Kilometers driven by this run.
        km: f64,
        /// Violations recorded by this run.
        violations: usize,
        /// Whether the mission succeeded.
        success: bool,
    },
    /// Every run of one campaign finished.
    CampaignCompleted {
        /// Study index within the plan.
        study: usize,
        /// Campaign index within the study.
        campaign: usize,
        /// The campaign's fault label.
        label: String,
    },
    /// The whole plan finished.
    Finished {
        /// Wall-clock seconds for the plan.
        elapsed: f64,
        /// Per-worker busy fraction (time executing runs / wall-clock),
        /// one entry per worker.
        utilization: Vec<f64>,
        /// Total kilometers driven across all runs.
        total_km: f64,
        /// Total violations across all runs.
        total_violations: usize,
    },
}

/// Consumer of engine progress events.
///
/// Implementations are called concurrently from worker threads and must
/// handle their own synchronization.
pub trait ProgressSink: Sync {
    /// Receives one event.
    fn event(&self, event: &ProgressEvent);
}

/// Discards all events (the default sink).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn event(&self, _event: &ProgressEvent) {}
}

/// Streams progress lines to stderr: a line every `every` completed runs
/// plus campaign completions and a final utilization summary.
#[derive(Debug)]
pub struct StderrProgress {
    every: usize,
    totals: parking_lot::Mutex<(f64, usize)>,
}

impl StderrProgress {
    /// Reports every `every` completed runs (minimum 1).
    pub fn every(every: usize) -> Self {
        StderrProgress {
            every: every.max(1),
            totals: parking_lot::Mutex::new((0.0, 0)),
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::every(1)
    }
}

impl ProgressSink for StderrProgress {
    fn event(&self, event: &ProgressEvent) {
        match event {
            ProgressEvent::Started {
                total_runs,
                campaigns,
                workers,
            } => eprintln!(
                "[engine] {total_runs} runs across {campaigns} campaigns on {workers} workers"
            ),
            ProgressEvent::RunCompleted {
                completed,
                total,
                km,
                violations,
                ..
            } => {
                let mut t = self.totals.lock();
                t.0 += km;
                t.1 += violations;
                if completed % self.every == 0 || completed == total {
                    eprintln!(
                        "[engine] {completed}/{total} runs · {:.2} km · {} violations",
                        t.0, t.1
                    );
                }
            }
            ProgressEvent::CampaignCompleted {
                study,
                campaign,
                label,
            } => eprintln!("[engine] campaign done: study {study} campaign {campaign} ({label})"),
            ProgressEvent::Finished {
                elapsed,
                utilization,
                total_km,
                total_violations,
            } => {
                let util: Vec<String> = utilization
                    .iter()
                    .map(|u| format!("{:.0}%", u * 100.0))
                    .collect();
                eprintln!(
                    "[engine] finished in {elapsed:.2} s · {total_km:.2} km · \
                     {total_violations} violations · worker utilization [{}]",
                    util.join(" ")
                );
            }
        }
    }
}

/// Collects every event (for tests and custom reporting).
#[derive(Debug, Default)]
pub struct CollectSink {
    events: parking_lot::Mutex<Vec<ProgressEvent>>,
}

impl CollectSink {
    /// A new empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Drains the collected events.
    pub fn take(&self) -> Vec<ProgressEvent> {
        std::mem::take(&mut self.events.lock())
    }
}

impl ProgressSink for CollectSink {
    fn event(&self, event: &ProgressEvent) {
        self.events.lock().push(event.clone());
    }
}

/// Consumer of durable run completions: the write-ahead seam the
/// `avfi-store` crate plugs into. Where [`ProgressSink`] streams
/// observability events, a `RunSink` receives the *payloads* — each
/// finished run's [`RunResult`] (and trace, when one was recorded) keyed
/// by flat plan index, plus the plan's terminal phase — so an
/// implementation can journal them to disk as they happen.
///
/// Implementations are called concurrently from worker threads and must
/// handle their own synchronization. The engine calls `run_completed`
/// *before* publishing the result to its in-memory slot, so a journal
/// record always exists for any run the engine counts as finished.
pub trait RunSink: Sync {
    /// One run finished: its flat-plan index, result, and trace (if the
    /// flight recorder emitted one).
    fn run_completed(
        &self,
        flat_index: usize,
        result: &RunResult,
        trace: Option<&avfi_trace::RunTrace>,
    );

    /// The plan reached a terminal phase (`"completed"`, `"cancelled"`,
    /// `"failed"`). Called at most once.
    fn plan_terminal(&self, phase: &str) {
        let _ = phase;
    }
}

/// A flattened work item: one (study, campaign, scenario, run) tuple.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkItem {
    /// Study index within the plan.
    pub(crate) study: usize,
    /// Campaign index within the study.
    pub(crate) campaign: usize,
    /// Campaign index within the flattened campaign list.
    pub(crate) flat_campaign: usize,
    /// Scenario index within the campaign.
    pub(crate) scenario: usize,
    /// Run index within the scenario.
    pub(crate) run: usize,
}

/// Flattens a plan into its work-item queue, in plan order. Both the
/// one-shot [`Engine`] and the persistent [`pool::MultiplexPool`] drain
/// queues built here, so "flat plan index" means the same thing — and
/// derives the same per-run seeds — in both execution modes.
pub(crate) fn flatten_items(plan: &WorkPlan) -> Vec<WorkItem> {
    let mut items = Vec::with_capacity(plan.total_runs());
    let mut flat = 0usize;
    for (study_idx, study) in plan.studies.iter().enumerate() {
        for (campaign_idx, cfg) in study.campaigns.iter().enumerate() {
            for scenario in 0..cfg.scenarios.len() {
                for run in 0..cfg.runs_per_scenario {
                    items.push(WorkItem {
                        study: study_idx,
                        campaign: campaign_idx,
                        flat_campaign: flat,
                        scenario,
                        run,
                    });
                }
            }
            flat += 1;
        }
    }
    items
}

/// Per-flat-campaign trace specs for a plan (study name + weights
/// fingerprint are campaign-level facts; computing them once keeps them
/// off the per-run path).
pub(crate) fn plan_trace_specs(
    plan: &WorkPlan,
    level: TraceLevel,
    blackbox_frames: usize,
) -> Vec<TraceSpec> {
    plan.studies
        .iter()
        .flat_map(|study| {
            study.campaigns.iter().map(|cfg| TraceSpec {
                level,
                study: study.name.clone(),
                blackbox_frames,
                weights_fingerprint: match &cfg.agent {
                    AgentSpec::Neural { weights } => Some(avfi_trace::fingerprint(weights)),
                    AgentSpec::Expert => None,
                },
            })
        })
        .collect()
}

/// Deterministic reassembly: `runs` was produced in flat-plan order, so
/// draining it campaign by campaign restores (scenario, run) order
/// within each campaign exactly as the sequential path produces. Public
/// because the `avfi-store` crate reassembles journaled results the same
/// way — byte identity between the two paths is the resume contract.
pub fn assemble_results(plan: &WorkPlan, runs: Vec<RunResult>) -> Vec<StudyResult> {
    let mut rest = runs.into_iter();
    plan.studies
        .iter()
        .map(|study| StudyResult {
            name: study.name.clone(),
            campaigns: study
                .campaigns
                .iter()
                .map(|cfg| {
                    CampaignResult::from_runs(
                        cfg.fault.label(),
                        cfg.agent.name().to_string(),
                        rest.by_ref().take(cfg.total_runs()).collect(),
                    )
                })
                .collect(),
        })
        .collect()
}

/// Flight-recorder configuration for an engine execution.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Directory trace files are written into (created on demand).
    pub dir: PathBuf,
    /// Detail level ([`TraceLevel::Off`] disables tracing entirely).
    pub level: TraceLevel,
    /// Black-box window length: the ring keeps the last this-many seconds
    /// of frames per run.
    pub blackbox_seconds: f64,
}

impl TraceConfig {
    /// A config at `level` writing into `dir`, with the default 30 s
    /// black-box window.
    pub fn new(dir: impl Into<PathBuf>, level: TraceLevel) -> Self {
        TraceConfig {
            dir: dir.into(),
            level,
            blackbox_seconds: 30.0,
        }
    }

    /// The black-box window in frames (at least 1).
    pub fn blackbox_frames(&self) -> usize {
        ((self.blackbox_seconds / FRAME_DT).ceil() as usize).max(1)
    }
}

/// One ad-hoc evaluation job: a fully specified run at explicit
/// `(scenario, run)` coordinates, outside any campaign plan.
///
/// The shrinker uses these to re-execute reduction candidates while
/// holding the coordinates of the original failing run fixed, so every
/// candidate derives its seed through the exact path the recorded run
/// took.
#[derive(Debug, Clone)]
pub struct EvalJob {
    /// Scenario template (the per-run seed is derived from it).
    pub scenario: avfi_sim::scenario::Scenario,
    /// Scenario index mixed into the seed derivation.
    pub scenario_index: usize,
    /// Run index mixed into the seed derivation.
    pub run_index: usize,
    /// Fault plan for the run.
    pub fault: crate::fault::FaultSpec,
}

/// The execution engine: worker count, optional tracing, plan execution.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    workers: usize,
    trace: Option<TraceConfig>,
}

impl Engine {
    /// An engine with automatic worker count (one per available core).
    pub fn new() -> Self {
        Engine::default()
    }

    /// Sets the worker-thread count (0 = one per available core).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Turns on the flight recorder. Trace files are routed by **flat
    /// plan index** (`run-000042.avtr` = the 43rd item of the flattened
    /// queue), so the emitted file set is identical for any worker count.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The worker count `execute` would use for `total` queued runs.
    pub fn effective_workers(&self, total: usize) -> usize {
        let auto = if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        };
        auto.min(total).max(1)
    }

    /// Executes a plan silently.
    pub fn execute(&self, plan: &WorkPlan) -> Vec<StudyResult> {
        self.execute_with(plan, &NullSink)
    }

    /// Evaluates ad-hoc jobs across the worker pool, returning
    /// `(result, trace)` pairs **in job order** regardless of worker
    /// count — the same cursor/preassigned-slot scheme as
    /// [`Engine::execute_with`], so scheduling affects only wall-clock.
    ///
    /// Every job runs with the flight recorder on at `spec.level`
    /// (at `Blackbox`, the trace is `Some` only for failed runs). Nothing
    /// is written to disk and the engine's own [`TraceConfig`] is
    /// ignored: callers own the traces.
    pub fn evaluate_jobs(
        &self,
        jobs: &[EvalJob],
        agent: &AgentSpec,
        spec: &TraceSpec,
    ) -> Vec<(RunResult, Option<avfi_trace::RunTrace>)> {
        let total = jobs.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.effective_workers(total);
        type Slot = parking_lot::Mutex<Option<(RunResult, Option<avfi_trace::RunTrace>)>>;
        let slots: Vec<Slot> = (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        {
            let (slots, next) = (&slots, &next);
            crossbeam::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move |_| {
                        let mut recorder = if spec.level == TraceLevel::Blackbox {
                            Recorder::ring(spec.blackbox_frames.max(1))
                        } else {
                            Recorder::new(false)
                        };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let job = &jobs[i];
                            let out = run_single_traced(
                                &job.scenario,
                                job.scenario_index,
                                job.run_index,
                                &job.fault,
                                agent,
                                spec,
                                &mut recorder,
                            );
                            *slots[i].lock() = Some(out);
                        }
                    });
                }
            })
            .expect("evaluation worker panicked");
        }
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all jobs completed"))
            .collect()
    }

    /// Executes every run of `plan` across the worker pool, streaming
    /// progress into `sink`, and reassembles results in plan order.
    ///
    /// Results are bit-identical for any worker count: each run derives
    /// its seed from its (campaign template, scenario, run) coordinates
    /// and lands in a preassigned slot.
    pub fn execute_with(&self, plan: &WorkPlan, sink: &dyn ProgressSink) -> Vec<StudyResult> {
        self.execute_resumed(plan, Vec::new(), sink, None)
    }

    /// [`Engine::execute_with`], resumed: `prefilled` results (keyed by
    /// flat plan index — e.g. recovered from an `avfi-store` journal)
    /// slot straight into their preassigned positions and only the
    /// remaining items fan out across the workers. Each completing run is
    /// also reported to `spool` (before it is published in-memory), which
    /// is how the write-ahead journal observes execution.
    ///
    /// Because every run's output depends only on its flat-plan
    /// coordinates and results assemble in flat-plan order, the returned
    /// results are **byte-identical** to an uninterrupted
    /// [`Engine::execute`] of the same plan, for any worker count and any
    /// prefilled subset. Out-of-range or duplicate prefilled indices are
    /// ignored (first entry wins).
    pub fn execute_resumed(
        &self,
        plan: &WorkPlan,
        prefilled: Vec<(usize, RunResult)>,
        sink: &dyn ProgressSink,
        spool: Option<&dyn RunSink>,
    ) -> Vec<StudyResult> {
        let campaigns: Vec<&CampaignConfig> =
            plan.studies.iter().flat_map(|s| &s.campaigns).collect();
        let items = flatten_items(plan);
        let total = items.len();

        let slots: Vec<parking_lot::Mutex<Option<RunResult>>> =
            (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
        let mut campaign_prefilled = vec![0usize; campaigns.len()];
        let mut prefilled_count = 0usize;
        for (idx, result) in prefilled {
            if idx >= total {
                continue;
            }
            let mut slot = slots[idx].lock();
            if slot.is_none() {
                *slot = Some(result);
                campaign_prefilled[items[idx].flat_campaign] += 1;
                prefilled_count += 1;
            }
        }
        // The work queue is only the unfilled indices, still in flat-plan
        // order; scheduling over it cannot affect where results land.
        let pending: Vec<usize> = (0..total).filter(|&i| slots[i].lock().is_none()).collect();

        let workers = self.effective_workers(pending.len());
        sink.event(&ProgressEvent::Started {
            total_runs: total,
            campaigns: campaigns.len(),
            workers,
        });

        let trace_cfg = self.trace.as_ref().filter(|t| t.level != TraceLevel::Off);
        let trace_specs: Option<Vec<TraceSpec>> =
            trace_cfg.map(|tc| plan_trace_specs(plan, tc.level, tc.blackbox_frames()));
        let trace_specs = trace_specs.as_deref();

        let remaining: Vec<AtomicUsize> = campaigns
            .iter()
            .zip(&campaign_prefilled)
            .map(|(c, &done)| AtomicUsize::new(c.total_runs() - done))
            .collect();
        let busy: Vec<parking_lot::Mutex<f64>> =
            (0..workers).map(|_| parking_lot::Mutex::new(0.0)).collect();
        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(prefilled_count);
        let started = Instant::now();

        if !pending.is_empty() {
            // Shared references for the worker closures.
            let (items, pending, campaigns, slots, remaining, busy, next, completed) = (
                &items, &pending, &campaigns, &slots, &remaining, &busy, &next, &completed,
            );
            crossbeam::scope(|scope| {
                for (worker, busy_slot) in busy.iter().enumerate() {
                    scope.spawn(move |_| {
                        // One reusable capture buffer per worker: the ring
                        // is allocated once and reset between runs.
                        let mut recorder = match trace_cfg {
                            Some(tc) if tc.level == TraceLevel::Blackbox => {
                                Recorder::ring(tc.blackbox_frames())
                            }
                            _ => Recorder::new(false),
                        };
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= pending.len() {
                                break;
                            }
                            let i = pending[k];
                            let item = items[i];
                            let cfg = campaigns[item.flat_campaign];
                            let t0 = Instant::now();
                            let (result, trace) = match (trace_cfg, trace_specs) {
                                (Some(tc), Some(specs)) => {
                                    let (result, trace) = run_single_traced(
                                        &cfg.scenarios[item.scenario],
                                        item.scenario,
                                        item.run,
                                        &cfg.fault,
                                        &cfg.agent,
                                        &specs[item.flat_campaign],
                                        &mut recorder,
                                    );
                                    if let Some(trace) = &trace {
                                        avfi_trace::write_trace_file(&tc.dir, i, trace)
                                            .unwrap_or_else(|e| {
                                                panic!("cannot write trace for run {i}: {e}")
                                            });
                                    }
                                    (result, trace)
                                }
                                _ => (
                                    run_single(
                                        &cfg.scenarios[item.scenario],
                                        item.scenario,
                                        item.run,
                                        &cfg.fault,
                                        &cfg.agent,
                                    ),
                                    None,
                                ),
                            };
                            // Journal before publishing: any run the
                            // engine counts as done has a durable record.
                            if let Some(spool) = spool {
                                spool.run_completed(i, &result, trace.as_ref());
                            }
                            *busy_slot.lock() += t0.elapsed().as_secs_f64();
                            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                            sink.event(&ProgressEvent::RunCompleted {
                                study: item.study,
                                campaign: item.campaign,
                                scenario: item.scenario,
                                run: item.run,
                                worker,
                                completed: done,
                                total,
                                km: result.distance_km,
                                violations: result.violations.len(),
                                success: result.outcome.is_success(),
                            });
                            *slots[i].lock() = Some(result);
                            if remaining[item.flat_campaign].fetch_sub(1, Ordering::AcqRel) == 1 {
                                sink.event(&ProgressEvent::CampaignCompleted {
                                    study: item.study,
                                    campaign: item.campaign,
                                    label: cfg.fault.label(),
                                });
                            }
                        }
                    });
                }
            })
            .expect("engine worker panicked");
        }

        let elapsed = started.elapsed().as_secs_f64();
        let runs: Vec<RunResult> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all runs completed"))
            .collect();
        sink.event(&ProgressEvent::Finished {
            elapsed,
            utilization: busy
                .iter()
                .map(|b| (*b.lock() / elapsed.max(1e-12)).min(1.0))
                .collect(),
            total_km: runs.iter().map(|r| r.distance_km).sum(),
            total_violations: runs.iter().map(|r| r.violations.len()).sum(),
        });
        if let Some(spool) = spool {
            spool.plan_terminal("completed");
        }

        assemble_results(plan, runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AgentSpec, Campaign, CampaignConfig};
    use crate::fault::timing::TimingFault;
    use crate::fault::FaultSpec;
    use avfi_sim::scenario::{Scenario, TownSpec};

    fn quick_scenario(seed: u64) -> Scenario {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(15.0)
            .min_route_length(50.0)
            .build()
    }

    fn campaign(seed: u64, fault: FaultSpec) -> CampaignConfig {
        CampaignConfig::builder(vec![quick_scenario(seed), quick_scenario(seed + 1)])
            .runs_per_scenario(2)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build()
    }

    fn two_study_plan() -> WorkPlan {
        WorkPlan::new()
            .with_study("baseline", vec![campaign(40, FaultSpec::None)])
            .with_study(
                "timing",
                vec![
                    campaign(
                        40,
                        FaultSpec::Timing(TimingFault::OutputDelay { frames: 8 }),
                    ),
                    campaign(44, FaultSpec::None),
                ],
            )
    }

    #[test]
    fn plan_counts() {
        let plan = two_study_plan();
        assert_eq!(plan.total_campaigns(), 3);
        assert_eq!(plan.total_runs(), 12);
    }

    #[test]
    fn engine_matches_sequential_campaigns() {
        // The flattened queue must reproduce exactly what running each
        // campaign through `Campaign::run` produces.
        let plan = two_study_plan();
        let engine = Engine::new().workers(3).execute(&plan);
        for (study, plan_study) in engine.iter().zip(plan.studies()) {
            for (got, cfg) in study.campaigns.iter().zip(&plan_study.campaigns) {
                let want = Campaign::new(cfg.clone()).run();
                assert_eq!(
                    serde_json::to_string(got).unwrap(),
                    serde_json::to_string(&want).unwrap()
                );
            }
        }
    }

    #[test]
    fn progress_events_cover_every_run() {
        let plan = two_study_plan();
        let sink = CollectSink::new();
        Engine::new().workers(2).execute_with(&plan, &sink);
        let events = sink.take();
        let runs = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::RunCompleted { .. }))
            .count();
        let campaigns = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::CampaignCompleted { .. }))
            .count();
        assert_eq!(runs, plan.total_runs());
        assert_eq!(campaigns, plan.total_campaigns());
        assert!(matches!(
            events.first(),
            Some(ProgressEvent::Started { .. })
        ));
        let finished = events.last().expect("finished event");
        match finished {
            ProgressEvent::Finished { utilization, .. } => {
                assert_eq!(utilization.len(), 2);
                for u in utilization {
                    assert!((0.0..=1.0).contains(u));
                }
            }
            other => panic!("last event should be Finished, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_jobs_is_worker_count_invariant_and_job_ordered() {
        use crate::campaign::TraceSpec;
        use crate::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
        let stuck = FaultSpec::Hardware(HardwareFault::always(
            HardwareTarget::ControlBrake,
            BitFaultModel::StuckAt { value: 1.0 },
        ));
        // Roomy budget: the clean expert run must genuinely finish the
        // mission, so only the stuck-brake jobs fail.
        let scenario = quick_scenario(60).to_builder().time_budget(60.0).build();
        let jobs: Vec<EvalJob> = (0..5)
            .map(|i| EvalJob {
                scenario: scenario.clone(),
                scenario_index: 2,
                run_index: 3,
                fault: if i % 2 == 0 {
                    stuck.clone()
                } else {
                    FaultSpec::None
                },
            })
            .collect();
        let spec = TraceSpec {
            level: avfi_trace::TraceLevel::Blackbox,
            study: "eval".to_string(),
            blackbox_frames: 64,
            weights_fingerprint: None,
        };
        let r1 = Engine::new()
            .workers(1)
            .evaluate_jobs(&jobs, &AgentSpec::Expert, &spec);
        let r8 = Engine::new()
            .workers(8)
            .evaluate_jobs(&jobs, &AgentSpec::Expert, &spec);
        assert_eq!(r1.len(), 5);
        for ((res1, tr1), (res8, tr8)) in r1.iter().zip(&r8) {
            assert_eq!(
                serde_json::to_string(res1).unwrap(),
                serde_json::to_string(res8).unwrap()
            );
            assert_eq!(tr1, tr8, "traces must be worker-count invariant");
        }
        // Stuck-brake jobs fail and carry a blackbox trace; clean runs
        // emit none. Seeds come from the explicit coordinates.
        assert!(r1[0].1.is_some());
        assert!(r1[1].1.is_none());
        let header = &r1[0].1.as_ref().unwrap().header;
        assert_eq!(header.scenario_index, 2);
        assert_eq!(header.run_index, 3);
        assert_eq!(header.seed, header.derived_seed());
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(Engine::new().workers(8).effective_workers(3), 3);
        assert_eq!(Engine::new().workers(2).effective_workers(100), 2);
        assert!(Engine::new().effective_workers(100) >= 1);
        assert_eq!(Engine::new().workers(5).effective_workers(0), 1);
    }
}
