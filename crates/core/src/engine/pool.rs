//! Persistent multiplexing worker pool: many plans, one pool.
//!
//! [`Engine::execute`](super::Engine::execute) is one-shot — it spins
//! workers up, drains one plan, and tears them down. A fault-injection
//! *service* instead keeps one long-lived pool and lets many clients
//! submit [`WorkPlan`]s concurrently. This module provides that shape:
//!
//! * [`MultiplexPool`] owns the worker threads for the life of the
//!   process. [`MultiplexPool::submit`] enqueues a plan and returns a
//!   [`PlanTicket`] immediately.
//! * **Fair round-robin scheduling**: active plans sit in a rotation;
//!   each claim grants one run from the front plan and sends it to the
//!   back, so an 8-run plan submitted next to an 8 000-run plan makes
//!   progress every cycle instead of queueing behind it.
//! * **Per-plan cancellation**: [`PlanTicket::cancel`] drops a plan's
//!   unclaimed runs; the cooperative check in the worker drain loop skips
//!   claimed-but-unstarted runs, and in-flight runs finish. Lifecycle
//!   transitions go through the
//!   [`PlanLifecycle`](avfi_net::proto::PlanLifecycle) state machine.
//! * **Plan-tagged events**: every [`ProgressEvent`] lands in the plan's
//!   own ordered log as a [`PlanEvent`] `{plan, seq, event}`, so watchers
//!   replay/follow a single plan without seeing its neighbors. The
//!   `Finished` event's `utilization` is empty in service mode — workers
//!   are shared, so a per-plan per-worker busy fraction has no meaning.
//!
//! **Determinism survives multiplexing.** A run's output depends only on
//! its (campaign template, scenario index, run index) coordinates — the
//! same [`run_single`] call the one-shot engine makes — and results land
//! in slots preassigned by flat plan index, reassembled by the same
//! [`assemble_results`](super::assemble_results). Scheduling (worker
//! count, rotation order, neighbor plans) affects only wall-clock, so a
//! plan's results are **byte-identical** to a solo
//! [`Engine::execute`](super::Engine::execute) of the same plan.

use super::{
    assemble_results, flatten_items, plan_trace_specs, ProgressEvent, RunSink, StudyResult,
    WorkItem, WorkPlan,
};
use crate::campaign::{run_single, run_single_traced, CampaignConfig, RunResult, TraceSpec};
use avfi_net::proto::{PlanId, PlanLifecycle, PlanPhase};
use avfi_sim::recorder::Recorder;
use avfi_sim::FRAME_DT;
use avfi_trace::{RunTrace, TraceLevel};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One plan-tagged progress event: the `seq`-th event of plan `plan`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanEvent {
    /// The plan the event belongs to.
    pub plan: PlanId,
    /// Sequence number within the plan's event log (0-based, dense).
    pub seq: usize,
    /// The engine progress event.
    pub event: ProgressEvent,
}

/// The persistent pool: long-lived workers multiplexing every submitted
/// plan. Dropping the pool without calling [`MultiplexPool::shutdown`]
/// detaches the workers (the daemon normally lives as long as the
/// process); `shutdown` cancels queued plans and joins the threads.
#[derive(Debug)]
pub struct MultiplexPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

#[derive(Debug)]
struct PoolShared {
    workers: usize,
    sched: Mutex<Sched>,
    work_ready: Condvar,
    next_plan_id: AtomicU64,
    /// Claim journal: (plan, flat index) in global claim order (claims
    /// are serialized by the scheduler lock, so this is a total order).
    /// Scheduling observability for fairness tests and diagnostics.
    journal: parking_lot::Mutex<Vec<(PlanId, usize)>>,
}

#[derive(Debug)]
struct Sched {
    /// Plans with unclaimed runs, in rotation order.
    active: VecDeque<Arc<PlanRun>>,
    paused: bool,
    shutdown: bool,
}

/// The plan's durable spool, type-erased: an `avfi-store` journal the
/// workers report each completed run (and the terminal phase) into.
struct SpoolHandle(Arc<dyn RunSink + Send + Sync>);

impl fmt::Debug for SpoolHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SpoolHandle(..)")
    }
}

/// Everything a plan submission can carry; the single funnel every
/// public `submit_*` variant normalizes into.
struct Submission {
    plan: WorkPlan,
    level: TraceLevel,
    blackbox_seconds: f64,
    id: PlanId,
    /// Already-known results by flat index (recovered from a journal).
    prefilled: Vec<(usize, RunResult)>,
    /// Already-known traces by flat index (recovered from spooled files).
    traces: Vec<(usize, RunTrace)>,
    /// Journaled terminal phase: skip execution, reload as terminal state.
    terminal: Option<PlanPhase>,
    spool: Option<Arc<dyn RunSink + Send + Sync>>,
}

/// A plan recovered from an `avfi-store` journal, re-submitted under its
/// original id with whatever the journal preserved. Built by the server's
/// spool recovery scan; see [`MultiplexPool::submit_recovered`].
pub struct RecoveredSubmission {
    /// The recovered plan, parsed back from the journaled submission.
    pub plan: WorkPlan,
    /// Trace level the plan was originally submitted with.
    pub level: TraceLevel,
    /// Blackbox ring length in seconds (ignored unless `level` is
    /// `Blackbox`).
    pub blackbox_seconds: f64,
    /// The plan's **original** id — results stay fetchable under the
    /// handle the client already holds.
    pub id: PlanId,
    /// Journaled run results by flat plan index.
    pub prefilled: Vec<(usize, RunResult)>,
    /// Traces reloaded from spooled `.avtr` files, by flat plan index.
    pub traces: Vec<(usize, RunTrace)>,
    /// Journaled terminal phase, if the plan already finished: the plan
    /// reloads as fetchable terminal state without executing anything.
    pub terminal: Option<PlanPhase>,
    /// Journal to keep appending to while the gap re-executes.
    pub spool: Option<Arc<dyn RunSink + Send + Sync>>,
}

impl fmt::Debug for RecoveredSubmission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveredSubmission")
            .field("id", &self.id)
            .field("level", &self.level)
            .field("prefilled", &self.prefilled.len())
            .field("traces", &self.traces.len())
            .field("terminal", &self.terminal)
            .finish_non_exhaustive()
    }
}

/// Shared state of one submitted plan.
#[derive(Debug)]
struct PlanRun {
    id: PlanId,
    plan: WorkPlan,
    items: Vec<WorkItem>,
    /// Campaigns in flat order (owned copies so the submitting client
    /// can disconnect while the plan runs).
    campaigns: Vec<CampaignConfig>,
    /// Per-flat-campaign runs left, for `CampaignCompleted` events.
    remaining: Vec<AtomicUsize>,
    trace_specs: Option<Vec<TraceSpec>>,
    /// Flat indices still to execute, in flat-plan order. The whole plan
    /// for a fresh submission; only the unjournaled gap for a recovered
    /// one.
    pending: Vec<usize>,
    /// Claim cursor into `pending`; mutated only under the scheduler
    /// lock.
    next: AtomicUsize,
    /// Claimed but not yet finished (executed or skipped).
    outstanding: AtomicUsize,
    /// Runs actually executed.
    executed: AtomicUsize,
    cancelled: AtomicBool,
    started: AtomicBool,
    finalized: AtomicBool,
    /// Result/trace payloads dropped by retention eviction (lifecycle
    /// status stays queryable).
    evicted: AtomicBool,
    submitted_at: Instant,
    /// Set once, when the plan reaches a terminal phase — the clock
    /// retention sweeps measure against.
    finished_at: parking_lot::Mutex<Option<Instant>>,
    /// Result slots preassigned by flat plan index.
    slots: Vec<parking_lot::Mutex<Option<RunResult>>>,
    /// Collected traces, keyed by flat plan index (sorted at finalize).
    traces: parking_lot::Mutex<Vec<(usize, RunTrace)>>,
    /// Durable spool (write-ahead journal), when the plan is persisted.
    spool: Option<SpoolHandle>,
    state: Mutex<PlanState>,
    state_changed: Condvar,
}

#[derive(Debug)]
struct PlanState {
    lifecycle: PlanLifecycle,
    events: Vec<PlanEvent>,
    results: Option<Vec<StudyResult>>,
}

impl PlanRun {
    fn total(&self) -> usize {
        self.items.len()
    }

    fn push_event(&self, event: ProgressEvent) {
        let mut st = self.state.lock().expect("plan state lock");
        let seq = st.events.len();
        st.events.push(PlanEvent {
            plan: self.id,
            seq,
            event,
        });
        drop(st);
        self.state_changed.notify_all();
    }

    /// Queued → Running on the first claimed run.
    fn mark_running(&self) {
        if !self.started.swap(true, Ordering::AcqRel) {
            self.state
                .lock()
                .expect("plan state lock")
                .lifecycle
                .advance_if_legal(PlanPhase::Running);
        }
    }
}

/// Moves a plan into a terminal phase exactly once: assembles results
/// (for `Completed`), sorts traces, appends the `Finished` event, and
/// wakes every waiter.
fn finalize(run: &PlanRun, phase: PlanPhase) {
    if run.finalized.swap(true, Ordering::AcqRel) {
        return;
    }
    let mut st = run.state.lock().expect("plan state lock");
    if phase == PlanPhase::Completed {
        let runs: Vec<RunResult> = run
            .slots
            .iter()
            .map(|slot| slot.lock().take().expect("all runs completed"))
            .collect();
        let elapsed = run.submitted_at.elapsed().as_secs_f64();
        let seq = st.events.len();
        st.events.push(PlanEvent {
            plan: run.id,
            seq,
            event: ProgressEvent::Finished {
                elapsed,
                utilization: Vec::new(),
                total_km: runs.iter().map(|r| r.distance_km).sum(),
                total_violations: runs.iter().map(|r| r.violations.len()).sum(),
            },
        });
        st.results = Some(assemble_results(&run.plan, runs));
        run.traces.lock().sort_by_key(|(idx, _)| *idx);
    }
    // Cancel-before-start legally jumps Queued → Cancelled; a cancel
    // racing completion loses quietly and the plan stays Completed.
    let actual = st.lifecycle.advance_if_legal(phase);
    drop(st);
    *run.finished_at.lock() = Some(Instant::now());
    if let Some(spool) = &run.spool {
        spool.0.plan_terminal(actual.name());
    }
    run.state_changed.notify_all();
}

/// Client handle to one submitted plan. Cloneable; all clones observe the
/// same plan.
#[derive(Debug, Clone)]
pub struct PlanTicket {
    run: Arc<PlanRun>,
    shared: Arc<PoolShared>,
}

impl PlanTicket {
    /// The server-assigned plan id.
    pub fn id(&self) -> PlanId {
        self.run.id
    }

    /// Total runs the plan flattens to.
    pub fn total_runs(&self) -> usize {
        self.run.total()
    }

    /// Runs executed so far.
    pub fn completed_runs(&self) -> usize {
        self.run.executed.load(Ordering::Acquire)
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> PlanPhase {
        self.run
            .state
            .lock()
            .expect("plan state lock")
            .lifecycle
            .phase()
    }

    /// Cancels the plan: unclaimed runs are dropped, claimed-but-unstarted
    /// runs are skipped by the workers' cooperative check, in-flight runs
    /// finish. Returns the phase after the cancel took effect — a plan
    /// that already completed stays [`PlanPhase::Completed`].
    pub fn cancel(&self) -> PlanPhase {
        self.run.cancelled.store(true, Ordering::Release);
        {
            let mut sched = self.shared.sched.lock().expect("pool sched lock");
            sched.active.retain(|p| p.id != self.run.id);
        }
        // Idle at cancel time (queued, or every claimed run already
        // finished): nobody else will finalize, do it here.
        if self.run.outstanding.load(Ordering::Acquire) == 0
            && self.run.executed.load(Ordering::Acquire) < self.run.total()
        {
            finalize(&self.run, PlanPhase::Cancelled);
        }
        self.phase()
    }

    /// Blocks until the plan reaches a terminal phase and returns it.
    pub fn wait_terminal(&self) -> PlanPhase {
        let mut st = self.run.state.lock().expect("plan state lock");
        while !st.lifecycle.phase().is_terminal() {
            st = self.run.state_changed.wait(st).expect("plan state lock");
        }
        st.lifecycle.phase()
    }

    /// The plan's results: `Some` once [`PlanPhase::Completed`], `None`
    /// otherwise (including cancelled plans).
    pub fn results(&self) -> Option<Vec<StudyResult>> {
        self.run
            .state
            .lock()
            .expect("plan state lock")
            .results
            .clone()
    }

    /// Blocks until terminal, then returns the results (`None` unless the
    /// plan completed).
    pub fn wait_results(&self) -> Option<Vec<StudyResult>> {
        self.wait_terminal();
        self.results()
    }

    /// The traces collected so far, keyed and (after completion) sorted
    /// by flat plan index.
    pub fn traces(&self) -> Vec<(usize, RunTrace)> {
        self.run.traces.lock().clone()
    }

    /// Time since the plan reached a terminal phase, `None` while it is
    /// still queued or running — the age a retention sweep compares
    /// against its cutoff.
    pub fn finished_elapsed(&self) -> Option<std::time::Duration> {
        self.run.finished_at.lock().map(|at| at.elapsed())
    }

    /// `true` once [`PlanTicket::evict_payloads`] dropped this plan's
    /// result and trace payloads.
    pub fn is_evicted(&self) -> bool {
        self.run.evicted.load(Ordering::Acquire)
    }

    /// Drops the plan's result and trace payloads to reclaim memory,
    /// keeping the lifecycle status (phase, run counters, event log)
    /// queryable. Only terminal plans can be evicted — a plan still
    /// queued or running is left untouched and `false` is returned.
    /// Idempotent; returns `true` once eviction has happened.
    pub fn evict_payloads(&self) -> bool {
        let mut st = self.run.state.lock().expect("plan state lock");
        if !st.lifecycle.phase().is_terminal() {
            return false;
        }
        st.results = None;
        drop(st);
        self.run.traces.lock().clear();
        self.run.evicted.store(true, Ordering::Release);
        true
    }

    /// Snapshot of the event log from sequence number `from` on, plus the
    /// current phase.
    pub fn events_after(&self, from: usize) -> (Vec<PlanEvent>, PlanPhase) {
        let st = self.run.state.lock().expect("plan state lock");
        let events = st.events.get(from..).unwrap_or_default().to_vec();
        (events, st.lifecycle.phase())
    }

    /// Blocks until the log grows past `from` or the plan is terminal,
    /// then returns the new events and the phase. An empty event list
    /// with a terminal phase means the stream is exhausted.
    pub fn wait_events_after(&self, from: usize) -> (Vec<PlanEvent>, PlanPhase) {
        let mut st = self.run.state.lock().expect("plan state lock");
        while st.events.len() <= from && !st.lifecycle.phase().is_terminal() {
            st = self.run.state_changed.wait(st).expect("plan state lock");
        }
        let events = st.events.get(from..).unwrap_or_default().to_vec();
        (events, st.lifecycle.phase())
    }
}

impl MultiplexPool {
    /// A running pool with `workers` threads (0 = one per available
    /// core).
    pub fn new(workers: usize) -> Self {
        Self::build(workers, false)
    }

    /// A pool whose workers idle until [`MultiplexPool::resume`] — lets
    /// tests (and warm-up phases) stage several plans and then release
    /// them under a known rotation.
    pub fn paused(workers: usize) -> Self {
        Self::build(workers, true)
    }

    fn build(workers: usize, paused: bool) -> Self {
        let workers = if workers > 0 {
            workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        };
        let shared = Arc::new(PoolShared {
            workers,
            sched: Mutex::new(Sched {
                active: VecDeque::new(),
                paused,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            next_plan_id: AtomicU64::new(0),
            journal: parking_lot::Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("avfi-pool-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn pool worker")
            })
            .collect();
        MultiplexPool { shared, handles }
    }

    /// The pool's worker-thread count.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Releases a [`MultiplexPool::paused`] pool's workers.
    pub fn resume(&self) {
        self.shared.sched.lock().expect("pool sched lock").paused = false;
        self.shared.work_ready.notify_all();
    }

    /// Submits a plan without tracing; returns its ticket immediately.
    pub fn submit(&self, plan: WorkPlan) -> PlanTicket {
        self.submit_traced(plan, TraceLevel::Off, 30.0)
    }

    /// Submits a plan with the flight recorder at `level` (`Off` disables
    /// it); at [`TraceLevel::Blackbox`] the ring keeps the last
    /// `blackbox_seconds` of frames. Traces stay in memory on the plan
    /// ([`PlanTicket::traces`]) — the service owns persistence.
    pub fn submit_traced(
        &self,
        plan: WorkPlan,
        level: TraceLevel,
        blackbox_seconds: f64,
    ) -> PlanTicket {
        let id = self.allocate_id();
        self.submit_full(Submission {
            plan,
            level,
            blackbox_seconds,
            id,
            prefilled: Vec::new(),
            traces: Vec::new(),
            terminal: None,
            spool: None,
        })
    }

    /// [`MultiplexPool::submit_traced`] with a durable spool attached:
    /// the pool assigns the plan id first, hands it to `make_spool` (the
    /// server creates the plan's journal file there, named by id, and
    /// writes the `PlanSubmitted` record), and only then lets the plan
    /// enter the rotation — so every run a worker executes already has a
    /// journal to land in. A factory returning `None` (e.g. on an I/O
    /// failure it chose to swallow) submits the plan unspooled.
    pub fn submit_spooled(
        &self,
        plan: WorkPlan,
        level: TraceLevel,
        blackbox_seconds: f64,
        make_spool: impl FnOnce(PlanId) -> Option<Arc<dyn RunSink + Send + Sync>>,
    ) -> PlanTicket {
        let id = self.allocate_id();
        let spool = make_spool(id);
        self.submit_full(Submission {
            plan,
            level,
            blackbox_seconds,
            id,
            prefilled: Vec::new(),
            traces: Vec::new(),
            terminal: None,
            spool,
        })
    }

    /// Re-submits a plan recovered from an `avfi-store` journal under its
    /// **original** id: journaled results slot straight into their
    /// preassigned positions, recovered traces re-attach, and only the
    /// unjournaled gap fans out across the workers — so the final
    /// results are byte-identical to an uninterrupted run ([`Engine`]'s
    /// resume argument, lifted into the pool). Call
    /// [`MultiplexPool::reserve_plan_ids`] with the highest recovered id
    /// first so fresh submissions never collide.
    ///
    /// [`Engine`]: super::Engine
    pub fn submit_recovered(&self, sub: RecoveredSubmission) -> PlanTicket {
        self.shared
            .next_plan_id
            .fetch_max(sub.id, Ordering::Relaxed);
        self.submit_full(Submission {
            plan: sub.plan,
            level: sub.level,
            blackbox_seconds: sub.blackbox_seconds,
            id: sub.id,
            prefilled: sub.prefilled,
            traces: sub.traces,
            terminal: sub.terminal,
            spool: sub.spool,
        })
    }

    /// Ensures future plan ids are strictly greater than `max_seen` —
    /// recovery calls this with the highest journaled id before
    /// accepting new submissions.
    pub fn reserve_plan_ids(&self, max_seen: PlanId) {
        self.shared
            .next_plan_id
            .fetch_max(max_seen, Ordering::Relaxed);
    }

    fn allocate_id(&self) -> PlanId {
        self.shared.next_plan_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn submit_full(&self, sub: Submission) -> PlanTicket {
        let Submission {
            plan,
            level,
            blackbox_seconds,
            id,
            prefilled,
            traces,
            terminal,
            spool,
        } = sub;
        let items = flatten_items(&plan);
        let campaigns: Vec<CampaignConfig> = plan
            .studies()
            .iter()
            .flat_map(|s| s.campaigns.iter().cloned())
            .collect();
        let total = items.len();

        // Slot in recovered results: first record wins, out-of-bounds
        // indices are dropped (resume re-executes anything not slotted;
        // determinism keeps the output identical either way).
        let slots: Vec<parking_lot::Mutex<Option<RunResult>>> =
            (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
        let mut campaign_done = vec![0usize; campaigns.len()];
        let mut prefilled_count = 0usize;
        for (idx, result) in prefilled {
            if idx >= total {
                continue;
            }
            let mut slot = slots[idx].lock();
            if slot.is_none() {
                *slot = Some(result);
                campaign_done[items[idx].flat_campaign] += 1;
                prefilled_count += 1;
            }
        }
        // A journaled terminal `Completed` implies full run coverage (the
        // journal appends every run record before the terminal one); if a
        // journal claims otherwise, ignore the claim and run the gap.
        let terminal = match terminal {
            Some(PlanPhase::Completed) if prefilled_count < total => None,
            t => t,
        };
        let pending: Vec<usize> = if terminal.is_some() {
            Vec::new()
        } else {
            (0..total).filter(|&i| slots[i].lock().is_none()).collect()
        };

        let remaining = campaigns
            .iter()
            .zip(&campaign_done)
            .map(|(c, &done)| AtomicUsize::new(c.total_runs() - done))
            .collect();
        let blackbox_frames = ((blackbox_seconds / FRAME_DT).ceil() as usize).max(1);
        let trace_specs =
            (level != TraceLevel::Off).then(|| plan_trace_specs(&plan, level, blackbox_frames));
        let run = Arc::new(PlanRun {
            id,
            plan,
            items,
            campaigns,
            remaining,
            trace_specs,
            pending,
            next: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            executed: AtomicUsize::new(prefilled_count),
            cancelled: AtomicBool::new(false),
            started: AtomicBool::new(false),
            finalized: AtomicBool::new(false),
            evicted: AtomicBool::new(false),
            submitted_at: Instant::now(),
            finished_at: parking_lot::Mutex::new(None),
            slots,
            traces: parking_lot::Mutex::new(traces),
            spool: spool.map(SpoolHandle),
            state: Mutex::new(PlanState {
                lifecycle: PlanLifecycle::new(),
                events: Vec::new(),
                results: None,
            }),
            state_changed: Condvar::new(),
        });
        run.push_event(ProgressEvent::Started {
            total_runs: total,
            campaigns: run.campaigns.len(),
            workers: self.shared.workers,
        });
        if let Some(phase) = terminal {
            // Recovered already-terminal plan: reload it as fetchable
            // state without executing anything.
            run.mark_running();
            finalize(&run, phase);
        } else if run.pending.is_empty() {
            // Trivially complete (empty plan, or recovery journaled every
            // run); never enters the rotation.
            run.mark_running();
            finalize(&run, PlanPhase::Completed);
        } else {
            let mut sched = self.shared.sched.lock().expect("pool sched lock");
            sched.active.push_back(Arc::clone(&run));
            drop(sched);
            self.shared.work_ready.notify_all();
        }
        PlanTicket {
            run,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Global claim journal: (plan, flat index) in claim order.
    pub fn execution_journal(&self) -> Vec<(PlanId, usize)> {
        self.shared.journal.lock().clone()
    }

    /// Cancels every queued plan, stops the workers (in-flight runs
    /// finish), and joins them.
    pub fn shutdown(self) {
        {
            let mut sched = self.shared.sched.lock().expect("pool sched lock");
            sched.shutdown = true;
            for plan in sched.active.drain(..) {
                plan.cancelled.store(true, Ordering::Release);
                if plan.outstanding.load(Ordering::Acquire) == 0 {
                    finalize(&plan, PlanPhase::Cancelled);
                }
            }
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles {
            handle.join().expect("pool worker panicked");
        }
    }
}

/// Claims the next run under fair round-robin: one run from the front
/// plan, which then rotates to the back. Cancelled and fully claimed
/// plans drop out of the rotation here.
fn claim(
    sched: &mut Sched,
    journal: &parking_lot::Mutex<Vec<(PlanId, usize)>>,
) -> Option<(Arc<PlanRun>, usize)> {
    while let Some(plan) = sched.active.pop_front() {
        if plan.cancelled.load(Ordering::Acquire) {
            if plan.outstanding.load(Ordering::Acquire) == 0 {
                finalize(&plan, PlanPhase::Cancelled);
            }
            continue;
        }
        let i = plan.next.load(Ordering::Relaxed);
        if i >= plan.pending.len() {
            continue;
        }
        plan.next.store(i + 1, Ordering::Relaxed);
        plan.outstanding.fetch_add(1, Ordering::AcqRel);
        let flat = plan.pending[i];
        journal.lock().push((plan.id, flat));
        if i + 1 < plan.pending.len() {
            sched.active.push_back(Arc::clone(&plan));
        }
        return Some((plan, flat));
    }
    None
}

fn worker_loop(shared: &PoolShared, worker: usize) {
    loop {
        let (plan, idx) = {
            let mut sched = shared.sched.lock().expect("pool sched lock");
            loop {
                if sched.shutdown {
                    return;
                }
                if !sched.paused {
                    if let Some(claimed) = claim(&mut sched, &shared.journal) {
                        break claimed;
                    }
                }
                sched = shared.work_ready.wait(sched).expect("pool sched lock");
            }
        };
        execute_item(&plan, idx, worker);
    }
}

/// Runs one claimed item (the worker drain loop body). The cooperative
/// cancellation check sits here: a run claimed before its plan was
/// cancelled is skipped, not executed.
fn execute_item(plan: &Arc<PlanRun>, idx: usize, worker: usize) {
    if !plan.cancelled.load(Ordering::Acquire) {
        plan.mark_running();
        let item = plan.items[idx];
        let cfg = &plan.campaigns[item.flat_campaign];
        let (result, trace) = match &plan.trace_specs {
            Some(specs) => {
                let spec = &specs[item.flat_campaign];
                let mut recorder = if spec.level == TraceLevel::Blackbox {
                    Recorder::ring(spec.blackbox_frames.max(1))
                } else {
                    Recorder::new(false)
                };
                run_single_traced(
                    &cfg.scenarios[item.scenario],
                    item.scenario,
                    item.run,
                    &cfg.fault,
                    &cfg.agent,
                    spec,
                    &mut recorder,
                )
            }
            None => (
                run_single(
                    &cfg.scenarios[item.scenario],
                    item.scenario,
                    item.run,
                    &cfg.fault,
                    &cfg.agent,
                ),
                None,
            ),
        };
        // Journal before the in-memory publish: a crash after the spool
        // write simply replays an already-slotted run on resume, which
        // determinism makes harmless; a crash before it re-executes the
        // run to the identical result.
        if let Some(spool) = &plan.spool {
            spool.0.run_completed(idx, &result, trace.as_ref());
        }
        if let Some(trace) = trace {
            plan.traces.lock().push((idx, trace));
        }
        let (km, violations, success) = (
            result.distance_km,
            result.violations.len(),
            result.outcome.is_success(),
        );
        // Slot before counter: a reader seeing `executed == total` must
        // also see every slot filled.
        *plan.slots[idx].lock() = Some(result);
        let executed = plan.executed.fetch_add(1, Ordering::AcqRel) + 1;
        plan.push_event(ProgressEvent::RunCompleted {
            study: item.study,
            campaign: item.campaign,
            scenario: item.scenario,
            run: item.run,
            worker,
            completed: executed,
            total: plan.total(),
            km,
            violations,
            success,
        });
        if plan.remaining[item.flat_campaign].fetch_sub(1, Ordering::AcqRel) == 1 {
            plan.push_event(ProgressEvent::CampaignCompleted {
                study: item.study,
                campaign: item.campaign,
                label: cfg.fault.label(),
            });
        }
    }
    let outstanding = plan.outstanding.fetch_sub(1, Ordering::AcqRel) - 1;
    if plan.executed.load(Ordering::Acquire) == plan.total() {
        finalize(plan, PlanPhase::Completed);
    } else if plan.cancelled.load(Ordering::Acquire) && outstanding == 0 {
        finalize(plan, PlanPhase::Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Engine, WorkPlan};
    use super::*;
    use crate::campaign::{AgentSpec, CampaignConfig};
    use crate::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
    use crate::fault::timing::TimingFault;
    use crate::fault::FaultSpec;
    use avfi_sim::scenario::{Scenario, TownSpec};

    fn quick_scenario(seed: u64) -> Scenario {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(15.0)
            .min_route_length(50.0)
            .build()
    }

    fn campaign(seed: u64, runs: usize, fault: FaultSpec) -> CampaignConfig {
        CampaignConfig::builder(vec![quick_scenario(seed), quick_scenario(seed + 1)])
            .runs_per_scenario(runs)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build()
    }

    fn plan_a() -> WorkPlan {
        WorkPlan::new()
            .with_study("baseline", vec![campaign(40, 2, FaultSpec::None)])
            .with_study(
                "timing",
                vec![campaign(
                    44,
                    2,
                    FaultSpec::Timing(TimingFault::OutputDelay { frames: 8 }),
                )],
            )
    }

    fn plan_b() -> WorkPlan {
        WorkPlan::new().with_study("other", vec![campaign(52, 2, FaultSpec::None)])
    }

    fn json<T: serde::Serialize>(v: &T) -> String {
        serde_json::to_string(v).unwrap()
    }

    /// The multiplexing gate: plans sharing one pool produce results
    /// byte-identical to a solo `Engine::execute` of each plan.
    #[test]
    fn multiplexed_plans_match_solo_engine() {
        let pool = MultiplexPool::new(3);
        let ta = pool.submit(plan_a());
        let tb = pool.submit(plan_b());
        let ra = ta.wait_results().expect("plan a completed");
        let rb = tb.wait_results().expect("plan b completed");
        assert_eq!(
            json(&ra),
            json(&Engine::new().workers(1).execute(&plan_a()))
        );
        assert_eq!(
            json(&rb),
            json(&Engine::new().workers(1).execute(&plan_b()))
        );
        assert_eq!(ta.phase(), PlanPhase::Completed);
        assert_eq!(ta.completed_runs(), ta.total_runs());
        pool.shutdown();
    }

    #[test]
    fn events_are_plan_tagged_and_complete() {
        let pool = MultiplexPool::new(2);
        let t = pool.submit(plan_a());
        t.wait_terminal();
        let (events, phase) = t.events_after(0);
        assert_eq!(phase, PlanPhase::Completed);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.plan, t.id());
            assert_eq!(e.seq, i);
        }
        assert!(matches!(
            events.first().unwrap().event,
            ProgressEvent::Started { .. }
        ));
        assert!(matches!(
            events.last().unwrap().event,
            ProgressEvent::Finished { .. }
        ));
        let runs = events
            .iter()
            .filter(|e| matches!(e.event, ProgressEvent::RunCompleted { .. }))
            .count();
        assert_eq!(runs, plan_a().total_runs());
        pool.shutdown();
    }

    /// One worker, two staged plans: the rotation must alternate strictly
    /// — A0 B0 A1 B1 … — instead of draining A before B.
    #[test]
    fn round_robin_is_fair_across_plans() {
        let pool = MultiplexPool::paused(1);
        let ta = pool.submit(plan_b());
        let tb = pool.submit(plan_b());
        pool.resume();
        ta.wait_terminal();
        tb.wait_terminal();
        let journal = pool.execution_journal();
        assert_eq!(journal.len(), 8);
        for (i, (plan, idx)) in journal.iter().enumerate() {
            let expect_plan = if i.is_multiple_of(2) {
                ta.id()
            } else {
                tb.id()
            };
            assert_eq!(*plan, expect_plan, "claim {i} went to the wrong plan");
            assert_eq!(*idx, i / 2, "claim {i} took the wrong item");
        }
        pool.shutdown();
    }

    #[test]
    fn cancel_before_start_yields_cancelled_without_results() {
        let pool = MultiplexPool::paused(2);
        let t = pool.submit(plan_a());
        assert_eq!(t.cancel(), PlanPhase::Cancelled);
        pool.resume();
        assert_eq!(t.wait_terminal(), PlanPhase::Cancelled);
        assert!(t.results().is_none());
        assert_eq!(t.completed_runs(), 0);
        // The pool stays healthy for later plans.
        let t2 = pool.submit(plan_b());
        assert!(t2.wait_results().is_some());
        pool.shutdown();
    }

    #[test]
    fn cancel_mid_plan_keeps_pool_and_neighbors_healthy() {
        let pool = MultiplexPool::new(2);
        // A long plan (32 runs) and a short neighbor.
        let long = WorkPlan::new().with_study(
            "long",
            vec![
                campaign(60, 8, FaultSpec::None),
                campaign(70, 8, FaultSpec::None),
            ],
        );
        let t_long = pool.submit(long);
        let t_short = pool.submit(plan_b());
        // Wait until the long plan actually progressed, then cancel it.
        t_long.wait_events_after(1);
        let phase = t_long.cancel();
        assert!(phase.is_terminal() || phase == PlanPhase::Running);
        let terminal = t_long.wait_terminal();
        assert!(terminal.is_terminal());
        if terminal == PlanPhase::Cancelled {
            assert!(t_long.results().is_none());
            assert!(t_long.completed_runs() < t_long.total_runs());
        }
        // The neighbor still completes bit-identically.
        let rb = t_short.wait_results().expect("short plan completed");
        assert_eq!(
            json(&rb),
            json(&Engine::new().workers(1).execute(&plan_b()))
        );
        pool.shutdown();
    }

    #[test]
    fn empty_plan_completes_immediately() {
        let pool = MultiplexPool::new(1);
        let t = pool.submit(WorkPlan::new());
        assert_eq!(t.wait_terminal(), PlanPhase::Completed);
        assert_eq!(t.results().expect("empty results").len(), 0);
        pool.shutdown();
    }

    #[test]
    fn shutdown_cancels_queued_plans() {
        let pool = MultiplexPool::paused(1);
        let t = pool.submit(plan_b());
        pool.shutdown();
        assert_eq!(t.wait_terminal(), PlanPhase::Cancelled);
    }

    /// Traced submissions collect blackbox traces in memory, keyed by
    /// flat index and invariant to pool scheduling.
    #[test]
    fn traced_submission_collects_worker_invariant_traces() {
        let stuck = FaultSpec::Hardware(HardwareFault::always(
            HardwareTarget::ControlBrake,
            BitFaultModel::StuckAt { value: 1.0 },
        ));
        let plan = WorkPlan::new().with_study("stuck", vec![campaign(80, 2, stuck)]);
        let collect = |workers: usize| {
            let pool = MultiplexPool::new(workers);
            let t = pool.submit_traced(plan.clone(), TraceLevel::Blackbox, 5.0);
            t.wait_terminal();
            let traces = t.traces();
            pool.shutdown();
            traces
        };
        let one = collect(1);
        let four = collect(4);
        assert!(!one.is_empty(), "stuck-brake plan must emit failure traces");
        assert_eq!(
            json(&one),
            json(&four),
            "traces must be scheduling-invariant"
        );
        let indices: Vec<usize> = one.iter().map(|(i, _)| *i).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "traces sorted by flat index");
    }

    /// A recovered terminal plan reloads as fetchable state without
    /// executing anything; a recovered interrupted plan executes only
    /// its gap — both byte-identical to a solo run, both under their
    /// original ids, with fresh ids reserved past them.
    #[test]
    fn recovered_submissions_reload_and_resume() {
        let plan = plan_a();
        let solo = Engine::new().workers(1).execute(&plan);
        let solo_json = json(&solo);
        // Harvest per-run results by flat index from a fresh pool run.
        let harvest = MultiplexPool::new(2);
        let t = harvest.submit(plan.clone());
        t.wait_terminal();
        harvest.shutdown();
        let runs: Vec<(usize, RunResult)> = {
            // Re-derive flat-indexed runs from the solo results: flat
            // order is campaign-major, (scenario, run) within.
            let mut flat = Vec::new();
            for study in &solo {
                for campaign in &study.campaigns {
                    for run in campaign.runs() {
                        flat.push(run.clone());
                    }
                }
            }
            flat.into_iter().enumerate().collect()
        };
        let total = plan.total_runs();
        assert_eq!(runs.len(), total);

        let pool = MultiplexPool::new(2);
        // Terminal reload: full prefill + journaled "completed".
        let reloaded = pool.submit_recovered(RecoveredSubmission {
            plan: plan.clone(),
            level: TraceLevel::Off,
            blackbox_seconds: 5.0,
            id: 11,
            prefilled: runs.clone(),
            traces: Vec::new(),
            terminal: Some(PlanPhase::Completed),
            spool: None,
        });
        assert_eq!(reloaded.id(), 11);
        assert_eq!(reloaded.wait_terminal(), PlanPhase::Completed);
        assert_eq!(json(&reloaded.wait_results().expect("reloaded")), solo_json);
        assert_eq!(reloaded.completed_runs(), total);

        // Gap resume: half the runs prefilled, no terminal record.
        let resumed = pool.submit_recovered(RecoveredSubmission {
            plan: plan.clone(),
            level: TraceLevel::Off,
            blackbox_seconds: 5.0,
            id: 12,
            prefilled: runs[..total / 2].to_vec(),
            traces: Vec::new(),
            terminal: None,
            spool: None,
        });
        assert_eq!(resumed.id(), 12);
        assert_eq!(resumed.wait_terminal(), PlanPhase::Completed);
        assert_eq!(json(&resumed.wait_results().expect("resumed")), solo_json);

        // A journaled "completed" without full coverage is downgraded:
        // the gap executes instead of reloading a lying terminal state.
        let downgraded = pool.submit_recovered(RecoveredSubmission {
            plan: plan.clone(),
            level: TraceLevel::Off,
            blackbox_seconds: 5.0,
            id: 13,
            prefilled: runs[..1].to_vec(),
            traces: Vec::new(),
            terminal: Some(PlanPhase::Completed),
            spool: None,
        });
        assert_eq!(downgraded.wait_terminal(), PlanPhase::Completed);
        assert_eq!(
            json(&downgraded.wait_results().expect("downgraded")),
            solo_json
        );

        // Fresh submissions allocate past every recovered id.
        let fresh = pool.submit(plan_b());
        assert!(fresh.id() > 13, "fresh id {} not reserved", fresh.id());
        pool.shutdown();
    }
}
