//! The fault-injection harness: wraps a driving agent and applies the
//! configured faults to its inputs (sensor payloads), its model (IL-CNN
//! parameters/neurons), and its outputs (commands, timing).
//!
//! This is the "Fault Injector" box of Figure 1: Input FI sits between the
//! server's sensor stream and the ADA, NN FI inside the ADA, Output FI and
//! Timing FI between the ADA and actuation.

use crate::fault::input::ImageFaultLayout;
use crate::fault::timing::TimingChannel;
use crate::fault::FaultSpec;
use avfi_agent::controller::{Driver, DriverInput};
use avfi_agent::{ExpertDriver, IlNetwork, NeuralDriver};
use avfi_sim::physics::VehicleControl;
use avfi_sim::rng::stream_rng;
use avfi_sim::sensors::{Image, LidarScan};
use avfi_sim::world::{World, WorldObservation};
use avfi_sim::FRAME_DT;
use avfi_trace::{FaultChannel, TraceEvent};
use rand::rngs::StdRng;

/// Per-run cap on logged fault events; intermittent triggers flapping
/// every frame would otherwise grow the log with the run length.
const MAX_TRACE_EVENTS: usize = 4096;

/// Onset-debounced log of the harness's fault activity for the flight
/// recorder: one [`TraceEvent::TriggerFired`] when the plan first becomes
/// active, one [`TraceEvent::Injection`] per channel per contiguous
/// active episode.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<TraceEvent>,
    dropped: u64,
    trigger_fired: bool,
    /// Whether each channel (in [`FaultChannel::ALL`] order) was active
    /// on the previous frame — the debounce state.
    prev: [bool; FaultChannel::ALL.len()],
}

impl EventLog {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < MAX_TRACE_EVENTS {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Folds one frame's channel-activity flags into the log, emitting
    /// events only on rising edges.
    fn frame_end(&mut self, frame: u64, active: [bool; FaultChannel::ALL.len()]) {
        if !self.trigger_fired && active.iter().any(|&a| a) {
            self.trigger_fired = true;
            self.push(TraceEvent::TriggerFired { frame });
        }
        for (i, &now) in active.iter().enumerate() {
            if now && !self.prev[i] {
                self.push(TraceEvent::Injection {
                    frame,
                    channel: FaultChannel::ALL[i],
                });
            }
            self.prev[i] = now;
        }
    }
}

enum Inner {
    Expert(ExpertDriver),
    Neural(NeuralDriver),
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inner::Expert(_) => f.write_str("Expert"),
            Inner::Neural(_) => f.write_str("Neural"),
        }
    }
}

/// A driving agent wrapped by the AVFI fault injector.
#[derive(Debug)]
pub struct AvDriver {
    inner: Inner,
    spec: FaultSpec,
    rng: StdRng,
    timing: Option<TimingChannel>,
    image_layout: Option<ImageFaultLayout>,
    injected_at_frame: Option<u64>,
    /// Reused buffer for the fault-injected camera image, so the hot path
    /// never clones the observation (allocation-free after the first
    /// injected frame).
    scratch_image: Option<Image>,
    /// Reused buffer for the fault-injected LIDAR sweep.
    scratch_lidar: Option<LidarScan>,
    /// Flight-recorder event log; `None` (the default) keeps the hot
    /// path free of any tracing work.
    event_log: Option<EventLog>,
}

impl AvDriver {
    /// Wraps the rule-based expert (oracle baseline).
    pub fn expert(spec: FaultSpec, seed: u64) -> Self {
        Self::build(Inner::Expert(ExpertDriver::new()), spec, seed)
    }

    /// Wraps the neural agent, applying any configured ML fault to the
    /// network at construction time (a corrupted model is corrupted from
    /// the start).
    pub fn neural(mut net: IlNetwork, spec: FaultSpec, seed: u64) -> Self {
        let mut rng = stream_rng(seed, 0xFA);
        let mut injected_at_frame = None;
        if let FaultSpec::Ml(f) = &spec {
            f.apply(&mut net, &mut rng);
            injected_at_frame = Some(0);
        }
        let mut d = Self::build(Inner::Neural(NeuralDriver::new(net)), spec, seed);
        d.injected_at_frame = injected_at_frame.or(d.injected_at_frame);
        d
    }

    fn build(inner: Inner, spec: FaultSpec, seed: u64) -> Self {
        let timing = match &spec {
            FaultSpec::Timing(f) => Some(TimingChannel::new(f.clone())),
            _ => None,
        };
        AvDriver {
            inner,
            spec,
            rng: stream_rng(seed, 0xFB),
            timing,
            image_layout: None,
            // Timing faults are marked lazily, the first time the channel
            // actually perturbs the command stream — a no-op channel (e.g.
            // a zero-frame delay) must not report an injection time.
            injected_at_frame: None,
            scratch_image: None,
            scratch_lidar: None,
            event_log: None,
        }
    }

    /// Turns on flight-recorder event logging. An ML fault is applied at
    /// construction, so its trigger/injection pair is backfilled at frame
    /// 0 here (the per-frame path never sees it activate).
    pub fn enable_event_log(&mut self) {
        let mut log = EventLog::default();
        if matches!(self.spec, FaultSpec::Ml(_)) {
            log.trigger_fired = true;
            log.prev[FaultChannel::Ml as usize] = true;
            log.push(TraceEvent::TriggerFired { frame: 0 });
            log.push(TraceEvent::Injection {
                frame: 0,
                channel: FaultChannel::Ml,
            });
        }
        self.event_log = Some(log);
    }

    /// Takes the logged fault events (in frame order) and the count of
    /// events dropped past the cap. Logging stops until re-enabled.
    pub fn take_events(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.event_log.take() {
            Some(log) => (log.events, log.dropped),
            None => (Vec::new(), 0),
        }
    }

    /// Agent name for reports.
    pub fn agent_name(&self) -> &'static str {
        match &self.inner {
            Inner::Expert(_) => "expert",
            Inner::Neural(_) => "il-cnn",
        }
    }

    /// The fault plan.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Simulation time of the first actual injection, if any happened —
    /// the t₀ of the Time-to-Traffic-Violation metric.
    pub fn injection_time(&self) -> Option<f64> {
        self.injected_at_frame.map(|f| f as f64 * FRAME_DT)
    }

    /// Computes the control for one frame, with fault injection.
    pub fn drive_frame(&mut self, obs: &WorldObservation, world: &World) -> VehicleControl {
        let frame = obs.sensors.frame;
        // Destructure so the match arms below can hold `spec` borrowed
        // while mutating the RNG and scratch buffers (disjoint fields) —
        // this is what lets the hot path drop the per-frame spec clone.
        let AvDriver {
            inner,
            spec,
            rng,
            timing,
            image_layout,
            injected_at_frame,
            scratch_image,
            scratch_lidar,
            event_log,
        } = self;
        fn mark(slot: &mut Option<u64>, frame: u64) {
            if slot.is_none() {
                *slot = Some(frame);
            }
        }
        // Per-channel activity this frame, observed inside the match arms
        // below (each trigger gate is evaluated exactly once — re-checking
        // here would consume extra RNG draws and change the run).
        let mut active = [false; FaultChannel::ALL.len()];

        // --- Input FI and sensor-path Hardware FI: corrupt the sensor
        // channels the agent sees. Only the channels a fault touches are
        // copied (into reused scratch buffers); scalar-only faults copy
        // nothing.
        let mut input = DriverInput::clean(obs, world);
        match &*spec {
            FaultSpec::Input(f) if f.trigger.is_active(frame, rng) => {
                mark(injected_at_frame, frame);
                active[FaultChannel::Image as usize] = f.model.is_some();
                active[FaultChannel::Gps as usize] = f.gps.is_some();
                active[FaultChannel::Speed as usize] = f.speed.is_some();
                active[FaultChannel::Lidar as usize] = f.lidar.is_some();
                // Scalar-only plans (no camera model) skip the image copy
                // entirely — the agent sees the world's own buffer.
                if let Some(model) = &f.model {
                    let img = match scratch_image {
                        Some(img) => {
                            img.copy_from(&obs.sensors.image);
                            img
                        }
                        None => scratch_image.insert(obs.sensors.image.clone()),
                    };
                    let layout = image_layout.get_or_insert_with(|| {
                        ImageFaultLayout::sample(model, img.width(), img.height(), rng)
                    });
                    model.apply(img, layout, rng);
                    input.image = img;
                }
                if let Some(g) = &f.gps {
                    let p = &mut input.gps.position;
                    p.x += g.bias_x + avfi_sim::rng::normal(rng, 0.0, g.sigma);
                    p.y += g.bias_y + avfi_sim::rng::normal(rng, 0.0, g.sigma);
                }
                if let Some(s) = &f.speed {
                    input.speed = match s {
                        crate::fault::input::SpeedFault::Scale(k) => input.speed * k,
                        crate::fault::input::SpeedFault::StuckAt(v) => *v,
                    };
                }
                if let Some(l) = &f.lidar {
                    let scan = match scratch_lidar {
                        Some(scan) => {
                            scan.ranges.clone_from(&obs.sensors.lidar.ranges);
                            scan.fov_deg = obs.sensors.lidar.fov_deg;
                            scan.max_range = obs.sensors.lidar.max_range;
                            scan
                        }
                        None => scratch_lidar.insert(obs.sensors.lidar.clone()),
                    };
                    l.apply(&mut scan.ranges, scan.max_range, rng);
                    input.lidar = scan;
                }
            }
            FaultSpec::Hardware(f) if !f.target.is_control() && f.trigger.is_active(frame, rng) => {
                mark(injected_at_frame, frame);
                active[FaultChannel::SensorHardware as usize] = true;
                let mut speed = input.speed;
                let mut gx = input.gps.position.x;
                let mut gy = input.gps.position.y;
                f.corrupt_sensors(&mut speed, &mut gx, &mut gy);
                input.speed = if speed.is_finite() { speed } else { 0.0 };
                input.gps.position.x = gx;
                input.gps.position.y = gy;
            }
            _ => {}
        }

        // --- The ADA computes its decision.
        let mut control = match inner {
            Inner::Expert(e) => e.drive(&input),
            Inner::Neural(n) => n.drive(&input),
        };

        // --- Output FI: command-path hardware faults.
        if let FaultSpec::Hardware(f) = &*spec {
            if f.target.is_control() && f.trigger.is_active(frame, rng) {
                mark(injected_at_frame, frame);
                active[FaultChannel::ControlHardware as usize] = true;
                control = f.corrupt_control(control);
            }
        }

        // --- Timing FI: the actuation sees a delayed/dropped/reordered
        // command stream. Injection is only recorded when the channel
        // actually changes the command — a transparent channel (zero-frame
        // delay) never perturbs the run.
        if let Some(ch) = timing {
            let requested = control;
            control = ch.transfer(control, rng);
            if control != requested {
                mark(injected_at_frame, frame);
                active[FaultChannel::Timing as usize] = true;
            }
        }

        if let Some(log) = event_log {
            log.frame_end(frame, active);
        }

        control
    }
}

impl Driver for AvDriver {
    fn drive(&mut self, input: &DriverInput<'_>) -> VehicleControl {
        self.drive_frame(input.obs, input.world)
    }

    fn name(&self) -> &'static str {
        self.agent_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
    use crate::fault::input::{ImageFault, InputFault};
    use crate::fault::timing::TimingFault;
    use crate::trigger::Trigger;
    use avfi_sim::scenario::{Scenario, TownSpec};

    fn world() -> World {
        let s = Scenario::builder(TownSpec::grid(2, 2))
            .seed(9)
            .npc_vehicles(0)
            .pedestrians(0)
            .build();
        World::from_scenario(&s)
    }

    #[test]
    fn clean_expert_matches_unwrapped() {
        let mut w = world();
        let obs = w.observe();
        let mut wrapped = AvDriver::expert(FaultSpec::None, 1);
        let direct = ExpertDriver::new().control_for(&w);
        assert_eq!(wrapped.drive_frame(&obs, &w), direct);
        assert!(wrapped.injection_time().is_none());
    }

    #[test]
    fn stuck_brake_immobilizes() {
        let mut w = world();
        let spec = FaultSpec::Hardware(HardwareFault::always(
            HardwareTarget::ControlBrake,
            BitFaultModel::StuckAt { value: 1.0 },
        ));
        let mut drv = AvDriver::expert(spec, 2);
        for _ in 0..45 {
            let obs = w.observe();
            let c = drv.drive_frame(&obs, &w);
            assert_eq!(c.brake, 1.0);
            w.step(c);
        }
        assert_eq!(w.ego().speed, 0.0);
        assert_eq!(drv.injection_time(), Some(0.0));
    }

    #[test]
    fn output_delay_shifts_behavior() {
        // With a 15-frame delay, the first second of actuation is coasting
        // even though the expert asks for throttle.
        let mut w = world();
        let spec = FaultSpec::Timing(TimingFault::OutputDelay { frames: 15 });
        let mut drv = AvDriver::expert(spec, 3);
        for i in 0..15 {
            let obs = w.observe();
            let c = drv.drive_frame(&obs, &w);
            assert_eq!(c, VehicleControl::coast(), "frame {i} leaked early");
            w.step(c);
        }
        let obs = w.observe();
        let c = drv.drive_frame(&obs, &w);
        assert!(c.throttle > 0.0, "delayed throttle should arrive now");
    }

    #[test]
    fn input_fault_marks_injection_at_trigger() {
        let mut w = world();
        let spec = FaultSpec::Input(InputFault {
            trigger: Trigger::From { frame: 10 },
            ..InputFault::always(ImageFault::gaussian(0.2))
        });
        let mut drv = AvDriver::expert(spec, 4);
        for _ in 0..10 {
            let obs = w.observe();
            let c = drv.drive_frame(&obs, &w);
            w.step(c);
            assert!(drv.injection_time().is_none());
        }
        let obs = w.observe();
        let _ = drv.drive_frame(&obs, &w);
        let t = drv.injection_time().expect("injection recorded");
        assert!((t - 10.0 * FRAME_DT).abs() < 1e-9);
    }

    #[test]
    fn neural_with_input_fault_sees_corrupted_image() {
        // The same world frame must produce different controls with and
        // without heavy image noise (untrained net is still input
        // sensitive).
        let mut w = world();
        let obs = w.observe();
        let net1 = IlNetwork::new(11);
        let net2 = IlNetwork::from_weights(&{
            let mut n = IlNetwork::new(11);
            n.to_weights()
        })
        .unwrap();
        let mut clean = AvDriver::neural(net1, FaultSpec::None, 5);
        let mut noisy = AvDriver::neural(
            net2,
            FaultSpec::Input(InputFault::always(ImageFault::gaussian(0.5))),
            5,
        );
        let a = clean.drive_frame(&obs, &w);
        let b = noisy.drive_frame(&obs, &w);
        assert_ne!(a, b);
    }

    #[test]
    fn scalar_only_input_fault_skips_image_copy() {
        // A GPS-only plan (camera model `None`) must never allocate or
        // fill the scratch image/LIDAR buffers — the scalar path is
        // copy-free, the same skip hardware faults get.
        use crate::fault::input::GpsFault;
        let mut w = world();
        let spec = FaultSpec::Input(InputFault::scalar_only().with_gps(GpsFault {
            bias_x: 25.0,
            bias_y: -10.0,
            sigma: 0.0,
        }));
        let mut drv = AvDriver::expert(spec, 7);
        for _ in 0..8 {
            let obs = w.observe();
            let c = drv.drive_frame(&obs, &w);
            w.step(c);
        }
        assert!(
            drv.scratch_image.is_none(),
            "gps-only fault must not copy the camera image"
        );
        assert!(drv.scratch_lidar.is_none());
        assert_eq!(drv.injection_time(), Some(0.0));
    }

    #[test]
    fn scalar_only_fault_leaves_image_untouched() {
        // With a no-op scalar plan the neural agent must see the world's
        // own (unmodified) camera buffer: its control matches the clean
        // driver bit for bit. Under the old mandatory-model API every
        // input fault corrupted the image.
        use crate::fault::input::GpsFault;
        let mut w = world();
        let obs = w.observe();
        let mk = || {
            let mut n = IlNetwork::new(11);
            IlNetwork::from_weights(&n.to_weights()).unwrap()
        };
        let mut clean = AvDriver::neural(mk(), FaultSpec::None, 5);
        let noop = FaultSpec::Input(InputFault::scalar_only().with_gps(GpsFault {
            bias_x: 0.0,
            bias_y: 0.0,
            sigma: 0.0,
        }));
        let mut scalar = AvDriver::neural(mk(), noop, 5);
        assert_eq!(clean.drive_frame(&obs, &w), scalar.drive_frame(&obs, &w));
        assert!(scalar.scratch_image.is_none());
    }

    #[test]
    fn ml_fault_applied_at_construction() {
        let mut base = IlNetwork::new(12);
        let weights = base.to_weights();
        let spec = FaultSpec::Ml(crate::fault::ml::MlFault::WeightNoise {
            sigma: 0.8,
            fraction: 1.0,
            selector: crate::localizer::ParamSelector::All,
        });
        let mut w = world();
        let obs = w.observe();
        let mut clean = AvDriver::neural(
            IlNetwork::from_weights(&weights).unwrap(),
            FaultSpec::None,
            6,
        );
        let mut faulty = AvDriver::neural(IlNetwork::from_weights(&weights).unwrap(), spec, 6);
        assert_eq!(faulty.injection_time(), Some(0.0));
        let a = clean.drive_frame(&obs, &w);
        let b = faulty.drive_frame(&obs, &w);
        assert_ne!(a, b);
    }
}
