//! Adaptive campaigns: deterministic Bayesian fault-space search.
//!
//! The paper's uniform `fig*`/`ext_*` sweeps spend almost all of their
//! run budget on benign injections; the UIUC group's follow-up ("ML-based
//! Fault Injection for Autonomous Vehicles: A Case for Bayesian Fault
//! Injection", DSN 2019) shows guided search finds orders of magnitude
//! more *activated* failures per run. This module is that planning layer
//! for the reproduction: an online planner that models
//! P(failure | scenario, fault channel, magnitude band, onset band) with
//! one Beta-Bernoulli posterior per lattice arm, proposes the next batch
//! of [`EvalJob`]s by Thompson sampling, and spends a fixed total-run
//! budget where failures concentrate instead of spreading it uniformly.
//!
//! ## Determinism contract
//!
//! The whole chosen trajectory — every proposed batch, every posterior
//! state, and the final report — is **byte-identical for any worker
//! count**, the same contract [`shrink`](crate::shrink) honors:
//!
//! 1. the Thompson sampler draws from one [`StdRng`] seeded from the
//!    campaign seed (stream-split, so it is independent of every
//!    simulation stream);
//! 2. batches are evaluated through [`Engine::evaluate_jobs`], which
//!    returns results **in job order** regardless of scheduling;
//! 3. observations are folded into the posteriors in that same
//!    flat-plan batch order, and the sampler is never touched during the
//!    fold — so the RNG consumption sequence is a pure function of the
//!    outcome history, which itself is a pure function of the seeds.
//!
//! Each pull of an arm gets `run_index` = the number of earlier pulls of
//! that arm, so per-run world seeds follow the exact derivation uniform
//! campaigns use (`split_seed(template, scenario << 32 | run+1)`): two
//! arms probing the same scenario at the same pull count share a world —
//! paired comparisons for free — while repeated pulls of one arm never
//! replay an identical run.
//!
//! The planner core is oracle-generic ([`AdaptiveOracle`]) so its search
//! behavior and determinism are testable without the simulator;
//! [`EngineOracle`] is the production implementation, fanning proposals
//! through the job-level engine API and classifying failures with
//! [`triage::failure_class`](crate::triage::failure_class).

use crate::campaign::{AgentSpec, TraceSpec};
use crate::engine::{Engine, EvalJob};
use crate::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
use crate::fault::input::{GpsFault, ImageFault, InputFault, LidarFault, SpeedFault};
use crate::fault::timing::TimingFault;
use crate::fault::FaultSpec;
use crate::triage::failure_class;
use crate::trigger::Trigger;
use avfi_sim::rng::{split_seed, standard_normal};
use avfi_sim::scenario::Scenario;
use avfi_trace::{RunTrace, TraceLevel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// RNG stream tag for the Thompson sampler (disjoint from every
/// simulation stream, which all derive from per-run world seeds).
const SAMPLER_STREAM: u64 = 0xADA7_71FE;

/// One fault channel of the search lattice: a parameterized injector
/// whose severity scales with the arm's magnitude band and whose
/// activation starts at the arm's onset band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultChannel {
    /// A camera fault model; magnitude scales its severity parameter.
    Camera(ImageFault),
    /// GPS bias + noise; magnitude scales bias and sigma.
    GpsBias {
        /// Base easting bias, meters (northing gets the negative).
        bias: f64,
        /// Base per-axis noise sigma, meters.
        sigma: f64,
    },
    /// Speedometer multiplicative corruption; magnitude scales the
    /// deviation from 1 (factor 1.8 at magnitude 0.5 reads ×1.4).
    SpeedScale {
        /// Base over/under-read factor at magnitude 1.
        factor: f64,
    },
    /// LIDAR beam dropout; magnitude scales the per-beam probability.
    LidarDropout {
        /// Base dropout probability at magnitude 1.
        p: f64,
    },
    /// A command/sensor scalar stuck at a value; magnitude scales it.
    HardwareStuck {
        /// The corrupted scalar.
        target: HardwareTarget,
        /// Base stuck value at magnitude 1.
        value: f64,
    },
    /// Output pipeline delay; magnitude scales the frame count. Delay
    /// has no activation trigger, so the onset axis collapses for it.
    OutputDelay {
        /// Base delay in frames at magnitude 1.
        frames: usize,
    },
}

impl FaultChannel {
    /// Short channel label for arms and reports.
    pub fn label(&self) -> String {
        match self {
            FaultChannel::Camera(model) => format!("camera:{}", model.label()),
            FaultChannel::GpsBias { .. } => "gps-bias".to_string(),
            FaultChannel::SpeedScale { .. } => "speed-scale".to_string(),
            FaultChannel::LidarDropout { .. } => "lidar-dropout".to_string(),
            FaultChannel::HardwareStuck { target, .. } => format!("hw-stuck:{}", target.label()),
            FaultChannel::OutputDelay { .. } => "output-delay".to_string(),
        }
    }

    /// Whether the onset axis applies (timing delays are pipeline
    /// properties with no trigger, so their arms collapse to one onset).
    pub fn supports_onset(&self) -> bool {
        !matches!(self, FaultChannel::OutputDelay { .. })
    }

    /// Builds the concrete fault for one arm of the lattice.
    pub fn fault_spec(&self, magnitude: f64, onset: u64) -> FaultSpec {
        let trigger = Trigger::From { frame: onset };
        match *self {
            FaultChannel::Camera(model) => FaultSpec::Input(InputFault {
                model: Some(scale_image_fault(model, magnitude)),
                gps: None,
                speed: None,
                lidar: None,
                trigger,
            }),
            FaultChannel::GpsBias { bias, sigma } => FaultSpec::Input(InputFault {
                model: None,
                gps: Some(GpsFault {
                    bias_x: bias * magnitude,
                    bias_y: -bias * magnitude,
                    sigma: sigma * magnitude,
                }),
                speed: None,
                lidar: None,
                trigger,
            }),
            FaultChannel::SpeedScale { factor } => FaultSpec::Input(InputFault {
                model: None,
                gps: None,
                speed: Some(SpeedFault::Scale(1.0 + (factor - 1.0) * magnitude)),
                lidar: None,
                trigger,
            }),
            FaultChannel::LidarDropout { p } => FaultSpec::Input(InputFault {
                model: None,
                gps: None,
                speed: None,
                lidar: Some(LidarFault::BeamDropout {
                    p: (p * magnitude).clamp(0.0, 0.95),
                }),
                trigger,
            }),
            FaultChannel::HardwareStuck { target, value } => FaultSpec::Hardware(HardwareFault {
                target,
                model: BitFaultModel::StuckAt {
                    value: value * magnitude,
                },
                trigger,
            }),
            FaultChannel::OutputDelay { frames } => FaultSpec::Timing(TimingFault::OutputDelay {
                frames: ((frames as f64 * magnitude).round() as usize).max(1),
            }),
        }
    }
}

/// Scales an image fault's severity parameter by `m`, clamping into the
/// model's sane range.
fn scale_image_fault(model: ImageFault, m: f64) -> ImageFault {
    match model {
        ImageFault::Gaussian { sigma } => ImageFault::Gaussian { sigma: sigma * m },
        ImageFault::SaltPepper { p } => ImageFault::SaltPepper {
            p: (p * m).clamp(0.0, 0.5),
        },
        ImageFault::SolidOcclusion { frac } => ImageFault::SolidOcclusion {
            frac: (frac * m).clamp(0.0, 0.9),
        },
        ImageFault::TransparentOcclusion { frac, alpha } => ImageFault::TransparentOcclusion {
            frac,
            alpha: (alpha * m).clamp(0.0, 1.0),
        },
        ImageFault::WaterDrop { drops, radius_frac } => ImageFault::WaterDrop {
            drops,
            radius_frac: (radius_frac * m).clamp(0.0, 0.4),
        },
    }
}

/// The search space: the same campaign dimensions the uniform binaries
/// sweep, declared once and expanded into the arm lattice
/// scenario × channel × magnitude band × onset band (onset collapses for
/// channels without a trigger).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveSpace {
    /// Scenario templates (the evaluation suite, usually).
    pub scenarios: Vec<Scenario>,
    /// Fault channels under search.
    pub channels: Vec<FaultChannel>,
    /// Magnitude multipliers applied to each channel's base severity.
    pub magnitudes: Vec<f64>,
    /// Injection onset frames (15 frames = 1 s).
    pub onsets: Vec<u64>,
}

impl AdaptiveSpace {
    /// The paper-dimension channel set: the five Figure 2/3 camera
    /// models, GPS/speed/LIDAR data faults, stuck-at hardware faults on
    /// brake and throttle, and the Figure 4 output delay.
    pub fn paper_channels() -> Vec<FaultChannel> {
        let mut channels: Vec<FaultChannel> = ImageFault::paper_suite()
            .into_iter()
            .map(FaultChannel::Camera)
            .collect();
        channels.push(FaultChannel::GpsBias {
            bias: 4.0,
            sigma: 1.0,
        });
        channels.push(FaultChannel::SpeedScale { factor: 1.8 });
        channels.push(FaultChannel::LidarDropout { p: 0.3 });
        channels.push(FaultChannel::HardwareStuck {
            target: HardwareTarget::ControlBrake,
            value: 1.0,
        });
        channels.push(FaultChannel::HardwareStuck {
            target: HardwareTarget::ControlThrottle,
            value: 0.9,
        });
        channels.push(FaultChannel::OutputDelay { frames: 15 });
        channels
    }

    /// Expands the space into the deterministic arm lattice. Arm order
    /// is scenario-major, then channel, magnitude, onset — stable, so an
    /// arm index fully identifies its coordinates.
    pub fn arms(&self) -> Vec<ArmSpec> {
        let mut arms = Vec::new();
        let single_onset = &self.onsets[..1.min(self.onsets.len())];
        for (scenario_index, _) in self.scenarios.iter().enumerate() {
            for channel in &self.channels {
                let onsets = if channel.supports_onset() {
                    &self.onsets[..]
                } else {
                    single_onset
                };
                for &magnitude in &self.magnitudes {
                    for &onset in onsets {
                        let fault = channel.fault_spec(magnitude, onset);
                        arms.push(ArmSpec {
                            descriptor: Arm {
                                index: arms.len(),
                                scenario_index,
                                channel: channel.label(),
                                magnitude,
                                onset,
                                fault: fault.label(),
                            },
                            fault,
                        });
                    }
                }
            }
        }
        arms
    }
}

/// Serializable description of one lattice arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    /// Position in the lattice (stable arm identifier).
    pub index: usize,
    /// Scenario template index within the space.
    pub scenario_index: usize,
    /// Channel label.
    pub channel: String,
    /// Magnitude multiplier of this band.
    pub magnitude: f64,
    /// Onset frame of this band.
    pub onset: u64,
    /// Concrete fault label.
    pub fault: String,
}

/// One arm with its concrete fault plan.
#[derive(Debug, Clone)]
pub struct ArmSpec {
    /// Serializable coordinates.
    pub descriptor: Arm,
    /// The concrete fault this arm injects.
    pub fault: FaultSpec,
}

/// Beta-Bernoulli posterior over one arm's failure probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaPosterior {
    /// Failure pseudo-count (successes of the *search*, failures of the
    /// vehicle).
    pub alpha: f64,
    /// Benign pseudo-count.
    pub beta: f64,
}

impl Default for BetaPosterior {
    fn default() -> Self {
        BetaPosterior::uniform()
    }
}

impl BetaPosterior {
    /// The uniform Beta(1, 1) prior.
    pub fn uniform() -> Self {
        BetaPosterior {
            alpha: 1.0,
            beta: 1.0,
        }
    }

    /// Folds one observation.
    pub fn observe(&mut self, failed: bool) {
        if failed {
            self.alpha += 1.0;
        } else {
            self.beta += 1.0;
        }
    }

    /// Posterior mean failure probability.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Draws one Thompson sample (a Beta variate via the two-gamma
    /// ratio). Pure Rust, deterministic under a seeded [`StdRng`].
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        let a = sample_gamma(self.alpha, rng);
        let b = sample_gamma(self.beta, rng);
        a / (a + b)
    }
}

/// Samples Gamma(shape, 1) by Marsaglia–Tsang squeeze; posteriors keep
/// `shape >= 1`, where the method needs no boost step.
fn sample_gamma(shape: f64, rng: &mut StdRng) -> f64 {
    debug_assert!(shape >= 1.0, "Beta-Bernoulli counts never drop below 1");
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (3.0 * d.sqrt());
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random_range(1e-12..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Planner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Total runs the search may spend.
    pub budget: usize,
    /// Proposals per batch (the engine evaluates one batch at a time).
    pub batch: usize,
    /// Campaign seed; the Thompson sampler stream-splits from it.
    pub seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            budget: 120,
            batch: 8,
            seed: 2018,
        }
    }
}

/// One proposed run: an arm pull with frozen seed coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Proposal {
    /// The pulled arm's lattice index.
    pub arm: usize,
    /// Scenario template index (mixed into the world seed).
    pub scenario_index: usize,
    /// Pull count of this arm so far (mixed into the world seed).
    pub run_index: usize,
    /// The concrete fault to inject.
    pub fault: FaultSpec,
}

/// Outcome of one evaluated proposal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Whether the run failed (mission not successful, or any traffic
    /// violation occurred — the flight recorder's failure predicate).
    pub failed: bool,
    /// Triage class of the failure, when a trace was captured.
    pub class: Option<String>,
}

/// Trajectory record of one evaluated pull.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PullRecord {
    /// Pulled arm index.
    pub arm: usize,
    /// Run index the pull used.
    pub run_index: usize,
    /// Whether the run failed.
    pub failed: bool,
    /// Triage class, when classified.
    pub class: Option<String>,
}

/// Trajectory record of one proposed-and-observed batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Batch ordinal, 0-based.
    pub batch: usize,
    /// The batch's pulls, in flat-plan (job) order.
    pub pulls: Vec<PullRecord>,
    /// Posterior summaries after folding this batch: every arm pulled so
    /// far, in arm order.
    pub posteriors: Vec<PosteriorSummary>,
}

/// Posterior state of one arm at a point in the trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PosteriorSummary {
    /// Arm index.
    pub arm: usize,
    /// Pulls so far.
    pub pulls: usize,
    /// Failures so far.
    pub failures: usize,
    /// Posterior alpha.
    pub alpha: f64,
    /// Posterior beta.
    pub beta: f64,
    /// Posterior mean failure probability.
    pub mean: f64,
}

/// Failure count for one triage class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassCount {
    /// Rendered failure class (`outcome / violation / channel`).
    pub class: String,
    /// Failures of that class found by the search.
    pub count: usize,
}

/// Final search report: the headline failures-per-run metric plus the
/// concentration profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Configured budget.
    pub budget: usize,
    /// Runs actually spent.
    pub spent: usize,
    /// Failures found.
    pub failures: usize,
    /// Failures per run.
    pub failures_per_run: f64,
    /// Arms pulled at least once, ranked by posterior mean (descending;
    /// ties by arm index).
    pub top_arms: Vec<PosteriorSummary>,
    /// Failure counts grouped by triage class, descending.
    pub classes: Vec<ClassCount>,
}

/// The serializable search trajectory: config echo, the full arm
/// lattice, every batch, final posteriors, and the report. This is the
/// artifact the smoke tier golden-diffs, so it is byte-stable across
/// worker counts by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveTrajectory {
    /// Campaign seed the sampler split from.
    pub seed: u64,
    /// Total-run budget.
    pub budget: usize,
    /// Batch size.
    pub batch: usize,
    /// The full arm lattice, in order.
    pub arms: Vec<Arm>,
    /// Every proposed-and-observed batch.
    pub batches: Vec<BatchRecord>,
    /// Final report.
    pub report: AdaptiveReport,
}

/// Evaluates proposal batches; the planner is generic over this so its
/// search logic is testable without the simulator.
pub trait AdaptiveOracle {
    /// Evaluates a batch and returns its observations **in proposal
    /// order** — the fold order the determinism contract depends on.
    fn evaluate(&mut self, proposals: &[Proposal]) -> Vec<Observation>;
}

/// The online Thompson-sampling planner over the arm lattice.
#[derive(Debug, Clone)]
pub struct AdaptivePlanner {
    arms: Vec<ArmSpec>,
    config: AdaptiveConfig,
    posteriors: Vec<BetaPosterior>,
    scheduled: Vec<usize>,
    pulls: Vec<usize>,
    failures: Vec<usize>,
    spent: usize,
    rng: StdRng,
    batches: Vec<BatchRecord>,
}

impl AdaptivePlanner {
    /// Builds the planner over a space.
    ///
    /// # Panics
    ///
    /// Panics when the space expands to an empty lattice.
    pub fn new(space: &AdaptiveSpace, config: AdaptiveConfig) -> Self {
        let arms = space.arms();
        assert!(!arms.is_empty(), "adaptive space has no arms");
        let n = arms.len();
        let rng = StdRng::seed_from_u64(split_seed(config.seed, SAMPLER_STREAM));
        AdaptivePlanner {
            arms,
            config,
            posteriors: vec![BetaPosterior::uniform(); n],
            scheduled: vec![0; n],
            pulls: vec![0; n],
            failures: vec![0; n],
            spent: 0,
            rng,
            batches: Vec::new(),
        }
    }

    /// The arm lattice.
    pub fn arms(&self) -> &[ArmSpec] {
        &self.arms
    }

    /// Runs spent so far.
    pub fn spent(&self) -> usize {
        self.spent
    }

    /// Whether the budget is exhausted.
    pub fn finished(&self) -> bool {
        self.spent >= self.config.budget
    }

    /// Proposes the next batch by Thompson sampling: for each slot, one
    /// posterior sample per arm (drawn in arm order — the deterministic
    /// RNG consumption sequence), highest sample wins, ties to the lower
    /// arm index. Returns at most `batch` proposals, clipped to the
    /// remaining budget; empty once the budget is spent.
    pub fn propose(&mut self) -> Vec<Proposal> {
        let remaining = self.config.budget.saturating_sub(self.spent);
        let slots = remaining.min(self.config.batch);
        let mut proposals = Vec::with_capacity(slots);
        for _ in 0..slots {
            let mut best = 0usize;
            let mut best_sample = f64::NEG_INFINITY;
            for (arm, posterior) in self.posteriors.iter().enumerate() {
                let sample = posterior.sample(&mut self.rng);
                if sample > best_sample {
                    best_sample = sample;
                    best = arm;
                }
            }
            let spec = &self.arms[best];
            proposals.push(Proposal {
                arm: best,
                scenario_index: spec.descriptor.scenario_index,
                run_index: self.scheduled[best],
                fault: spec.fault.clone(),
            });
            self.scheduled[best] += 1;
        }
        proposals
    }

    /// Folds one batch of observations, in proposal order, into the
    /// posteriors and the trajectory.
    ///
    /// # Panics
    ///
    /// Panics when `observations` and `proposals` disagree in length —
    /// an oracle contract violation, not a recoverable condition.
    pub fn observe(&mut self, proposals: &[Proposal], observations: &[Observation]) {
        assert_eq!(
            proposals.len(),
            observations.len(),
            "oracle must observe every proposal"
        );
        let mut pulls = Vec::with_capacity(proposals.len());
        for (proposal, obs) in proposals.iter().zip(observations) {
            self.posteriors[proposal.arm].observe(obs.failed);
            self.pulls[proposal.arm] += 1;
            if obs.failed {
                self.failures[proposal.arm] += 1;
            }
            self.spent += 1;
            pulls.push(PullRecord {
                arm: proposal.arm,
                run_index: proposal.run_index,
                failed: obs.failed,
                class: obs.class.clone(),
            });
        }
        self.batches.push(BatchRecord {
            batch: self.batches.len(),
            pulls,
            posteriors: self.posterior_summaries(),
        });
    }

    /// Posterior summaries of every arm pulled so far, in arm order.
    fn posterior_summaries(&self) -> Vec<PosteriorSummary> {
        (0..self.arms.len())
            .filter(|&arm| self.pulls[arm] > 0)
            .map(|arm| PosteriorSummary {
                arm,
                pulls: self.pulls[arm],
                failures: self.failures[arm],
                alpha: self.posteriors[arm].alpha,
                beta: self.posteriors[arm].beta,
                mean: self.posteriors[arm].mean(),
            })
            .collect()
    }

    /// Assembles the final report.
    pub fn report(&self) -> AdaptiveReport {
        let spent = self.spent;
        let failures: usize = self.failures.iter().sum();
        let mut top_arms = self.posterior_summaries();
        top_arms.sort_by(|a, b| {
            b.mean
                .partial_cmp(&a.mean)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.arm.cmp(&b.arm))
        });
        let mut classes: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for batch in &self.batches {
            for pull in &batch.pulls {
                if let Some(class) = &pull.class {
                    *classes.entry(class.clone()).or_insert(0) += 1;
                }
            }
        }
        let mut classes: Vec<ClassCount> = classes
            .into_iter()
            .map(|(class, count)| ClassCount { class, count })
            .collect();
        classes.sort_by(|a, b| b.count.cmp(&a.count).then(a.class.cmp(&b.class)));
        AdaptiveReport {
            budget: self.config.budget,
            spent,
            failures,
            failures_per_run: if spent == 0 {
                0.0
            } else {
                failures as f64 / spent as f64
            },
            top_arms,
            classes,
        }
    }

    /// Assembles the full serializable trajectory.
    pub fn trajectory(&self) -> AdaptiveTrajectory {
        AdaptiveTrajectory {
            seed: self.config.seed,
            budget: self.config.budget,
            batch: self.config.batch,
            arms: self.arms.iter().map(|a| a.descriptor.clone()).collect(),
            batches: self.batches.clone(),
            report: self.report(),
        }
    }
}

/// Drives a planner against an oracle until the budget is spent.
pub fn drive(planner: &mut AdaptivePlanner, oracle: &mut dyn AdaptiveOracle) {
    while !planner.finished() {
        let proposals = planner.propose();
        if proposals.is_empty() {
            break;
        }
        let observations = oracle.evaluate(&proposals);
        planner.observe(&proposals, &observations);
    }
}

/// The production oracle: fans proposals through
/// [`Engine::evaluate_jobs`] and classifies failures by triage class.
/// Captured failure traces are kept, keyed by global pull index (the
/// flat-plan order), so `triage`/`shrink` tooling consumes them exactly
/// like campaign trace directories.
#[derive(Debug)]
pub struct EngineOracle<'a> {
    engine: &'a Engine,
    agent: AgentSpec,
    scenarios: Vec<Scenario>,
    spec: TraceSpec,
    evaluated: usize,
    /// Failure traces captured so far, keyed by global pull index.
    pub traces: Vec<(usize, RunTrace)>,
}

impl<'a> EngineOracle<'a> {
    /// Builds the oracle over the space's scenario templates.
    pub fn new(
        engine: &'a Engine,
        agent: AgentSpec,
        scenarios: Vec<Scenario>,
        study: &str,
    ) -> Self {
        EngineOracle {
            engine,
            agent,
            scenarios,
            spec: TraceSpec {
                level: TraceLevel::Blackbox,
                study: study.to_string(),
                blackbox_frames: 64,
                weights_fingerprint: None,
            },
            evaluated: 0,
            traces: Vec::new(),
        }
    }
}

impl AdaptiveOracle for EngineOracle<'_> {
    fn evaluate(&mut self, proposals: &[Proposal]) -> Vec<Observation> {
        let jobs: Vec<EvalJob> = proposals
            .iter()
            .map(|p| EvalJob {
                scenario: self.scenarios[p.scenario_index].clone(),
                scenario_index: p.scenario_index,
                run_index: p.run_index,
                fault: p.fault.clone(),
            })
            .collect();
        let results = self.engine.evaluate_jobs(&jobs, &self.agent, &self.spec);
        let mut observations = Vec::with_capacity(results.len());
        for (offset, (result, trace)) in results.into_iter().enumerate() {
            let failed = !result.outcome.is_success() || !result.violations.is_empty();
            let class = trace
                .as_ref()
                .and_then(failure_class)
                .map(|c| c.to_string());
            if let Some(trace) = trace {
                self.traces.push((self.evaluated + offset, trace));
            }
            observations.push(Observation { failed, class });
        }
        self.evaluated += proposals.len();
        observations
    }
}

/// Result of one engine-backed adaptive search.
#[derive(Debug)]
pub struct AdaptiveOutcome {
    /// The full serializable trajectory.
    pub trajectory: AdaptiveTrajectory,
    /// Failure traces, keyed by global pull index.
    pub traces: Vec<(usize, RunTrace)>,
}

/// Failure tally of a uniform control sweep at matched budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformReport {
    /// Runs spent.
    pub spent: usize,
    /// Failures found.
    pub failures: usize,
    /// Failures per run.
    pub failures_per_run: f64,
}

/// The uniform control: round-robins the same arm lattice (arm order,
/// wrapping) through the same oracle until `budget` runs are spent —
/// exactly the exhaustive-grid spending pattern adaptive search
/// replaces, with identical per-pull seed semantics, so failures-per-run
/// is directly comparable.
pub fn run_uniform(
    space: &AdaptiveSpace,
    budget: usize,
    batch: usize,
    oracle: &mut dyn AdaptiveOracle,
) -> UniformReport {
    let arms = space.arms();
    let mut scheduled = vec![0usize; arms.len()];
    let mut spent = 0usize;
    let mut failures = 0usize;
    let mut cursor = 0usize;
    while spent < budget {
        let slots = (budget - spent).min(batch.max(1));
        let mut proposals = Vec::with_capacity(slots);
        for _ in 0..slots {
            let arm = cursor % arms.len();
            cursor += 1;
            let spec = &arms[arm];
            proposals.push(Proposal {
                arm,
                scenario_index: spec.descriptor.scenario_index,
                run_index: scheduled[arm],
                fault: spec.fault.clone(),
            });
            scheduled[arm] += 1;
        }
        let observations = oracle.evaluate(&proposals);
        assert_eq!(observations.len(), proposals.len());
        failures += observations.iter().filter(|o| o.failed).count();
        spent += proposals.len();
    }
    UniformReport {
        spent,
        failures,
        failures_per_run: if spent == 0 {
            0.0
        } else {
            failures as f64 / spent as f64
        },
    }
}

/// Runs an adaptive search end to end: Thompson-sampled batches through
/// the engine until `config.budget` runs are spent. The returned
/// trajectory (and trace set) is byte-identical for any engine worker
/// count.
pub fn run_adaptive(
    engine: &Engine,
    space: &AdaptiveSpace,
    config: AdaptiveConfig,
    agent: &AgentSpec,
    study: &str,
) -> AdaptiveOutcome {
    let mut planner = AdaptivePlanner::new(space, config);
    let mut oracle = EngineOracle::new(engine, agent.clone(), space.scenarios.clone(), study);
    drive(&mut planner, &mut oracle);
    AdaptiveOutcome {
        trajectory: planner.trajectory(),
        traces: oracle.traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::scenario::TownSpec;

    fn tiny_scenario(seed: u64) -> Scenario {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(15.0)
            .min_route_length(50.0)
            .build()
    }

    fn tiny_space() -> AdaptiveSpace {
        AdaptiveSpace {
            scenarios: vec![tiny_scenario(11), tiny_scenario(13)],
            channels: vec![
                FaultChannel::Camera(ImageFault::gaussian(0.08)),
                FaultChannel::HardwareStuck {
                    target: HardwareTarget::ControlBrake,
                    value: 1.0,
                },
                FaultChannel::OutputDelay { frames: 15 },
            ],
            magnitudes: vec![0.5, 1.0],
            onsets: vec![0, 75],
        }
    }

    /// Oracle where a fixed arm set always fails and everything else is
    /// benign.
    struct FixedFailureOracle {
        failing: std::collections::BTreeSet<usize>,
    }

    impl AdaptiveOracle for FixedFailureOracle {
        fn evaluate(&mut self, proposals: &[Proposal]) -> Vec<Observation> {
            proposals
                .iter()
                .map(|p| Observation {
                    failed: self.failing.contains(&p.arm),
                    class: self
                        .failing
                        .contains(&p.arm)
                        .then(|| "timeout / none / none".to_string()),
                })
                .collect()
        }
    }

    #[test]
    fn lattice_order_is_stable_and_onset_collapses_for_delay() {
        let space = tiny_space();
        let arms = space.arms();
        // 2 scenarios × (2 triggered channels × 2 magnitudes × 2 onsets
        //              + 1 delay channel × 2 magnitudes × 1 onset)
        assert_eq!(arms.len(), 2 * (2 * 2 * 2 + 2));
        for (i, arm) in arms.iter().enumerate() {
            assert_eq!(arm.descriptor.index, i);
        }
        let delay_arms: Vec<&ArmSpec> = arms
            .iter()
            .filter(|a| a.descriptor.channel == "output-delay")
            .collect();
        assert_eq!(delay_arms.len(), 4);
        assert!(delay_arms.iter().all(|a| a.descriptor.onset == 0));
        // Magnitude scales the delay.
        assert_eq!(delay_arms[0].descriptor.fault, "delay 8f");
        assert_eq!(delay_arms[1].descriptor.fault, "delay 15f");
        // Expansion is deterministic.
        let again = space.arms();
        assert_eq!(
            arms.iter().map(|a| &a.descriptor).collect::<Vec<_>>(),
            again.iter().map(|a| &a.descriptor).collect::<Vec<_>>()
        );
    }

    #[test]
    fn posterior_counts_and_mean() {
        let mut p = BetaPosterior::uniform();
        assert_eq!(p.mean(), 0.5);
        p.observe(true);
        p.observe(true);
        p.observe(false);
        assert_eq!((p.alpha, p.beta), (3.0, 2.0));
        assert!((p.mean() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn beta_samples_are_in_unit_interval_and_deterministic() {
        let p = BetaPosterior {
            alpha: 7.0,
            beta: 3.0,
        };
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let x = p.sample(&mut a);
            let y = p.sample(&mut b);
            assert!(x > 0.0 && x < 1.0, "sample out of range: {x}");
            assert_eq!(x, y, "sampling must be deterministic under a seed");
        }
        // Samples track the posterior mean for a peaked posterior.
        let peaked = BetaPosterior {
            alpha: 400.0,
            beta: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mean = (0..500).map(|_| peaked.sample(&mut rng)).sum::<f64>() / 500.0;
        assert!((mean - 0.8).abs() < 0.02, "empirical mean {mean}");
    }

    #[test]
    fn planner_spends_exactly_the_budget_in_batches() {
        let space = tiny_space();
        let config = AdaptiveConfig {
            budget: 10,
            batch: 4,
            seed: 1,
        };
        let mut planner = AdaptivePlanner::new(&space, config);
        let mut oracle = FixedFailureOracle {
            failing: std::collections::BTreeSet::new(),
        };
        let mut batch_sizes = Vec::new();
        while !planner.finished() {
            let proposals = planner.propose();
            batch_sizes.push(proposals.len());
            let obs = oracle.evaluate(&proposals);
            planner.observe(&proposals, &obs);
        }
        assert_eq!(batch_sizes, vec![4, 4, 2], "last batch clips to budget");
        assert_eq!(planner.spent(), 10);
        let trajectory = planner.trajectory();
        assert_eq!(trajectory.batches.len(), 3);
        assert_eq!(trajectory.report.spent, 10);
    }

    #[test]
    fn thompson_sampling_concentrates_on_the_failing_arm() {
        let space = tiny_space();
        let arms = space.arms().len();
        let failing_arm = 5usize;
        let config = AdaptiveConfig {
            budget: 120,
            batch: 6,
            seed: 2018,
        };
        let mut planner = AdaptivePlanner::new(&space, config);
        let mut oracle = FixedFailureOracle {
            failing: [failing_arm].into_iter().collect(),
        };
        drive(&mut planner, &mut oracle);
        let report = planner.report();
        assert_eq!(report.spent, 120);
        let top = &report.top_arms[0];
        assert_eq!(
            top.arm, failing_arm,
            "the always-failing arm must rank first"
        );
        // The search must concentrate: the failing arm gets far more than
        // the uniform share of the budget.
        let uniform_share = 120 / arms;
        assert!(
            top.pulls > 5 * uniform_share.max(1),
            "failing arm pulled {} times (uniform share {})",
            top.pulls,
            uniform_share
        );
        assert_eq!(report.failures, top.failures);
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].count, report.failures);
    }

    #[test]
    fn run_indices_count_pulls_per_arm() {
        let space = tiny_space();
        let config = AdaptiveConfig {
            budget: 40,
            batch: 5,
            seed: 3,
        };
        let mut planner = AdaptivePlanner::new(&space, config);
        let mut oracle = FixedFailureOracle {
            failing: [2usize].into_iter().collect(),
        };
        let mut seen: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        while !planner.finished() {
            let proposals = planner.propose();
            for p in &proposals {
                let expected = seen.entry(p.arm).or_insert(0);
                assert_eq!(
                    p.run_index, *expected,
                    "run_index must equal prior pulls of the arm"
                );
                *expected += 1;
            }
            let obs = oracle.evaluate(&proposals);
            planner.observe(&proposals, &obs);
        }
    }

    #[test]
    fn identical_histories_yield_identical_trajectories() {
        let space = tiny_space();
        let config = AdaptiveConfig {
            budget: 60,
            batch: 4,
            seed: 77,
        };
        let run = || {
            let mut planner = AdaptivePlanner::new(&space, config.clone());
            let mut oracle = FixedFailureOracle {
                failing: [1usize, 9].into_iter().collect(),
            };
            drive(&mut planner, &mut oracle);
            serde_json::to_string_pretty(&planner.trajectory()).unwrap()
        };
        assert_eq!(
            run(),
            run(),
            "trajectory must be a pure function of seed + outcomes"
        );
    }

    #[test]
    fn trajectory_round_trips_through_json() {
        let space = tiny_space();
        let config = AdaptiveConfig {
            budget: 8,
            batch: 4,
            seed: 5,
        };
        let mut planner = AdaptivePlanner::new(&space, config);
        let mut oracle = FixedFailureOracle {
            failing: [0usize].into_iter().collect(),
        };
        drive(&mut planner, &mut oracle);
        let trajectory = planner.trajectory();
        let json = serde_json::to_string(&trajectory).unwrap();
        let back: AdaptiveTrajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trajectory);
    }

    #[test]
    fn channel_faults_scale_with_magnitude_and_onset() {
        let camera = FaultChannel::Camera(ImageFault::gaussian(0.08));
        match camera.fault_spec(2.0, 75) {
            FaultSpec::Input(f) => {
                assert_eq!(f.model, Some(ImageFault::Gaussian { sigma: 0.16 }));
                assert_eq!(f.trigger, Trigger::From { frame: 75 });
            }
            other => panic!("unexpected spec {other:?}"),
        }
        let stuck = FaultChannel::HardwareStuck {
            target: HardwareTarget::ControlBrake,
            value: 1.0,
        };
        match stuck.fault_spec(0.5, 150) {
            FaultSpec::Hardware(f) => {
                assert_eq!(f.model, BitFaultModel::StuckAt { value: 0.5 });
                assert_eq!(f.trigger, Trigger::From { frame: 150 });
            }
            other => panic!("unexpected spec {other:?}"),
        }
        // Salt & pepper clamps its probability.
        let sp = FaultChannel::Camera(ImageFault::salt_pepper(0.4));
        match sp.fault_spec(4.0, 0) {
            FaultSpec::Input(f) => {
                assert_eq!(f.model, Some(ImageFault::SaltPepper { p: 0.5 }))
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn uniform_control_round_robins_the_lattice() {
        let space = tiny_space();
        let arms = space.arms().len();
        let failing_arm = 5usize;
        let mut oracle = FixedFailureOracle {
            failing: [failing_arm].into_iter().collect(),
        };
        // Two full laps plus a partial third.
        let budget = 2 * arms + 3;
        let report = run_uniform(&space, budget, 7, &mut oracle);
        assert_eq!(report.spent, budget);
        // Round-robin pulls the failing arm once per completed lap.
        assert_eq!(report.failures, 2);
        assert!((report.failures_per_run - 2.0 / budget as f64).abs() < 1e-12);
    }

    #[test]
    fn paper_channels_cover_all_fault_classes() {
        let channels = AdaptiveSpace::paper_channels();
        assert_eq!(channels.len(), 11);
        let classes: std::collections::BTreeSet<&'static str> = channels
            .iter()
            .map(|c| c.fault_spec(1.0, 0).class())
            .collect();
        assert!(classes.contains("data"));
        assert!(classes.contains("hardware"));
        assert!(classes.contains("timing"));
    }
}
