//! Deterministic run replay: re-execute any recorded run from its trace
//! header and verify bit-identity frame by frame.
//!
//! A trace header carries the full run identity — scenario template,
//! `(scenario, run)` indices, fault plan, agent, and (for neural agents)
//! a weights fingerprint. Replay re-derives the per-run seed through the
//! same [`split_seed`] path the campaign used, asserts it matches the
//! recorded seed, re-executes the mission with the flight recorder on,
//! and compares everything the trace captured — summary, events, and the
//! black-box frame window — down to the bit pattern of every `f64`. The
//! first divergence (if any) is reported with its frame and field.

use crate::campaign::{run_single_traced, AgentSpec, TraceSpec};
use crate::fault::FaultSpec;
use avfi_sim::recorder::Recorder;
use avfi_trace::{fingerprint, RunTrace, TraceHeader, TraceLevel};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Why a replay could not be attempted at all (distinct from a replay
/// that ran and diverged).
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The embedded fault-spec JSON does not parse as a [`FaultSpec`].
    BadFaultSpec(String),
    /// The seed re-derived from the template and indices does not match
    /// the recorded seed — the trace is internally inconsistent.
    SeedMismatch {
        /// Seed stored in the header.
        recorded: u64,
        /// Seed derived from (template seed, scenario index, run index).
        derived: u64,
    },
    /// The header names an agent this build does not know.
    UnknownAgent(String),
    /// The trace was recorded with a neural agent but no weights were
    /// provided to replay against.
    MissingWeights,
    /// The provided weights fingerprint differs from the recorded one —
    /// replaying against different weights would "diverge" trivially.
    WeightsMismatch {
        /// Fingerprint stored in the header.
        recorded: u64,
        /// Fingerprint of the provided weights.
        provided: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadFaultSpec(e) => write!(f, "fault spec in trace is invalid: {e}"),
            ReplayError::SeedMismatch { recorded, derived } => write!(
                f,
                "trace seed {recorded:#x} does not match derived seed {derived:#x}"
            ),
            ReplayError::UnknownAgent(a) => write!(f, "unknown agent {a:?} in trace"),
            ReplayError::MissingWeights => {
                write!(
                    f,
                    "trace was recorded with il-cnn; weights required for replay"
                )
            }
            ReplayError::WeightsMismatch { recorded, provided } => write!(
                f,
                "weights fingerprint {provided:#x} does not match recorded {recorded:#x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Where a replay first stopped matching the recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// What differed (summary field, event index, frame field, …).
    pub what: String,
    /// The frame of the first divergence, when frame-resolved.
    pub frame: Option<u64>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.frame {
            Some(frame) => write!(f, "frame {frame}: {}", self.what),
            None => f.write_str(&self.what),
        }
    }
}

/// Outcome of a replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayVerdict {
    /// The re-executed run reproduced the recording bit for bit.
    Match {
        /// Frames compared (the black-box window; 0 for summary traces).
        frames_checked: usize,
        /// Events compared.
        events_checked: usize,
    },
    /// The re-executed run differs; holds the first divergence.
    Diverged(Divergence),
}

impl ReplayVerdict {
    /// `true` when the replay matched.
    pub fn is_match(&self) -> bool {
        matches!(self, ReplayVerdict::Match { .. })
    }
}

/// Machine-readable digest of one replay attempt (the `replay --json`
/// output row; also consumable by external tooling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayRecord {
    /// Trace file the attempt was made on.
    pub file: String,
    /// `"match"`, `"diverged"`, or `"error"`.
    pub status: String,
    /// Frames bit-compared (0 unless the replay ran to comparison).
    pub frames_checked: usize,
    /// Events compared.
    pub events_checked: usize,
    /// Frame of the first divergence, when frame-resolved.
    pub first_divergent_frame: Option<u64>,
    /// Divergence description or error message; `None` on a match.
    pub detail: Option<String>,
}

impl ReplayRecord {
    /// A record from a replay that ran to a verdict.
    pub fn from_verdict(file: &str, verdict: &ReplayVerdict) -> Self {
        match verdict {
            ReplayVerdict::Match {
                frames_checked,
                events_checked,
            } => ReplayRecord {
                file: file.to_string(),
                status: "match".to_string(),
                frames_checked: *frames_checked,
                events_checked: *events_checked,
                first_divergent_frame: None,
                detail: None,
            },
            ReplayVerdict::Diverged(d) => ReplayRecord {
                file: file.to_string(),
                status: "diverged".to_string(),
                frames_checked: 0,
                events_checked: 0,
                first_divergent_frame: d.frame,
                detail: Some(d.what.clone()),
            },
        }
    }

    /// A record from a replay that could not be attempted.
    pub fn from_error(file: &str, error: &dyn fmt::Display) -> Self {
        ReplayRecord {
            file: file.to_string(),
            status: "error".to_string(),
            frames_checked: 0,
            events_checked: 0,
            first_divergent_frame: None,
            detail: Some(error.to_string()),
        }
    }
}

/// Rebuilds the [`AgentSpec`] a trace header names, fingerprint-checking
/// `weights` for neural traces (shared by replay and the shrinker).
///
/// # Errors
///
/// [`ReplayError::UnknownAgent`] for agent names this build does not
/// know, [`ReplayError::MissingWeights`] /
/// [`ReplayError::WeightsMismatch`] for neural traces without (matching)
/// weights.
pub fn agent_from_header(
    header: &TraceHeader,
    weights: Option<&[u8]>,
) -> Result<AgentSpec, ReplayError> {
    match header.agent.as_str() {
        "expert" => Ok(AgentSpec::Expert),
        "il-cnn" => {
            let bytes = weights.ok_or(ReplayError::MissingWeights)?;
            let provided = fingerprint(bytes);
            if let Some(recorded) = header.weights_fingerprint {
                if recorded != provided {
                    return Err(ReplayError::WeightsMismatch { recorded, provided });
                }
            }
            Ok(AgentSpec::Neural {
                weights: Arc::new(bytes.to_vec()),
            })
        }
        other => Err(ReplayError::UnknownAgent(other.to_string())),
    }
}

/// Re-executes the run a trace records and verifies bit-identity.
///
/// `weights` must be the serialized IL-CNN weights when the trace was
/// recorded with the neural agent (checked against the recorded
/// fingerprint) and is ignored for expert traces.
///
/// # Errors
///
/// Returns a [`ReplayError`] when the replay cannot even be attempted;
/// a run that executes but differs is a [`ReplayVerdict::Diverged`],
/// not an error.
pub fn replay_trace(
    trace: &RunTrace,
    weights: Option<&[u8]>,
) -> Result<ReplayVerdict, ReplayError> {
    let header = &trace.header;
    let fault: FaultSpec = serde_json::from_str(&header.fault_spec_json)
        .map_err(|e| ReplayError::BadFaultSpec(e.to_string()))?;

    let derived = header.derived_seed();
    if derived != header.seed {
        return Err(ReplayError::SeedMismatch {
            recorded: header.seed,
            derived,
        });
    }

    let agent = agent_from_header(header, weights)?;

    let spec = TraceSpec {
        level: header.level,
        study: header.study.clone(),
        blackbox_frames: header.blackbox_frames,
        weights_fingerprint: header.weights_fingerprint,
    };
    let mut recorder = if header.level == TraceLevel::Blackbox {
        Recorder::ring(header.blackbox_frames.max(1))
    } else {
        Recorder::new(false)
    };
    let (_, replayed) = run_single_traced(
        &header.scenario,
        header.scenario_index,
        header.run_index,
        &fault,
        &agent,
        &spec,
        &mut recorder,
    );
    let Some(replayed) = replayed else {
        // A black-box trace exists because the run failed; the replay not
        // emitting one means the re-executed run no longer fails.
        return Ok(ReplayVerdict::Diverged(Divergence {
            what: "replayed run did not fail (no trace emitted)".to_string(),
            frame: None,
        }));
    };
    Ok(match first_divergence(trace, &replayed) {
        Some(d) => ReplayVerdict::Diverged(d),
        None => ReplayVerdict::Match {
            frames_checked: trace.frames.len(),
            events_checked: trace.events.len(),
        },
    })
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

/// Compares a recording against its replay, returning the first
/// difference. All `f64` comparisons are on bit patterns.
fn first_divergence(recorded: &RunTrace, replayed: &RunTrace) -> Option<Divergence> {
    let flat = |what: &str| {
        Some(Divergence {
            what: what.to_string(),
            frame: None,
        })
    };

    let (a, b) = (&recorded.summary, &replayed.summary);
    if a.success != b.success || a.outcome != b.outcome {
        return flat(&format!(
            "outcome differs: recorded {:?}, replayed {:?}",
            a.outcome, b.outcome
        ));
    }
    if bits(a.duration) != bits(b.duration) {
        return flat(&format!(
            "duration differs: recorded {}, replayed {}",
            a.duration, b.duration
        ));
    }
    if bits(a.distance_km) != bits(b.distance_km) {
        return flat(&format!(
            "distance differs: recorded {}, replayed {}",
            a.distance_km, b.distance_km
        ));
    }
    if a.violations != b.violations {
        return flat(&format!(
            "violation count differs: recorded {}, replayed {}",
            a.violations, b.violations
        ));
    }
    if a.injection_time.map(bits) != b.injection_time.map(bits) {
        return flat(&format!(
            "injection time differs: recorded {:?}, replayed {:?}",
            a.injection_time, b.injection_time
        ));
    }

    for (i, (x, y)) in recorded.events.iter().zip(&replayed.events).enumerate() {
        if x != y {
            return Some(Divergence {
                what: format!("event {i} differs: recorded {x:?}, replayed {y:?}"),
                frame: Some(x.frame()),
            });
        }
    }
    if recorded.events.len() != replayed.events.len() {
        return flat(&format!(
            "event count differs: recorded {}, replayed {}",
            recorded.events.len(),
            replayed.events.len()
        ));
    }

    for (x, y) in recorded.frames.iter().zip(&replayed.frames) {
        let fields = [
            ("time", x.time, y.time),
            ("x", x.position.x, y.position.x),
            ("y", x.position.y, y.position.y),
            ("heading", x.heading, y.heading),
            ("speed", x.speed, y.speed),
            ("steer", x.control.steer, y.control.steer),
            ("throttle", x.control.throttle, y.control.throttle),
            ("brake", x.control.brake, y.control.brake),
        ];
        if x.frame != y.frame {
            return Some(Divergence {
                what: format!(
                    "frame numbering differs: recorded {}, replayed {}",
                    x.frame, y.frame
                ),
                frame: Some(x.frame),
            });
        }
        for (name, rec, rep) in fields {
            if bits(rec) != bits(rep) {
                return Some(Divergence {
                    what: format!("{name} differs: recorded {rec}, replayed {rep}"),
                    frame: Some(x.frame),
                });
            }
        }
    }
    if recorded.frames.len() != replayed.frames.len() {
        return flat(&format!(
            "frame count differs: recorded {}, replayed {}",
            recorded.frames.len(),
            replayed.frames.len()
        ));
    }
    if recorded.dropped_frames != replayed.dropped_frames {
        return flat(&format!(
            "dropped-frame count differs: recorded {}, replayed {}",
            recorded.dropped_frames, replayed.dropped_frames
        ));
    }
    None
}
