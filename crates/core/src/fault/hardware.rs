//! Hardware faults: bit-level corruption of commands and sensor scalars.
//!
//! "AVFI injects hardware faults by injecting single-bit, multiple-bit,
//! and stuck-at faults in the hardware components of the autonomous
//! systems \[…\]. For example, AVFI can intercept and corrupt a control
//! command from the IL-CNN and then forward it to the server."
//!
//! Faults operate on the IEEE-754 representation of the targeted scalar.
//! Downstream sanitization (drive-by-wire clamping of commands) is part of
//! the system under test and is *not* bypassed — a flipped sign bit on
//! `steer` matters; a flipped exponent bit that produces `inf` gets
//! clamped, exactly as a real actuation firmware would saturate.

use crate::trigger::Trigger;
use avfi_sim::physics::VehicleControl;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Which scalar the fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardwareTarget {
    /// Steering command out of the ADA.
    ControlSteer,
    /// Throttle command out of the ADA.
    ControlThrottle,
    /// Brake command out of the ADA.
    ControlBrake,
    /// Speed measurement into the ADA.
    SensorSpeed,
    /// GPS easting into the ADA.
    SensorGpsX,
    /// GPS northing into the ADA.
    SensorGpsY,
}

impl HardwareTarget {
    /// All targets (for sweeps).
    pub const ALL: [HardwareTarget; 6] = [
        HardwareTarget::ControlSteer,
        HardwareTarget::ControlThrottle,
        HardwareTarget::ControlBrake,
        HardwareTarget::SensorSpeed,
        HardwareTarget::SensorGpsX,
        HardwareTarget::SensorGpsY,
    ];

    /// Short label.
    pub fn label(&self) -> &'static str {
        match self {
            HardwareTarget::ControlSteer => "steer",
            HardwareTarget::ControlThrottle => "throttle",
            HardwareTarget::ControlBrake => "brake",
            HardwareTarget::SensorSpeed => "speed",
            HardwareTarget::SensorGpsX => "gps-x",
            HardwareTarget::SensorGpsY => "gps-y",
        }
    }

    /// `true` for targets on the command (output) path.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            HardwareTarget::ControlSteer
                | HardwareTarget::ControlThrottle
                | HardwareTarget::ControlBrake
        )
    }
}

/// The bit-level fault model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BitFaultModel {
    /// Flip one bit of the IEEE-754 double.
    SingleBitFlip {
        /// Bit position `0..64` (63 = sign, 52–62 = exponent).
        bit: u8,
    },
    /// Flip several bits.
    MultiBitFlip {
        /// Bit positions.
        bits: Vec<u8>,
    },
    /// Force the scalar to a constant.
    StuckAt {
        /// The stuck value.
        value: f64,
    },
}

impl BitFaultModel {
    /// Applies the model to a scalar.
    pub fn apply(&self, value: f64) -> f64 {
        match self {
            BitFaultModel::SingleBitFlip { bit } => flip_bit(value, *bit),
            BitFaultModel::MultiBitFlip { bits } => bits.iter().fold(value, |v, b| flip_bit(v, *b)),
            BitFaultModel::StuckAt { value } => *value,
        }
    }

    /// Short label.
    pub fn label(&self) -> String {
        match self {
            BitFaultModel::SingleBitFlip { bit } => format!("bitflip@{bit}"),
            BitFaultModel::MultiBitFlip { bits } => format!("bitflip x{}", bits.len()),
            BitFaultModel::StuckAt { value } => format!("stuck@{value}"),
        }
    }
}

/// Flips bit `bit` (0 = LSB of the mantissa, 63 = sign) of an `f64`.
///
/// # Panics
///
/// Panics if `bit >= 64`.
pub fn flip_bit(value: f64, bit: u8) -> f64 {
    assert!(bit < 64, "bit index out of range");
    f64::from_bits(value.to_bits() ^ (1u64 << bit))
}

/// A complete hardware-fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareFault {
    /// Corrupted scalar.
    pub target: HardwareTarget,
    /// Bit-level model.
    pub model: BitFaultModel,
    /// When the fault is active.
    pub trigger: Trigger,
}

impl HardwareFault {
    /// A fault active on every frame.
    pub fn always(target: HardwareTarget, model: BitFaultModel) -> Self {
        HardwareFault {
            target,
            model,
            trigger: Trigger::Always,
        }
    }

    /// A fault that flips a uniformly random bit, intermittently with
    /// per-frame probability `p` (transient fault in the processing
    /// fabric).
    pub fn transient(target: HardwareTarget, bit: u8, p: f64) -> Self {
        HardwareFault {
            target,
            model: BitFaultModel::SingleBitFlip { bit },
            trigger: Trigger::Bernoulli { p },
        }
    }

    /// Label for tables.
    pub fn label(&self) -> String {
        format!("{}:{}", self.target.label(), self.model.label())
    }

    /// Applies the fault to a control command (command-path targets only;
    /// sensor targets leave it unchanged).
    pub fn corrupt_control(&self, control: VehicleControl) -> VehicleControl {
        let mut c = control;
        match self.target {
            HardwareTarget::ControlSteer => c.steer = self.model.apply(c.steer),
            HardwareTarget::ControlThrottle => c.throttle = self.model.apply(c.throttle),
            HardwareTarget::ControlBrake => c.brake = self.model.apply(c.brake),
            _ => {}
        }
        c
    }

    /// Applies the fault to sensor scalars `(speed, gps_x, gps_y)`
    /// (sensor-path targets only).
    pub fn corrupt_sensors(&self, speed: &mut f64, gps_x: &mut f64, gps_y: &mut f64) {
        match self.target {
            HardwareTarget::SensorSpeed => *speed = self.model.apply(*speed),
            HardwareTarget::SensorGpsX => *gps_x = self.model.apply(*gps_x),
            HardwareTarget::SensorGpsY => *gps_y = self.model.apply(*gps_y),
            _ => {}
        }
    }
}

/// Samples a random bit position, weighted toward consequential bits (sign
/// and high exponent flips are what real SDC studies observe mattering).
pub fn sample_bit(rng: &mut StdRng) -> u8 {
    // 25% sign, 35% exponent, 40% mantissa.
    let r: f64 = rng.random_range(0.0..1.0);
    if r < 0.25 {
        63
    } else if r < 0.60 {
        rng.random_range(52..63) as u8
    } else {
        rng.random_range(0..52) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::rng::stream_rng;

    #[test]
    fn flip_sign_bit() {
        assert_eq!(flip_bit(1.0, 63), -1.0);
        assert_eq!(flip_bit(-0.5, 63), 0.5);
    }

    #[test]
    fn flip_is_involution() {
        for bit in [0u8, 17, 40, 52, 62, 63] {
            let v = 0.7253;
            assert_eq!(flip_bit(flip_bit(v, bit), bit), v);
        }
    }

    #[test]
    fn exponent_flip_is_large() {
        let v = 0.5;
        let f = flip_bit(v, 62);
        assert!(f.abs() > 1e10 || f.abs() < 1e-10 || !f.is_finite(), "f={f}");
    }

    #[test]
    fn stuck_at_overrides() {
        let m = BitFaultModel::StuckAt { value: 1.0 };
        assert_eq!(m.apply(0.123), 1.0);
    }

    #[test]
    fn corrupt_control_touches_only_target() {
        let fault = HardwareFault::always(
            HardwareTarget::ControlSteer,
            BitFaultModel::SingleBitFlip { bit: 63 },
        );
        let c = VehicleControl::new(0.5, 0.7, 0.0);
        let f = fault.corrupt_control(c);
        assert_eq!(f.steer, -0.5);
        assert_eq!(f.throttle, 0.7);
        assert_eq!(f.brake, 0.0);
    }

    #[test]
    fn sensor_target_does_not_touch_control() {
        let fault = HardwareFault::always(
            HardwareTarget::SensorSpeed,
            BitFaultModel::StuckAt { value: 0.0 },
        );
        let c = VehicleControl::new(0.5, 0.7, 0.0);
        assert_eq!(fault.corrupt_control(c), c);
        let (mut s, mut x, mut y) = (8.0, 100.0, 50.0);
        fault.corrupt_sensors(&mut s, &mut x, &mut y);
        assert_eq!(s, 0.0);
        assert_eq!((x, y), (100.0, 50.0));
    }

    #[test]
    fn sampled_bits_in_range_and_varied() {
        let mut rng = stream_rng(9, 0);
        let bits: Vec<u8> = (0..200).map(|_| sample_bit(&mut rng)).collect();
        assert!(bits.iter().all(|b| *b < 64));
        assert!(bits.contains(&63), "no sign flips sampled");
        assert!(bits.iter().any(|b| *b < 52), "no mantissa flips sampled");
    }

    #[test]
    #[should_panic(expected = "bit index")]
    fn bit_out_of_range_panics() {
        let _ = flip_bit(1.0, 64);
    }
}
