//! Timing faults: delays, drops and reordering between components.
//!
//! "AVFI injects timing faults into the communication paths of the
//! network, resulting in (a) delays in flow of data from one component of
//! the AV system to another, (b) loss of data, or (c) out-of-order
//! delivery of the data packets. For example, AVFI pauses the output of
//! IL-CNN for k frames and either replays or drops the outputs."
//!
//! The paper's Figure 4 sweeps the *output delay* between the ADA and
//! actuation over {0, 5, 10, 20, 30} frames at 15 FPS.

use avfi_sim::physics::VehicleControl;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A timing-fault plan on the command path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimingFault {
    /// The actuation applies the command computed `frames` frames ago
    /// (pipeline delay). Until the pipe fills, the vehicle coasts.
    OutputDelay {
        /// Delay in frames (15 frames = 1 s).
        frames: usize,
    },
    /// Each frame's command is lost with probability `p`; the actuator
    /// holds the last delivered command (replay).
    DropFrames {
        /// Per-frame loss probability.
        p: f64,
    },
    /// Commands are delivered out of order within a sliding window of
    /// `window` frames.
    Reorder {
        /// Shuffle window length in frames.
        window: usize,
    },
}

impl TimingFault {
    /// Label for tables.
    pub fn label(&self) -> String {
        match self {
            TimingFault::OutputDelay { frames } => format!("delay {frames}f"),
            TimingFault::DropFrames { p } => format!("drop p={p}"),
            TimingFault::Reorder { window } => format!("reorder w={window}"),
        }
    }
}

/// Stateful executor for a timing fault on the command stream.
#[derive(Debug)]
pub struct TimingChannel {
    fault: TimingFault,
    queue: VecDeque<VehicleControl>,
    last_delivered: VehicleControl,
}

impl TimingChannel {
    /// Creates the channel for a fault plan.
    pub fn new(fault: TimingFault) -> Self {
        TimingChannel {
            fault,
            queue: VecDeque::new(),
            last_delivered: VehicleControl::coast(),
        }
    }

    /// The configured fault.
    pub fn fault(&self) -> &TimingFault {
        &self.fault
    }

    /// Pushes the command computed this frame and returns the command the
    /// actuator receives this frame.
    pub fn transfer(&mut self, fresh: VehicleControl, rng: &mut StdRng) -> VehicleControl {
        match self.fault {
            TimingFault::OutputDelay { frames } => {
                if frames == 0 {
                    return fresh;
                }
                self.queue.push_back(fresh);
                if self.queue.len() > frames {
                    let out = self.queue.pop_front().expect("len > frames >= 1");
                    self.last_delivered = out;
                    out
                } else {
                    // Pipe still filling: the actuator has nothing newer
                    // than the initial state.
                    self.last_delivered
                }
            }
            TimingFault::DropFrames { p } => {
                if rng.random_range(0.0..1.0) < p {
                    self.last_delivered
                } else {
                    self.last_delivered = fresh;
                    fresh
                }
            }
            TimingFault::Reorder { window } => {
                self.queue.push_back(fresh);
                if self.queue.len() < window.max(1) {
                    return self.last_delivered;
                }
                let idx = rng.random_range(0..self.queue.len());
                let out = self.queue.remove(idx).expect("index in range");
                self.last_delivered = out;
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::rng::stream_rng;

    fn ctrl(steer: f64) -> VehicleControl {
        VehicleControl::new(steer, 0.5, 0.0)
    }

    #[test]
    fn zero_delay_is_transparent() {
        let mut ch = TimingChannel::new(TimingFault::OutputDelay { frames: 0 });
        let mut rng = stream_rng(1, 0);
        for i in 0..5 {
            let c = ctrl(i as f64 * 0.1);
            assert_eq!(ch.transfer(c, &mut rng), c);
        }
    }

    #[test]
    fn delay_shifts_commands_by_k() {
        let k = 3;
        let mut ch = TimingChannel::new(TimingFault::OutputDelay { frames: k });
        let mut rng = stream_rng(2, 0);
        let mut delivered = Vec::new();
        for i in 0..10 {
            delivered.push(ch.transfer(ctrl(i as f64 * 0.1), &mut rng));
        }
        // First k frames coast; afterwards delivery i carries command i-k.
        for d in delivered.iter().take(k) {
            assert_eq!(*d, VehicleControl::coast());
        }
        for (i, d) in delivered.iter().enumerate().skip(k) {
            assert_eq!(*d, ctrl((i - k) as f64 * 0.1), "at frame {i}");
        }
    }

    #[test]
    fn drops_hold_last_command() {
        let mut ch = TimingChannel::new(TimingFault::DropFrames { p: 1.0 });
        let mut rng = stream_rng(3, 0);
        let first = ch.transfer(ctrl(0.5), &mut rng);
        // p = 1: everything dropped, holds initial coast forever.
        assert_eq!(first, VehicleControl::coast());
        assert_eq!(ch.transfer(ctrl(0.9), &mut rng), VehicleControl::coast());
    }

    #[test]
    fn drop_rate_statistics() {
        let mut ch = TimingChannel::new(TimingFault::DropFrames { p: 0.3 });
        let mut rng = stream_rng(4, 0);
        let mut delivered_fresh = 0;
        for i in 0..2000 {
            let c = ctrl((i % 100) as f64 / 100.0);
            if ch.transfer(c, &mut rng) == c {
                delivered_fresh += 1;
            }
        }
        let rate = delivered_fresh as f64 / 2000.0;
        assert!((rate - 0.7).abs() < 0.05, "fresh rate={rate}");
    }

    #[test]
    fn reorder_scrambles_but_conserves_commands() {
        let mut ch = TimingChannel::new(TimingFault::Reorder { window: 4 });
        let mut rng = stream_rng(5, 0);
        let n = 200usize;
        // Encode the frame index in the steer value (kept within [-1, 1]
        // so clamping preserves identity).
        let encode = |i: usize| (i % 100) as f64 / 100.0;
        let mut delivered: Vec<f64> = Vec::new();
        for i in 0..n {
            delivered.push(ch.transfer(ctrl(encode(i)), &mut rng).steer);
        }
        // The first window-1 frames hold coast (steer 0); afterwards every
        // delivery is a real command and no command is duplicated beyond
        // what the hold phase produces.
        let fifo: Vec<f64> = (0..n).map(encode).collect();
        assert_ne!(delivered, fifo, "reorder produced FIFO order");
        // Every delivered non-zero steer was actually sent.
        for d in delivered.iter().filter(|d| **d != 0.0) {
            assert!(fifo.iter().any(|f| (f - d).abs() < 1e-12));
        }
    }
}
