//! Fault models: the four classes of §II of the paper.

pub mod hardware;
pub mod input;
pub mod ml;
pub mod timing;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Complete fault plan for one campaign: which class, which model, when.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Golden (fault-free) run.
    #[default]
    None,
    /// Data faults on sensor payloads.
    Input(input::InputFault),
    /// Bit-level faults on commands and sensor scalars.
    Hardware(hardware::HardwareFault),
    /// Delays / drops / reordering between ADA and actuation.
    Timing(timing::TimingFault),
    /// Faults in the IL-CNN parameters or neurons.
    Ml(ml::MlFault),
}

impl FaultSpec {
    /// Short label for tables and plots (matches the paper's axis labels
    /// for the input models).
    pub fn label(&self) -> String {
        match self {
            FaultSpec::None => "NoInject".to_string(),
            FaultSpec::Input(f) => f.label(),
            FaultSpec::Hardware(f) => f.label(),
            FaultSpec::Timing(f) => f.label(),
            FaultSpec::Ml(f) => f.label(),
        }
    }

    /// Paper fault class name.
    pub fn class(&self) -> &'static str {
        match self {
            FaultSpec::None => "none",
            FaultSpec::Input(_) => "data",
            FaultSpec::Hardware(_) => "hardware",
            FaultSpec::Timing(_) => "timing",
            FaultSpec::Ml(_) => "machine-learning",
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::input::{ImageFault, InputFault};
    use super::*;

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(FaultSpec::None.label(), "NoInject");
        let g = FaultSpec::Input(InputFault::always(ImageFault::gaussian(0.1)));
        assert_eq!(g.label(), "Gaussian");
        assert_eq!(g.class(), "data");
    }

    #[test]
    fn spec_serializes() {
        let spec = FaultSpec::Input(InputFault::always(ImageFault::salt_pepper(0.05)));
        let s = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(spec, back);
    }
}
