//! Data faults: corruption of sensor payloads in flight.
//!
//! "AVFI injects data faults by manipulating sensor measurements (such as
//! camera images, LIDAR, and GPS) or world measurements (such as car speed
//! \[…\]) taken by the AV system. \[…\] AVFI intercepts the RGB camera
//! sensor data from the server, modifies the image according to a
//! sensor-specific fault model, and then forwards it to the IL-CNN."
//!
//! The five camera fault models are exactly the x-axis of the paper's
//! Figures 2 and 3: Gaussian, S&P (salt & pepper), SolidOcc, TranspOcc,
//! WaterDrop.

use crate::trigger::Trigger;
use avfi_sim::rng::normal;
use avfi_sim::sensors::Image;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Camera image fault models (Fig. 2/3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ImageFault {
    /// Additive white Gaussian noise per channel.
    Gaussian {
        /// Noise standard deviation (channels are in `[0, 1]`).
        sigma: f64,
    },
    /// Salt-and-pepper impulse noise.
    SaltPepper {
        /// Probability that a pixel is replaced by black or white.
        p: f64,
    },
    /// Opaque occlusion patch (a sticker on the lens); the position is
    /// sampled once per run and then stays put.
    SolidOcclusion {
        /// Patch side as a fraction of the image's smaller dimension.
        frac: f64,
    },
    /// Semi-transparent occlusion patch (dirt film).
    TransparentOcclusion {
        /// Patch side as a fraction of the image's smaller dimension.
        frac: f64,
        /// Blend opacity of the gray film, `0..1`.
        alpha: f64,
    },
    /// Water droplets on the lens: circular blobs that replace detail with
    /// the blob-center color (refraction-ish) and brighten slightly.
    WaterDrop {
        /// Number of droplets.
        drops: usize,
        /// Droplet radius as a fraction of image width.
        radius_frac: f64,
    },
}

impl ImageFault {
    /// Gaussian noise with the calibrated default σ.
    pub fn gaussian(sigma: f64) -> Self {
        ImageFault::Gaussian { sigma }
    }

    /// Salt & pepper with pixel-corruption probability `p`.
    pub fn salt_pepper(p: f64) -> Self {
        ImageFault::SaltPepper { p }
    }

    /// Solid occlusion covering `frac` of the smaller image dimension.
    pub fn solid_occlusion(frac: f64) -> Self {
        ImageFault::SolidOcclusion { frac }
    }

    /// Transparent occlusion.
    pub fn transparent_occlusion(frac: f64, alpha: f64) -> Self {
        ImageFault::TransparentOcclusion { frac, alpha }
    }

    /// Water droplets.
    pub fn water_drop(drops: usize, radius_frac: f64) -> Self {
        ImageFault::WaterDrop { drops, radius_frac }
    }

    /// The five models with the calibrated severities used by the Figure
    /// 2/3 reproduction.
    pub fn paper_suite() -> [ImageFault; 5] {
        [
            ImageFault::gaussian(0.08),
            ImageFault::salt_pepper(0.02),
            ImageFault::solid_occlusion(0.30),
            ImageFault::transparent_occlusion(0.6, 0.5),
            ImageFault::water_drop(4, 0.08),
        ]
    }

    /// Axis label (paper spelling).
    pub fn label(&self) -> &'static str {
        match self {
            ImageFault::Gaussian { .. } => "Gaussian",
            ImageFault::SaltPepper { .. } => "S&P",
            ImageFault::SolidOcclusion { .. } => "SolidOcc",
            ImageFault::TransparentOcclusion { .. } => "TranspOcc",
            ImageFault::WaterDrop { .. } => "WaterDrop",
        }
    }

    /// Applies the fault to an image. `layout` carries the per-run random
    /// geometry (occlusion position, droplet layout); per-frame noise draws
    /// from `rng`.
    pub fn apply(&self, image: &mut Image, layout: &ImageFaultLayout, rng: &mut StdRng) {
        let (w, h) = (image.width(), image.height());
        match *self {
            ImageFault::Gaussian { sigma } => {
                for v in image.data_mut() {
                    *v += normal(rng, 0.0, sigma) as f32;
                }
                image.saturate();
            }
            ImageFault::SaltPepper { p } => {
                for y in 0..h {
                    for x in 0..w {
                        let r: f64 = rng.random_range(0.0..1.0);
                        if r < p {
                            let c = if r < p * 0.5 { 0.0 } else { 1.0 };
                            image.set_pixel(x, y, [c, c, c]);
                        }
                    }
                }
            }
            ImageFault::SolidOcclusion { .. } => {
                let (x0, y0, x1, y1) = layout.rect;
                image.fill_rect(x0, y0, x1, y1, [0.02, 0.02, 0.02]);
            }
            ImageFault::TransparentOcclusion { alpha, .. } => {
                let (x0, y0, x1, y1) = layout.rect;
                image.blend_rect(x0, y0, x1, y1, [0.45, 0.45, 0.45], alpha as f32);
            }
            ImageFault::WaterDrop { .. } => {
                for &(cx, cy, r) in &layout.drops {
                    let center = image.pixel((cx as usize).min(w - 1), (cy as usize).min(h - 1));
                    let bright = [
                        (center[0] + 0.15).min(1.0),
                        (center[1] + 0.15).min(1.0),
                        (center[2] + 0.18).min(1.0),
                    ];
                    let (x_lo, x_hi) = ((cx - r).max(0.0) as usize, ((cx + r) as usize).min(w - 1));
                    let (y_lo, y_hi) = ((cy - r).max(0.0) as usize, ((cy + r) as usize).min(h - 1));
                    for y in y_lo..=y_hi {
                        for x in x_lo..=x_hi {
                            let dx = x as f64 - cx;
                            let dy = y as f64 - cy;
                            if dx * dx + dy * dy <= r * r {
                                image.blend_pixel(x, y, bright, 0.85);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Per-run random geometry for image faults, sampled once when the fault
/// first activates (occlusions and droplets stick to the lens).
#[derive(Debug, Clone, Default)]
pub struct ImageFaultLayout {
    rect: (i64, i64, i64, i64),
    drops: Vec<(f64, f64, f64)>,
}

impl ImageFaultLayout {
    /// Samples the layout for a fault model and image size.
    pub fn sample(fault: &ImageFault, width: usize, height: usize, rng: &mut StdRng) -> Self {
        let mut layout = ImageFaultLayout::default();
        match *fault {
            ImageFault::SolidOcclusion { frac } | ImageFault::TransparentOcclusion { frac, .. } => {
                let side = (frac * width.min(height) as f64).round() as i64;
                let max_x = (width as i64 - side).max(0);
                let max_y = (height as i64 - side).max(0);
                let x0 = if max_x > 0 {
                    rng.random_range(0..=max_x)
                } else {
                    0
                };
                let y0 = if max_y > 0 {
                    rng.random_range(0..=max_y)
                } else {
                    0
                };
                layout.rect = (x0, y0, x0 + side, y0 + side);
            }
            ImageFault::WaterDrop { drops, radius_frac } => {
                let r = radius_frac * width as f64;
                layout.drops = (0..drops)
                    .map(|_| {
                        (
                            rng.random_range(0.0..width as f64),
                            rng.random_range(0.0..height as f64),
                            r * rng.random_range(0.6..1.3),
                        )
                    })
                    .collect();
            }
            _ => {}
        }
        layout
    }
}

/// GPS fault: constant bias plus extra noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFault {
    /// Easting bias, meters.
    pub bias_x: f64,
    /// Northing bias, meters.
    pub bias_y: f64,
    /// Extra per-axis noise σ, meters.
    pub sigma: f64,
}

/// Speedometer fault applied to the reported speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedFault {
    /// Multiply the reading.
    Scale(f64),
    /// Freeze the reading at a value.
    StuckAt(f64),
}

/// LIDAR fault models (the paper names LIDAR among the sensor
/// measurements AVFI manipulates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LidarFault {
    /// Each beam independently lost (reports max range) with probability
    /// `p` per frame.
    BeamDropout {
        /// Per-beam dropout probability.
        p: f64,
    },
    /// Additive Gaussian range noise.
    RangeNoise {
        /// Range noise σ, meters.
        sigma: f64,
    },
    /// Ghost returns: random beams report spurious close obstacles.
    Ghost {
        /// Number of ghosted beams per frame.
        count: usize,
        /// Reported ghost range, meters.
        range: f64,
    },
}

impl LidarFault {
    /// Applies the fault to a scan in place.
    pub fn apply(&self, ranges: &mut [f64], max_range: f64, rng: &mut StdRng) {
        match *self {
            LidarFault::BeamDropout { p } => {
                for r in ranges.iter_mut() {
                    if rng.random_range(0.0..1.0) < p {
                        *r = max_range;
                    }
                }
            }
            LidarFault::RangeNoise { sigma } => {
                for r in ranges.iter_mut() {
                    *r = (*r + normal(rng, 0.0, sigma)).clamp(0.0, max_range);
                }
            }
            LidarFault::Ghost { count, range } => {
                if ranges.is_empty() {
                    return;
                }
                for _ in 0..count {
                    let i = rng.random_range(0..ranges.len());
                    ranges[i] = range.clamp(0.0, max_range);
                }
            }
        }
    }
}

/// A complete data-fault plan: optional camera model, optional
/// GPS/speed/LIDAR faults, and the trigger window.
///
/// The camera model is optional so scalar-only plans (GPS bias, stuck
/// speedometer, LIDAR dropout) never touch — and therefore never copy —
/// the camera image on the injection hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputFault {
    /// Camera fault model, if the plan corrupts the image.
    pub model: Option<ImageFault>,
    /// Optional GPS corruption.
    pub gps: Option<GpsFault>,
    /// Optional speedometer corruption.
    pub speed: Option<SpeedFault>,
    /// Optional LIDAR corruption.
    pub lidar: Option<LidarFault>,
    /// When the fault is active.
    pub trigger: Trigger,
}

impl InputFault {
    /// A camera fault active for the entire run.
    pub fn always(model: ImageFault) -> Self {
        InputFault {
            model: Some(model),
            gps: None,
            speed: None,
            lidar: None,
            trigger: Trigger::Always,
        }
    }

    /// A camera fault active from a frame onward.
    pub fn from_frame(model: ImageFault, frame: u64) -> Self {
        InputFault {
            model: Some(model),
            gps: None,
            speed: None,
            lidar: None,
            trigger: Trigger::From { frame },
        }
    }

    /// An always-active plan with no camera model; compose scalar channels
    /// with [`InputFault::with_gps`], [`InputFault::with_speed`], and
    /// [`InputFault::with_lidar`].
    pub fn scalar_only() -> Self {
        InputFault {
            model: None,
            gps: None,
            speed: None,
            lidar: None,
            trigger: Trigger::Always,
        }
    }

    /// Label for tables and plots: the camera model's paper axis label,
    /// or the corrupted scalar channels joined with `+`.
    pub fn label(&self) -> String {
        match &self.model {
            Some(model) => model.label().to_string(),
            None => {
                let mut parts: Vec<&str> = Vec::new();
                if self.gps.is_some() {
                    parts.push("gps");
                }
                if self.speed.is_some() {
                    parts.push("speed");
                }
                if self.lidar.is_some() {
                    parts.push("lidar");
                }
                if parts.is_empty() {
                    "NoInject".to_string()
                } else {
                    parts.join("+")
                }
            }
        }
    }

    /// Adds a GPS fault to the plan.
    pub fn with_gps(mut self, gps: GpsFault) -> Self {
        self.gps = Some(gps);
        self
    }

    /// Adds a speedometer fault to the plan.
    pub fn with_speed(mut self, speed: SpeedFault) -> Self {
        self.speed = Some(speed);
        self
    }

    /// Adds a LIDAR fault to the plan.
    pub fn with_lidar(mut self, lidar: LidarFault) -> Self {
        self.lidar = Some(lidar);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::rng::stream_rng;

    fn test_image() -> Image {
        let mut img = Image::filled(64, 48, [0.5, 0.5, 0.5]);
        // A bright stripe so structure is measurable.
        img.fill_rect(30, 0, 34, 48, [1.0, 1.0, 1.0]);
        img
    }

    #[test]
    fn gaussian_perturbs_but_preserves_mean() {
        let mut img = test_image();
        let before = img.mean_luma();
        let fault = ImageFault::gaussian(0.1);
        let layout = ImageFaultLayout::default();
        fault.apply(&mut img, &layout, &mut stream_rng(1, 0));
        let after = img.mean_luma();
        assert!(
            (after - before).abs() < 0.03,
            "mean moved {before} -> {after}"
        );
        assert_ne!(img, test_image());
    }

    #[test]
    fn salt_pepper_rate() {
        let mut img = Image::filled(100, 100, [0.5, 0.5, 0.5]);
        let fault = ImageFault::salt_pepper(0.1);
        fault.apply(
            &mut img,
            &ImageFaultLayout::default(),
            &mut stream_rng(2, 0),
        );
        let corrupted = (0..100 * 100)
            .filter(|i| {
                let p = img.pixel(i % 100, i / 100);
                p[0] == 0.0 || p[0] == 1.0
            })
            .count();
        let rate = corrupted as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn solid_occlusion_blacks_out_patch() {
        let mut img = test_image();
        let fault = ImageFault::solid_occlusion(0.5);
        let mut rng = stream_rng(3, 0);
        let layout = ImageFaultLayout::sample(&fault, img.width(), img.height(), &mut rng);
        fault.apply(&mut img, &layout, &mut rng);
        let dark = img.data().chunks_exact(3).filter(|p| p[0] < 0.05).count();
        // Patch is 24x24 of 64x48 = 576 of 3072 pixels.
        assert!(dark >= 570, "dark pixels = {dark}");
    }

    #[test]
    fn transparent_occlusion_partial() {
        let mut img = Image::filled(64, 48, [1.0, 1.0, 1.0]);
        let fault = ImageFault::transparent_occlusion(0.5, 0.5);
        let mut rng = stream_rng(4, 0);
        let layout = ImageFaultLayout::sample(&fault, 64, 48, &mut rng);
        fault.apply(&mut img, &layout, &mut rng);
        // Blended pixels are between film gray and white.
        let blended = img
            .data()
            .chunks_exact(3)
            .filter(|p| p[0] > 0.6 && p[0] < 0.9)
            .count();
        assert!(blended > 400, "blended={blended}");
    }

    #[test]
    fn water_drops_change_local_regions_only() {
        let mut img = test_image();
        let fault = ImageFault::water_drop(4, 0.08);
        let mut rng = stream_rng(5, 0);
        let layout = ImageFaultLayout::sample(&fault, 64, 48, &mut rng);
        fault.apply(&mut img, &layout, &mut rng);
        let clean = test_image();
        let changed = img
            .data()
            .iter()
            .zip(clean.data())
            .filter(|(a, b)| (*a - *b).abs() > 1e-6)
            .count()
            / 3;
        let total = 64 * 48;
        assert!(changed > 30, "changed={changed}");
        assert!(changed < total / 2, "changed={changed} (should be local)");
    }

    #[test]
    fn layout_is_stable_across_frames() {
        let fault = ImageFault::solid_occlusion(0.3);
        let mut rng = stream_rng(6, 0);
        let layout = ImageFaultLayout::sample(&fault, 64, 48, &mut rng);
        let mut a = test_image();
        let mut b = test_image();
        fault.apply(&mut a, &layout, &mut rng);
        fault.apply(&mut b, &layout, &mut rng);
        assert_eq!(a, b, "occlusion must not move between frames");
    }

    #[test]
    fn lidar_dropout_rate() {
        let mut ranges = vec![10.0; 1000];
        LidarFault::BeamDropout { p: 0.3 }.apply(&mut ranges, 50.0, &mut stream_rng(7, 0));
        let dropped = ranges.iter().filter(|r| **r == 50.0).count();
        assert!(
            (dropped as f64 / 1000.0 - 0.3).abs() < 0.05,
            "dropped={dropped}"
        );
    }

    #[test]
    fn lidar_noise_stays_in_range() {
        let mut ranges = vec![1.0, 25.0, 49.0];
        LidarFault::RangeNoise { sigma: 10.0 }.apply(&mut ranges, 50.0, &mut stream_rng(8, 0));
        for r in &ranges {
            assert!((0.0..=50.0).contains(r));
        }
    }

    #[test]
    fn lidar_ghosts_insert_close_returns() {
        let mut ranges = vec![50.0; 36];
        LidarFault::Ghost {
            count: 5,
            range: 3.0,
        }
        .apply(&mut ranges, 50.0, &mut stream_rng(9, 0));
        let ghosts = ranges.iter().filter(|r| **r == 3.0).count();
        assert!((1..=5).contains(&ghosts), "ghosts={ghosts}");
    }

    #[test]
    fn builder_style_composition() {
        let f = InputFault::always(ImageFault::gaussian(0.1))
            .with_gps(GpsFault {
                bias_x: 5.0,
                bias_y: 0.0,
                sigma: 1.0,
            })
            .with_speed(SpeedFault::StuckAt(0.0))
            .with_lidar(LidarFault::BeamDropout { p: 0.1 });
        assert!(f.gps.is_some());
        assert!(f.speed.is_some());
        assert!(f.lidar.is_some());
    }

    #[test]
    fn scalar_only_labels_name_the_channels() {
        let f = InputFault::scalar_only()
            .with_gps(GpsFault {
                bias_x: 1.0,
                bias_y: 0.0,
                sigma: 0.5,
            })
            .with_speed(SpeedFault::StuckAt(0.0));
        assert!(f.model.is_none());
        assert_eq!(f.label(), "gps+speed");
        assert_eq!(InputFault::scalar_only().label(), "NoInject");
        assert_eq!(
            InputFault::always(ImageFault::gaussian(0.1)).label(),
            "Gaussian"
        );
    }

    #[test]
    fn paper_suite_has_five_unique_labels() {
        let suite = ImageFault::paper_suite();
        let labels: std::collections::HashSet<_> = suite.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
