//! Machine-learning faults: corruption of the IL-CNN itself.
//!
//! "AVFI injects faults into the neural network by adding noise into the
//! parameters of the machine learning model (e.g., weights of the neural
//! network), which is modeled on real-world hardware failures."
//!
//! Fault localization — "choosing specific neurons and layers in the
//! IL-CNN" — is delegated to [`crate::localizer`]; this module defines the
//! mutation models applied at the chosen sites.

use crate::fault::hardware::flip_bit as flip_bit_f64;
use crate::localizer::ParamSelector;
use avfi_agent::IlNetwork;
use avfi_sim::rng::normal;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// An ML fault plan. ML faults are applied to the network once, at agent
/// construction (modeling a corrupted model file or a latched hardware
/// fault in the accelerator's weight memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MlFault {
    /// Additive Gaussian noise on a fraction of the selected parameters.
    WeightNoise {
        /// Noise standard deviation (weights are O(0.1)).
        sigma: f64,
        /// Fraction of selected parameters perturbed, `0..=1`.
        fraction: f64,
        /// Which parameters are eligible.
        selector: ParamSelector,
    },
    /// Random bit flips in selected parameters (f32 bit space).
    WeightBitFlip {
        /// Number of flipped bits.
        flips: usize,
        /// Which parameters are eligible.
        selector: ParamSelector,
    },
    /// A neuron stuck at a value after a trunk layer.
    NeuronStuckAt {
        /// Trunk layer index.
        layer: usize,
        /// Flat unit index within the layer output.
        unit: usize,
        /// Stuck value.
        value: f32,
    },
}

impl MlFault {
    /// Label for tables.
    pub fn label(&self) -> String {
        match self {
            MlFault::WeightNoise { sigma, .. } => format!("weight-noise σ={sigma}"),
            MlFault::WeightBitFlip { flips, .. } => format!("weight-bitflip x{flips}"),
            MlFault::NeuronStuckAt { layer, unit, .. } => {
                format!("neuron-stuck L{layer}#{unit}")
            }
        }
    }

    /// Applies the fault to a network. Deterministic given `rng`.
    pub fn apply(&self, net: &mut IlNetwork, rng: &mut StdRng) {
        match self {
            MlFault::WeightNoise {
                sigma,
                fraction,
                selector,
            } => {
                let mut params = net.params();
                for p in params.iter_mut().filter(|p| selector.matches(&p.name)) {
                    for v in p.values.iter_mut() {
                        if rng.random_range(0.0..1.0) < *fraction {
                            *v += normal(rng, 0.0, *sigma) as f32;
                        }
                    }
                }
            }
            MlFault::WeightBitFlip { flips, selector } => {
                // Collect eligible (param, elem) sites, then flip `flips`
                // random bits across them.
                let mut params = net.params();
                let eligible: Vec<usize> = params
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| selector.matches(&p.name))
                    .map(|(i, _)| i)
                    .collect();
                if eligible.is_empty() {
                    return;
                }
                for _ in 0..*flips {
                    let pi = eligible[rng.random_range(0..eligible.len())];
                    let len = params[pi].values.len();
                    let ei = rng.random_range(0..len);
                    let bit = rng.random_range(0..32u8);
                    let v = params[pi].values[ei];
                    // Work in f32 bit space (the deployed model runs f32).
                    let flipped = f32::from_bits(v.to_bits() ^ (1u32 << bit));
                    params[pi].values[ei] = flipped;
                }
            }
            MlFault::NeuronStuckAt { layer, unit, value } => {
                net.add_trunk_override(*layer, *unit, *value);
            }
        }
    }
}

/// Convenience: flips one bit of an `f64` (re-exported from the hardware
/// model for cross-class sweeps).
pub fn flip_f64_bit(value: f64, bit: u8) -> f64 {
    flip_bit_f64(value, bit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::rng::stream_rng;

    fn param_snapshot(net: &mut IlNetwork) -> Vec<Vec<f32>> {
        net.params().iter().map(|p| p.values.to_vec()).collect()
    }

    #[test]
    fn weight_noise_perturbs_selected_layers_only() {
        let mut net = IlNetwork::new(1);
        let before = param_snapshot(&mut net);
        let fault = MlFault::WeightNoise {
            sigma: 0.5,
            fraction: 1.0,
            selector: ParamSelector::Prefix("trunk.".to_string()),
        };
        fault.apply(&mut net, &mut stream_rng(1, 0));
        let after = param_snapshot(&mut net);
        let names: Vec<String> = net.params().iter().map(|p| p.name.clone()).collect();
        for ((b, a), name) in before.iter().zip(&after).zip(&names) {
            if name.starts_with("trunk.") {
                assert_ne!(b, a, "{name} unchanged");
            } else {
                assert_eq!(b, a, "{name} should be untouched");
            }
        }
    }

    #[test]
    fn weight_noise_fraction_zero_is_noop() {
        let mut net = IlNetwork::new(2);
        let before = param_snapshot(&mut net);
        let fault = MlFault::WeightNoise {
            sigma: 1.0,
            fraction: 0.0,
            selector: ParamSelector::All,
        };
        fault.apply(&mut net, &mut stream_rng(2, 0));
        assert_eq!(before, param_snapshot(&mut net));
    }

    #[test]
    fn bit_flips_change_exactly_some_weights() {
        let mut net = IlNetwork::new(3);
        let before = param_snapshot(&mut net);
        let fault = MlFault::WeightBitFlip {
            flips: 5,
            selector: ParamSelector::All,
        };
        fault.apply(&mut net, &mut stream_rng(3, 0));
        let after = param_snapshot(&mut net);
        let changed: usize = before
            .iter()
            .zip(&after)
            .map(|(b, a)| {
                b.iter()
                    .zip(a)
                    .filter(|(x, y)| x.to_bits() != y.to_bits())
                    .count()
            })
            .sum();
        assert!((1..=5).contains(&changed), "changed={changed}");
    }

    #[test]
    fn neuron_stuck_changes_prediction() {
        use avfi_nn::Tensor;
        use avfi_sim::map::route::Command;
        let mut clean = IlNetwork::new(4);
        let mut faulty = IlNetwork::from_weights(&clean.to_weights()).unwrap();
        MlFault::NeuronStuckAt {
            layer: 6,
            unit: 3,
            value: 30.0,
        }
        .apply(&mut faulty, &mut stream_rng(4, 0));
        let img = Tensor::zeros(vec![1, 24, 32]);
        let a = clean.forward(&img, 0.5, Command::Follow, false);
        let b = faulty.forward(&img, 0.5, Command::Follow, false);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn deterministic_given_seed() {
        let apply = |seed| {
            let mut net = IlNetwork::new(5);
            MlFault::WeightNoise {
                sigma: 0.1,
                fraction: 0.5,
                selector: ParamSelector::All,
            }
            .apply(&mut net, &mut stream_rng(seed, 0));
            param_snapshot(&mut net)
        };
        assert_eq!(apply(7), apply(7));
        assert_ne!(apply(7), apply(8));
    }
}
