//! Injection schedules: *when* a configured fault is active.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// When an injector fires, in frames (15 frames = 1 s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Active on every frame of the run.
    Always,
    /// Active from a frame onward (models a permanent fault that appears
    /// mid-mission — the TTV experiments use this).
    From {
        /// First active frame.
        frame: u64,
    },
    /// Active inside a frame window (transient fault).
    Window {
        /// First active frame.
        start: u64,
        /// First inactive frame after the window.
        end: u64,
    },
    /// Independently active each frame with probability `p` (intermittent
    /// fault).
    Bernoulli {
        /// Per-frame activation probability.
        p: f64,
    },
}

impl Trigger {
    /// Whether the fault is active at `frame`. Bernoulli triggers draw
    /// from `rng` (exactly one draw per query, keeping runs reproducible).
    pub fn is_active(&self, frame: u64, rng: &mut StdRng) -> bool {
        match *self {
            Trigger::Always => true,
            Trigger::From { frame: f0 } => frame >= f0,
            Trigger::Window { start, end } => frame >= start && frame < end,
            Trigger::Bernoulli { p } => rng.random_range(0.0..1.0) < p,
        }
    }

    /// The earliest frame this trigger can fire (None for Bernoulli —
    /// unknown until run time).
    pub fn earliest_frame(&self) -> Option<u64> {
        match *self {
            Trigger::Always => Some(0),
            Trigger::From { frame } => Some(frame),
            Trigger::Window { start, .. } => Some(start),
            Trigger::Bernoulli { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::rng::stream_rng;

    #[test]
    fn always_and_from() {
        let mut rng = stream_rng(1, 0);
        assert!(Trigger::Always.is_active(0, &mut rng));
        let t = Trigger::From { frame: 10 };
        assert!(!t.is_active(9, &mut rng));
        assert!(t.is_active(10, &mut rng));
        assert!(t.is_active(999, &mut rng));
    }

    #[test]
    fn window_half_open() {
        let mut rng = stream_rng(2, 0);
        let t = Trigger::Window { start: 5, end: 8 };
        assert!(!t.is_active(4, &mut rng));
        assert!(t.is_active(5, &mut rng));
        assert!(t.is_active(7, &mut rng));
        assert!(!t.is_active(8, &mut rng));
    }

    #[test]
    fn bernoulli_rate_approximate() {
        let mut rng = stream_rng(3, 0);
        let t = Trigger::Bernoulli { p: 0.25 };
        let hits = (0..4000).filter(|f| t.is_active(*f, &mut rng)).count();
        assert!((hits as f64 / 4000.0 - 0.25).abs() < 0.03, "hits={hits}");
    }

    #[test]
    fn earliest_frames() {
        assert_eq!(Trigger::Always.earliest_frame(), Some(0));
        assert_eq!(Trigger::From { frame: 7 }.earliest_frame(), Some(7));
        assert_eq!(
            Trigger::Window { start: 3, end: 9 }.earliest_frame(),
            Some(3)
        );
        assert_eq!(Trigger::Bernoulli { p: 0.5 }.earliest_frame(), None);
    }
}
