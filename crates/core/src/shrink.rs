//! Trace-driven failure minimization: a delta-debugging shrinker that
//! turns any failed run's flight-recorder trace into a minimal,
//! replay-verified repro.
//!
//! A blackbox trace pins down *when* a run failed; this module answers
//! *how little it takes*. Starting from the scenario + fault the trace
//! header records, the shrinker walks a **reduction lattice** — fewer
//! NPC vehicles and pedestrians, lower crossing rate, shorter route and
//! time budget, simpler weather, later fault onset, narrower trigger
//! window, smaller fault magnitude — re-executing each candidate through
//! the same `run_single` path the campaign used and keeping a reduction
//! only if the run still fails in the **same
//! [`FailureClass`]** (outcome, first violation kind, causal channel;
//! see [`crate::triage`]). Every accepted step is **replay-verified**: a
//! second re-execution must reproduce the candidate's trace bit for bit
//! ([`crate::replay`] semantics), so the emitted minimum is a
//! standalone deterministic repro, not a flaky one-off.
//!
//! ## Deterministic parallel shrink
//!
//! Each iteration proposes every lattice candidate for the current
//! state, evaluates **all of them** through the work-stealing
//! [`Engine`] (speculative evaluation; results land in preassigned
//! slots), then folds the verdicts **in flat-lattice proposal order**:
//! the first class-preserving, replay-verified candidate wins the
//! iteration. Because the fold order is fixed and every evaluation is
//! seeded from the frozen `(template seed, scenario index, run index)`
//! coordinates of the original failure, the shrink trajectory — and the
//! final minimum — is byte-identical for any `--workers N`; worker
//! count buys wall-clock only.
//!
//! Termination: integer axes strictly decrease, `f64` axes halve
//! against absolute floors, trigger onsets binary-search monotonically
//! toward the violation anchor, and a global
//! [`ShrinkConfig::max_iterations`] cap backstops everything.

use crate::campaign::TraceSpec;
use crate::engine::{Engine, EvalJob};
use crate::fault::hardware::BitFaultModel;
use crate::fault::input::{ImageFault, InputFault, LidarFault, SpeedFault};
use crate::fault::ml::MlFault;
use crate::fault::timing::TimingFault;
use crate::fault::FaultSpec;
use crate::replay::{agent_from_header, replay_trace, ReplayError, ReplayVerdict};
use crate::triage::{failure_class, FailureClass};
use crate::trigger::Trigger;
use avfi_sim::scenario::Scenario;
use avfi_sim::weather::Weather;
use avfi_sim::FRAME_DT;
use avfi_trace::{RunTrace, TraceEvent, TraceLevel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Shrinker tuning knobs.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Hard cap on lattice iterations (each iteration accepts at most
    /// one reduction).
    pub max_iterations: usize,
    /// Black-box window for candidate evaluation when the source trace
    /// does not carry one (summary traces), seconds.
    pub blackbox_seconds: f64,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig {
            max_iterations: 40,
            blackbox_seconds: 30.0,
        }
    }
}

/// A reduction-lattice axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// The unreduced original (used only for the baseline re-execution).
    Baseline,
    /// Fewer NPC traffic vehicles.
    NpcVehicles,
    /// Fewer pedestrians.
    Pedestrians,
    /// Lower pedestrian road-crossing rate.
    CrossRate,
    /// Smaller mission time budget.
    TimeBudget,
    /// Shorter minimum route length.
    RouteLength,
    /// Simpler weather preset.
    Weather,
    /// Later fault onset (trigger start moves toward the violation).
    FaultOnset,
    /// Narrower trigger window (open-ended triggers close just past the
    /// violation).
    TriggerWindow,
    /// Smaller fault magnitude (σ, probabilities, patch sizes, bit
    /// counts, delays — including dropping the fault or a channel
    /// entirely).
    FaultMagnitude,
}

impl Axis {
    /// Stable kebab-case label (used in shrink logs and repro JSON).
    pub fn label(self) -> &'static str {
        match self {
            Axis::Baseline => "baseline",
            Axis::NpcVehicles => "npc-vehicles",
            Axis::Pedestrians => "pedestrians",
            Axis::CrossRate => "cross-rate",
            Axis::TimeBudget => "time-budget",
            Axis::RouteLength => "route-length",
            Axis::Weather => "weather",
            Axis::FaultOnset => "fault-onset",
            Axis::TriggerWindow => "trigger-window",
            Axis::FaultMagnitude => "fault-magnitude",
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of the reduction lattice: a candidate (scenario, fault)
/// pair differing from the current state on exactly one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The axis the candidate reduces.
    pub axis: Axis,
    /// Human-readable `old → new` description for the shrink log.
    pub description: String,
    /// Candidate scenario template (seed never changes).
    pub scenario: Scenario,
    /// Candidate fault plan.
    pub fault: FaultSpec,
}

/// Frame anchors of the current failure, used to bound onset/window
/// proposals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Frame of the first violation, when one occurred.
    pub violation_frame: Option<u64>,
    /// Last recorded frame of the run.
    pub final_frame: u64,
}

/// What one candidate evaluation established.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEval {
    /// The candidate run's failure class (`None`: did not fail).
    pub class: Option<FailureClass>,
    /// Updated anchors from the candidate run, when it failed.
    pub anchor: Option<Anchor>,
}

/// The evaluation back end the generic shrink loop drives.
///
/// The real implementation is [`EngineOracle`] (re-executes candidates
/// through the engine); tests substitute synthetic oracles to check
/// lattice invariants without running the simulator.
pub trait ShrinkOracle {
    /// Evaluates a batch of candidates, one eval per candidate, in
    /// order. Implementations must be deterministic in the candidates.
    fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<CandidateEval>;

    /// Replay-verifies candidate `index` of the batch most recently
    /// passed to [`ShrinkOracle::evaluate`]: `true` when a re-execution
    /// reproduces it bit-identically.
    fn verify(&mut self, index: usize, candidate: &Candidate) -> bool;
}

/// Verdict on one proposed candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShrinkVerdict {
    /// Same failure class and replay-verified: the reduction is kept.
    Accepted,
    /// The reduced run no longer fails.
    RejectedNoFailure,
    /// The reduced run fails in a different class.
    RejectedClassChanged,
    /// Same class, but a re-execution did not reproduce bit-identically.
    RejectedReplayDiverged,
    /// Evaluated speculatively but an earlier candidate (in proposal
    /// order) was already accepted this iteration.
    NotSelected,
}

/// One shrink-log entry: what was tried and what happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkStep {
    /// Lattice iteration (1-based).
    pub iteration: usize,
    /// Axis label of the candidate.
    pub axis: String,
    /// `old → new` candidate description.
    pub candidate: String,
    /// What happened to the candidate.
    pub verdict: ShrinkVerdict,
    /// Cumulative simulator runs spent through this iteration
    /// (evaluations + replay verifications).
    pub runs_spent: usize,
}

/// A minimal, replay-verified repro: everything needed to re-execute
/// the minimized failure deterministically and what to expect from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinimalRepro {
    /// Trace file the shrink started from.
    pub source_trace: String,
    /// Study name from the source header.
    pub study: String,
    /// Agent name (`"expert"` / `"il-cnn"`).
    pub agent: String,
    /// Label of the minimized fault.
    pub fault_label: String,
    /// Scenario index held fixed through the shrink.
    pub scenario_index: usize,
    /// Run index held fixed through the shrink.
    pub run_index: usize,
    /// Derived per-run seed (unchanged: the template seed and indices
    /// are frozen, so every candidate reuses the original derivation).
    pub seed: u64,
    /// The minimized scenario template.
    pub scenario: Scenario,
    /// The minimized fault plan.
    pub fault: FaultSpec,
    /// The failure class the repro must land in.
    pub expected: FailureClass,
    /// Accepted reductions, in order (`axis: old → new`).
    pub reductions: Vec<String>,
    /// Lattice iterations executed.
    pub iterations: usize,
    /// Total simulator runs spent (baseline + evaluations +
    /// verifications).
    pub runs_spent: usize,
}

/// Result of shrinking one trace: the repro plus the full shrink log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkOutcome {
    /// The minimal repro.
    pub repro: MinimalRepro,
    /// Every candidate tried, with verdicts, in order.
    pub log: Vec<ShrinkStep>,
}

/// Why a shrink could not be attempted.
#[derive(Debug, Clone, PartialEq)]
pub enum ShrinkError {
    /// The trace is not re-executable (bad fault spec, seed mismatch,
    /// unknown agent, missing/mismatched weights).
    Replay(ReplayError),
    /// The trace records a successful, violation-free run — nothing to
    /// minimize.
    NotAFailure,
    /// Re-executing the unreduced original did not land in the recorded
    /// failure class; shrinking would minimize a different failure.
    BaselineMismatch {
        /// Class recorded in the trace.
        expected: Box<FailureClass>,
        /// Class the re-execution produced (`None`: did not fail).
        got: Option<Box<FailureClass>>,
    },
}

impl fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShrinkError::Replay(e) => write!(f, "trace not re-executable: {e}"),
            ShrinkError::NotAFailure => f.write_str("trace records a successful run"),
            ShrinkError::BaselineMismatch { expected, got } => write!(
                f,
                "baseline re-execution landed in class {} instead of {expected}",
                got.as_ref()
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "<no failure>".to_string())
            ),
        }
    }
}

impl std::error::Error for ShrinkError {}

impl From<ReplayError> for ShrinkError {
    fn from(e: ReplayError) -> Self {
        ShrinkError::Replay(e)
    }
}

/// Result of the generic shrink loop (before repro assembly).
#[derive(Debug, Clone)]
pub struct ShrinkLoopResult {
    /// The minimized scenario.
    pub scenario: Scenario,
    /// The minimized fault.
    pub fault: FaultSpec,
    /// Full candidate log.
    pub log: Vec<ShrinkStep>,
    /// Iterations executed.
    pub iterations: usize,
    /// Simulator runs spent by the loop.
    pub runs_spent: usize,
}

// ---------------------------------------------------------------------
// Reduction lattice
// ---------------------------------------------------------------------

/// Strict-decrease halving toward an absolute floor. Returns `None`
/// once `value` cannot decrease meaningfully (termination guarantee for
/// `f64` axes).
fn halve(value: f64, floor: f64) -> Option<f64> {
    let next = (value / 2.0).max(floor);
    (next < value - 1e-9).then_some(next)
}

/// Reduction candidates for an integer count: try zero first (biggest
/// cut), then half, then one less — classic ddmin granularity.
fn count_steps(n: usize) -> Vec<usize> {
    let mut steps = Vec::new();
    for k in [0, n / 2, n.saturating_sub(1)] {
        if k < n && !steps.contains(&k) {
            steps.push(k);
        }
    }
    steps
}

/// Complexity rank of a weather preset (lower = simpler to simulate
/// and reason about).
fn weather_rank(w: Weather) -> u8 {
    match w {
        Weather::ClearNoon => 0,
        Weather::Overcast => 1,
        Weather::Dusk => 2,
        Weather::Rain => 3,
        Weather::Fog => 4,
    }
}

fn weather_by_rank(rank: u8) -> Weather {
    match rank {
        0 => Weather::ClearNoon,
        1 => Weather::Overcast,
        2 => Weather::Dusk,
        3 => Weather::Rain,
        _ => Weather::Fog,
    }
}

fn trigger_desc(t: &Trigger) -> String {
    match *t {
        Trigger::Always => "always".to_string(),
        Trigger::From { frame } => format!("from {frame}"),
        Trigger::Window { start, end } => format!("window {start}..{end}"),
        Trigger::Bernoulli { p } => format!("bernoulli p={p}"),
    }
}

/// The trigger of a fault plan, when the class has one (timing and ML
/// faults are structurally always-on).
fn fault_trigger(fault: &FaultSpec) -> Option<&Trigger> {
    match fault {
        FaultSpec::Input(f) => Some(&f.trigger),
        FaultSpec::Hardware(f) => Some(&f.trigger),
        _ => None,
    }
}

fn with_trigger(fault: &FaultSpec, trigger: Trigger) -> FaultSpec {
    let mut fault = fault.clone();
    match &mut fault {
        FaultSpec::Input(f) => f.trigger = trigger,
        FaultSpec::Hardware(f) => f.trigger = trigger,
        _ => {}
    }
    fault
}

/// Magnitude-reduction candidates for a fault plan, as
/// `(description, reduced fault)` pairs in fixed order.
fn magnitude_candidates(fault: &FaultSpec) -> Vec<(String, FaultSpec)> {
    let mut out: Vec<(String, FaultSpec)> = Vec::new();
    // The biggest possible cut first: no fault at all. Survives the
    // class check only when the failure never needed the injection
    // (e.g. a timeout the traffic causes on its own).
    if *fault != FaultSpec::None {
        out.push(("fault dropped entirely".to_string(), FaultSpec::None));
    }
    match fault {
        FaultSpec::None => {}
        FaultSpec::Input(f) => input_magnitude_candidates(f, &mut out),
        FaultSpec::Hardware(h) => {
            if let BitFaultModel::MultiBitFlip { bits } = &h.model {
                if bits.len() >= 2 {
                    let keep = bits.len().div_ceil(2);
                    let mut reduced = h.clone();
                    reduced.model = BitFaultModel::MultiBitFlip {
                        bits: bits[..keep].to_vec(),
                    };
                    out.push((
                        format!("bit flips {} → {keep}", bits.len()),
                        FaultSpec::Hardware(reduced),
                    ));
                }
            }
        }
        FaultSpec::Timing(t) => match *t {
            TimingFault::OutputDelay { frames } => {
                if frames >= 2 {
                    out.push((
                        format!("delay {frames}f → {}f", frames / 2),
                        FaultSpec::Timing(TimingFault::OutputDelay { frames: frames / 2 }),
                    ));
                }
            }
            TimingFault::DropFrames { p } => {
                if let Some(q) = halve(p, 1e-3) {
                    out.push((
                        format!("drop p {p} → {q}"),
                        FaultSpec::Timing(TimingFault::DropFrames { p: q }),
                    ));
                }
            }
            TimingFault::Reorder { window } => {
                if window >= 4 {
                    out.push((
                        format!("reorder window {window} → {}", window / 2),
                        FaultSpec::Timing(TimingFault::Reorder { window: window / 2 }),
                    ));
                }
            }
        },
        FaultSpec::Ml(m) => match m {
            MlFault::WeightNoise {
                sigma,
                fraction,
                selector,
            } => {
                if let Some(s) = halve(*sigma, 1e-4) {
                    out.push((
                        format!("weight-noise σ {sigma} → {s}"),
                        FaultSpec::Ml(MlFault::WeightNoise {
                            sigma: s,
                            fraction: *fraction,
                            selector: selector.clone(),
                        }),
                    ));
                }
                if let Some(fr) = halve(*fraction, 0.01) {
                    out.push((
                        format!("weight-noise fraction {fraction} → {fr}"),
                        FaultSpec::Ml(MlFault::WeightNoise {
                            sigma: *sigma,
                            fraction: fr,
                            selector: selector.clone(),
                        }),
                    ));
                }
            }
            MlFault::WeightBitFlip { flips, selector } => {
                if *flips >= 2 {
                    out.push((
                        format!("weight bit flips {flips} → {}", flips / 2),
                        FaultSpec::Ml(MlFault::WeightBitFlip {
                            flips: flips / 2,
                            selector: selector.clone(),
                        }),
                    ));
                }
            }
            MlFault::NeuronStuckAt { .. } => {}
        },
    }
    out
}

fn input_magnitude_candidates(f: &InputFault, out: &mut Vec<(String, FaultSpec)>) {
    let active_channels = [
        f.model.is_some(),
        f.gps.is_some(),
        f.speed.is_some(),
        f.lidar.is_some(),
    ]
    .iter()
    .filter(|b| **b)
    .count();
    // Channel drops: only when another channel keeps the fault alive.
    if active_channels >= 2 {
        if f.model.is_some() {
            let mut g = f.clone();
            g.model = None;
            out.push(("camera channel dropped".to_string(), FaultSpec::Input(g)));
        }
        if f.gps.is_some() {
            let mut g = f.clone();
            g.gps = None;
            out.push(("gps channel dropped".to_string(), FaultSpec::Input(g)));
        }
        if f.speed.is_some() {
            let mut g = f.clone();
            g.speed = None;
            out.push(("speed channel dropped".to_string(), FaultSpec::Input(g)));
        }
        if f.lidar.is_some() {
            let mut g = f.clone();
            g.lidar = None;
            out.push(("lidar channel dropped".to_string(), FaultSpec::Input(g)));
        }
    }
    if let Some(model) = f.model {
        let mut push_model = |desc: String, m: ImageFault| {
            let mut g = f.clone();
            g.model = Some(m);
            out.push((desc, FaultSpec::Input(g)));
        };
        match model {
            ImageFault::Gaussian { sigma } => {
                if let Some(s) = halve(sigma, 1e-3) {
                    push_model(
                        format!("image σ {sigma} → {s}"),
                        ImageFault::Gaussian { sigma: s },
                    );
                }
            }
            ImageFault::SaltPepper { p } => {
                if let Some(q) = halve(p, 1e-4) {
                    push_model(
                        format!("image s&p p {p} → {q}"),
                        ImageFault::SaltPepper { p: q },
                    );
                }
            }
            ImageFault::SolidOcclusion { frac } => {
                if let Some(fr) = halve(frac, 0.01) {
                    push_model(
                        format!("occlusion frac {frac} → {fr}"),
                        ImageFault::SolidOcclusion { frac: fr },
                    );
                }
            }
            ImageFault::TransparentOcclusion { frac, alpha } => {
                if let Some(fr) = halve(frac, 0.01) {
                    push_model(
                        format!("occlusion frac {frac} → {fr}"),
                        ImageFault::TransparentOcclusion { frac: fr, alpha },
                    );
                }
                if let Some(a) = halve(alpha, 0.01) {
                    push_model(
                        format!("occlusion alpha {alpha} → {a}"),
                        ImageFault::TransparentOcclusion { frac, alpha: a },
                    );
                }
            }
            ImageFault::WaterDrop { drops, radius_frac } => {
                if drops >= 2 {
                    push_model(
                        format!("drops {drops} → {}", drops / 2),
                        ImageFault::WaterDrop {
                            drops: drops / 2,
                            radius_frac,
                        },
                    );
                }
                if let Some(r) = halve(radius_frac, 0.005) {
                    push_model(
                        format!("drop radius {radius_frac} → {r}"),
                        ImageFault::WaterDrop {
                            drops,
                            radius_frac: r,
                        },
                    );
                }
            }
        }
    }
    if let Some(gps) = f.gps {
        let scale = gps.bias_x.abs().max(gps.bias_y.abs()).max(gps.sigma);
        if scale > 1e-3 {
            let mut g = f.clone();
            g.gps = Some(avfi_core_gps_halved(gps));
            out.push((
                format!("gps magnitude halved (scale {scale})"),
                FaultSpec::Input(g),
            ));
        }
    }
    if let Some(SpeedFault::Scale(s)) = f.speed {
        let toward_one = (s + 1.0) / 2.0;
        if (toward_one - 1.0).abs() > 1e-3 && (toward_one - s).abs() > 1e-9 {
            let mut g = f.clone();
            g.speed = Some(SpeedFault::Scale(toward_one));
            out.push((
                format!("speed scale {s} → {toward_one}"),
                FaultSpec::Input(g),
            ));
        }
    }
    if let Some(lidar) = f.lidar {
        let mut push_lidar = |desc: String, l: LidarFault| {
            let mut g = f.clone();
            g.lidar = Some(l);
            out.push((desc, FaultSpec::Input(g)));
        };
        match lidar {
            LidarFault::BeamDropout { p } => {
                if let Some(q) = halve(p, 1e-4) {
                    push_lidar(
                        format!("lidar dropout p {p} → {q}"),
                        LidarFault::BeamDropout { p: q },
                    );
                }
            }
            LidarFault::RangeNoise { sigma } => {
                if let Some(s) = halve(sigma, 1e-3) {
                    push_lidar(
                        format!("lidar σ {sigma} → {s}"),
                        LidarFault::RangeNoise { sigma: s },
                    );
                }
            }
            LidarFault::Ghost { count, range } => {
                if count >= 2 {
                    push_lidar(
                        format!("lidar ghosts {count} → {}", count / 2),
                        LidarFault::Ghost {
                            count: count / 2,
                            range,
                        },
                    );
                }
            }
        }
    }
}

fn avfi_core_gps_halved(gps: crate::fault::input::GpsFault) -> crate::fault::input::GpsFault {
    crate::fault::input::GpsFault {
        bias_x: gps.bias_x / 2.0,
        bias_y: gps.bias_y / 2.0,
        sigma: gps.sigma / 2.0,
    }
}

/// Proposes every lattice candidate for the current state, in the fixed
/// flat-lattice order acceptance folds over. Pure in its inputs:
/// identical states propose identical candidate lists.
pub fn propose(scenario: &Scenario, fault: &FaultSpec, anchor: &Anchor) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let mut push = |axis: Axis, description: String, scenario: Scenario, fault: FaultSpec| {
        out.push(Candidate {
            axis,
            description,
            scenario,
            fault,
        });
    };

    for k in count_steps(scenario.npc_vehicles) {
        push(
            Axis::NpcVehicles,
            format!("npc_vehicles {} → {k}", scenario.npc_vehicles),
            scenario.to_builder().npc_vehicles(k).build(),
            fault.clone(),
        );
    }
    for k in count_steps(scenario.pedestrians) {
        push(
            Axis::Pedestrians,
            format!("pedestrians {} → {k}", scenario.pedestrians),
            scenario.to_builder().pedestrians(k).build(),
            fault.clone(),
        );
    }
    let rate = scenario.pedestrian_cross_rate;
    if scenario.pedestrians > 0 && rate > 0.0 {
        push(
            Axis::CrossRate,
            format!("pedestrian_cross_rate {rate} → 0"),
            scenario.to_builder().pedestrian_cross_rate(0.0).build(),
            fault.clone(),
        );
        if let Some(r) = halve(rate, 1e-4) {
            push(
                Axis::CrossRate,
                format!("pedestrian_cross_rate {rate} → {r}"),
                scenario.to_builder().pedestrian_cross_rate(r).build(),
                fault.clone(),
            );
        }
    }
    // Budget reductions only make sense when the failure is anchored to
    // a violation: a pure-timeout class is *trivially* preserved by any
    // budget cut (every mission becomes impossible in 5 s), which would
    // shrink toward a vacuous repro instead of the real failure.
    let budget = scenario.time_budget;
    if let Some(v) = anchor.violation_frame {
        // Just past the violation: the tightest budget that can still
        // contain the failure.
        let tight = ((v as f64) * FRAME_DT + 1.0).max(5.0);
        if tight < budget - 1e-9 {
            push(
                Axis::TimeBudget,
                format!("time_budget {budget} → {tight}"),
                scenario.to_builder().time_budget(tight).build(),
                fault.clone(),
            );
        }
        if let Some(b) = halve(budget, 5.0) {
            push(
                Axis::TimeBudget,
                format!("time_budget {budget} → {b}"),
                scenario.to_builder().time_budget(b).build(),
                fault.clone(),
            );
        }
    }
    if let Some(r) = halve(scenario.min_route_length, 20.0) {
        push(
            Axis::RouteLength,
            format!("min_route_length {} → {r}", scenario.min_route_length),
            scenario.to_builder().min_route_length(r).build(),
            fault.clone(),
        );
    }
    let rank = weather_rank(scenario.weather);
    if rank > 0 {
        push(
            Axis::Weather,
            format!("weather {} → {}", scenario.weather, Weather::ClearNoon),
            scenario.to_builder().weather(Weather::ClearNoon).build(),
            fault.clone(),
        );
        if rank > 1 {
            let simpler = weather_by_rank(rank - 1);
            push(
                Axis::Weather,
                format!("weather {} → {simpler}", scenario.weather),
                scenario.to_builder().weather(simpler).build(),
                fault.clone(),
            );
        }
    }
    if let Some(trigger) = fault_trigger(fault) {
        let bound = anchor.violation_frame.unwrap_or(anchor.final_frame);
        if let Some(earliest) = trigger.earliest_frame() {
            // Later onset: binary-search the start toward the anchor.
            let capped_bound = match *trigger {
                Trigger::Window { end, .. } => bound.min(end.saturating_sub(1)),
                _ => bound,
            };
            let mid = (earliest + capped_bound) / 2;
            if mid > earliest {
                let later = match *trigger {
                    Trigger::Always | Trigger::From { .. } => Trigger::From { frame: mid },
                    Trigger::Window { end, .. } => Trigger::Window { start: mid, end },
                    Trigger::Bernoulli { .. } => unreachable!("earliest_frame is None"),
                };
                push(
                    Axis::FaultOnset,
                    format!(
                        "trigger {} → {}",
                        trigger_desc(trigger),
                        trigger_desc(&later)
                    ),
                    scenario.clone(),
                    with_trigger(fault, later),
                );
            }
        }
        if let Some(v) = anchor.violation_frame {
            // Narrow open-ended triggers to close just past the violation.
            let narrowed = match *trigger {
                Trigger::Always if v + 1 < anchor.final_frame => Some(Trigger::Window {
                    start: 0,
                    end: v + 1,
                }),
                Trigger::From { frame } if v >= frame && v + 1 < anchor.final_frame => {
                    Some(Trigger::Window {
                        start: frame,
                        end: v + 1,
                    })
                }
                Trigger::Window { start, end } if v + 1 < end && v >= start => {
                    Some(Trigger::Window { start, end: v + 1 })
                }
                _ => None,
            };
            if let Some(t) = narrowed {
                push(
                    Axis::TriggerWindow,
                    format!("trigger {} → {}", trigger_desc(trigger), trigger_desc(&t)),
                    scenario.clone(),
                    with_trigger(fault, t),
                );
            }
        }
    }
    for (description, reduced) in magnitude_candidates(fault) {
        push(Axis::FaultMagnitude, description, scenario.clone(), reduced);
    }
    out
}

// ---------------------------------------------------------------------
// Generic shrink loop
// ---------------------------------------------------------------------

/// Runs delta debugging over the reduction lattice against an oracle.
///
/// Each iteration proposes all candidates for the current state,
/// evaluates the whole batch (speculatively — the oracle may fan out),
/// and accepts the **first** candidate in proposal order whose class
/// equals `class` and whose replay verification passes. The loop stops
/// when an iteration accepts nothing, proposals run dry, or
/// [`ShrinkConfig::max_iterations`] is reached.
pub fn shrink_with_oracle(
    scenario: &Scenario,
    fault: &FaultSpec,
    class: &FailureClass,
    anchor: Anchor,
    oracle: &mut dyn ShrinkOracle,
    config: &ShrinkConfig,
) -> ShrinkLoopResult {
    let mut cur_scenario = scenario.clone();
    let mut cur_fault = fault.clone();
    let mut cur_anchor = anchor;
    let mut log: Vec<ShrinkStep> = Vec::new();
    let mut runs_spent = 0usize;
    let mut iterations = 0usize;

    for iteration in 1..=config.max_iterations {
        let candidates = propose(&cur_scenario, &cur_fault, &cur_anchor);
        if candidates.is_empty() {
            break;
        }
        iterations = iteration;
        let evals = oracle.evaluate(&candidates);
        assert_eq!(
            evals.len(),
            candidates.len(),
            "oracle must evaluate every candidate"
        );
        runs_spent += candidates.len();

        let mut accepted: Option<usize> = None;
        let mut verdicts: Vec<ShrinkVerdict> = Vec::with_capacity(candidates.len());
        for (i, (candidate, eval)) in candidates.iter().zip(&evals).enumerate() {
            if accepted.is_some() {
                verdicts.push(ShrinkVerdict::NotSelected);
                continue;
            }
            match &eval.class {
                None => verdicts.push(ShrinkVerdict::RejectedNoFailure),
                Some(c) if c != class => verdicts.push(ShrinkVerdict::RejectedClassChanged),
                Some(_) => {
                    runs_spent += 1;
                    if oracle.verify(i, candidate) {
                        verdicts.push(ShrinkVerdict::Accepted);
                        accepted = Some(i);
                    } else {
                        verdicts.push(ShrinkVerdict::RejectedReplayDiverged);
                    }
                }
            }
        }
        for (candidate, verdict) in candidates.iter().zip(&verdicts) {
            log.push(ShrinkStep {
                iteration,
                axis: candidate.axis.label().to_string(),
                candidate: candidate.description.clone(),
                verdict: *verdict,
                runs_spent,
            });
        }
        match accepted {
            Some(i) => {
                cur_scenario = candidates[i].scenario.clone();
                cur_fault = candidates[i].fault.clone();
                if let Some(a) = evals[i].anchor {
                    cur_anchor = a;
                }
            }
            None => break,
        }
    }

    ShrinkLoopResult {
        scenario: cur_scenario,
        fault: cur_fault,
        log,
        iterations,
        runs_spent,
    }
}

// ---------------------------------------------------------------------
// Engine-backed oracle and the end-to-end entry point
// ---------------------------------------------------------------------

/// Frame anchors extracted from a candidate's trace.
fn anchor_of(trace: &RunTrace) -> Anchor {
    let violation_frame = match trace.first_violation() {
        Some(TraceEvent::Violation { frame, .. }) => Some(*frame),
        _ => None,
    };
    let final_frame = trace
        .frames
        .last()
        .map(|f| f.frame)
        .unwrap_or_else(|| (trace.summary.duration / FRAME_DT).round() as u64);
    Anchor {
        violation_frame,
        final_frame,
    }
}

/// The production oracle: candidates re-execute through
/// [`Engine::evaluate_jobs`] at the frozen coordinates of the original
/// failure, and verification replays the candidate's own trace.
pub struct EngineOracle<'a> {
    engine: &'a Engine,
    agent: crate::campaign::AgentSpec,
    weights: Option<Vec<u8>>,
    spec: TraceSpec,
    scenario_index: usize,
    run_index: usize,
    last_traces: Vec<Option<RunTrace>>,
}

impl<'a> EngineOracle<'a> {
    /// Builds the oracle from a source trace (agent, coordinates, and
    /// black-box window all come from the header).
    ///
    /// # Errors
    ///
    /// Propagates [`ReplayError`] when the header's agent cannot be
    /// reconstructed.
    pub fn from_trace(
        engine: &'a Engine,
        trace: &RunTrace,
        weights: Option<&[u8]>,
        config: &ShrinkConfig,
    ) -> Result<Self, ReplayError> {
        let agent = agent_from_header(&trace.header, weights)?;
        let blackbox_frames = if trace.header.blackbox_frames > 0 {
            trace.header.blackbox_frames
        } else {
            ((config.blackbox_seconds / FRAME_DT).ceil() as usize).max(1)
        };
        Ok(EngineOracle {
            engine,
            agent,
            weights: weights.map(|w| w.to_vec()),
            spec: TraceSpec {
                level: TraceLevel::Blackbox,
                study: trace.header.study.clone(),
                blackbox_frames,
                weights_fingerprint: trace.header.weights_fingerprint,
            },
            scenario_index: trace.header.scenario_index,
            run_index: trace.header.run_index,
            last_traces: Vec::new(),
        })
    }
}

impl ShrinkOracle for EngineOracle<'_> {
    fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<CandidateEval> {
        let jobs: Vec<EvalJob> = candidates
            .iter()
            .map(|c| EvalJob {
                scenario: c.scenario.clone(),
                scenario_index: self.scenario_index,
                run_index: self.run_index,
                fault: c.fault.clone(),
            })
            .collect();
        let results = self.engine.evaluate_jobs(&jobs, &self.agent, &self.spec);
        let evals = results
            .iter()
            .map(|(_, trace)| CandidateEval {
                class: trace.as_ref().and_then(failure_class),
                anchor: trace.as_ref().map(anchor_of),
            })
            .collect();
        self.last_traces = results.into_iter().map(|(_, trace)| trace).collect();
        evals
    }

    fn verify(&mut self, index: usize, _candidate: &Candidate) -> bool {
        match self.last_traces.get(index) {
            Some(Some(trace)) => matches!(
                replay_trace(trace, self.weights.as_deref()),
                Ok(ReplayVerdict::Match { .. })
            ),
            _ => false,
        }
    }
}

/// Shrinks a failed run's trace into a [`MinimalRepro`].
///
/// `source` names the trace (echoed into the repro), `weights` must be
/// the IL-CNN weights for neural traces (fingerprint-checked), and the
/// engine's worker count parallelizes candidate evaluation without
/// affecting the result.
///
/// # Errors
///
/// [`ShrinkError::NotAFailure`] for successful traces,
/// [`ShrinkError::Replay`] when the trace cannot be re-executed, and
/// [`ShrinkError::BaselineMismatch`] when re-executing the unreduced
/// original does not reproduce the recorded failure class.
pub fn shrink_trace(
    engine: &Engine,
    source: &str,
    trace: &RunTrace,
    weights: Option<&[u8]>,
    config: &ShrinkConfig,
) -> Result<ShrinkOutcome, ShrinkError> {
    let class = failure_class(trace).ok_or(ShrinkError::NotAFailure)?;
    let fault: FaultSpec = serde_json::from_str(&trace.header.fault_spec_json)
        .map_err(|e| ReplayError::BadFaultSpec(e.to_string()))?;
    let derived = trace.header.derived_seed();
    if derived != trace.header.seed {
        return Err(ReplayError::SeedMismatch {
            recorded: trace.header.seed,
            derived,
        }
        .into());
    }
    let mut oracle = EngineOracle::from_trace(engine, trace, weights, config)?;

    // Baseline: the unreduced original must re-land in the recorded
    // class before any reduction is trusted (also seeds the anchors
    // from a full re-execution rather than the possibly-clipped ring).
    let baseline = Candidate {
        axis: Axis::Baseline,
        description: "baseline re-execution".to_string(),
        scenario: trace.header.scenario.clone(),
        fault: fault.clone(),
    };
    let baseline_eval = oracle
        .evaluate(std::slice::from_ref(&baseline))
        .pop()
        .expect("one eval per candidate");
    if baseline_eval.class.as_ref() != Some(&class) {
        return Err(ShrinkError::BaselineMismatch {
            expected: Box::new(class),
            got: baseline_eval.class.map(Box::new),
        });
    }
    let anchor = baseline_eval.anchor.unwrap_or_else(|| anchor_of(trace));

    let result = shrink_with_oracle(
        &trace.header.scenario,
        &fault,
        &class,
        anchor,
        &mut oracle,
        config,
    );
    let reductions: Vec<String> = result
        .log
        .iter()
        .filter(|s| s.verdict == ShrinkVerdict::Accepted)
        .map(|s| format!("{}: {}", s.axis, s.candidate))
        .collect();
    Ok(ShrinkOutcome {
        repro: MinimalRepro {
            source_trace: source.to_string(),
            study: trace.header.study.clone(),
            agent: trace.header.agent.clone(),
            fault_label: result.fault.label(),
            scenario_index: trace.header.scenario_index,
            run_index: trace.header.run_index,
            seed: trace.header.seed,
            scenario: result.scenario,
            fault: result.fault,
            expected: class,
            reductions,
            iterations: result.iterations,
            runs_spent: result.runs_spent + 1,
        },
        log: result.log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::scenario::TownSpec;

    fn base_scenario() -> Scenario {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(17)
            .npc_vehicles(4)
            .pedestrians(3)
            .pedestrian_cross_rate(0.01)
            .weather(Weather::Fog)
            .time_budget(60.0)
            .min_route_length(80.0)
            .build()
    }

    fn anchor() -> Anchor {
        Anchor {
            violation_frame: Some(300),
            final_frame: 900,
        }
    }

    #[test]
    fn count_steps_try_biggest_cut_first() {
        assert_eq!(count_steps(0), Vec::<usize>::new());
        assert_eq!(count_steps(1), vec![0]);
        assert_eq!(count_steps(2), vec![0, 1]);
        assert_eq!(count_steps(5), vec![0, 2, 4]);
    }

    #[test]
    fn halving_respects_floor_and_terminates() {
        assert_eq!(halve(60.0, 5.0), Some(30.0));
        assert_eq!(halve(8.0, 5.0), Some(5.0));
        assert_eq!(halve(5.0, 5.0), None);
        let mut v = 1024.0;
        let mut steps = 0;
        while let Some(next) = halve(v, 5.0) {
            v = next;
            steps += 1;
            assert!(steps < 64, "halving must terminate");
        }
        assert_eq!(v, 5.0);
    }

    #[test]
    fn proposals_are_deterministic_and_scenario_seed_is_frozen() {
        let s = base_scenario();
        let f = FaultSpec::Timing(TimingFault::OutputDelay { frames: 30 });
        let a = propose(&s, &f, &anchor());
        let b = propose(&s, &f, &anchor());
        assert_eq!(a, b, "propose must be pure");
        assert!(!a.is_empty());
        for c in &a {
            assert_eq!(c.scenario.seed, s.seed, "seed must never shrink");
        }
        // Flat-lattice order: scenario axes before fault axes.
        assert_eq!(a[0].axis, Axis::NpcVehicles);
        assert_eq!(a[0].description, "npc_vehicles 4 → 0");
        let mag: Vec<&Candidate> = a
            .iter()
            .filter(|c| c.axis == Axis::FaultMagnitude)
            .collect();
        assert_eq!(mag[0].description, "fault dropped entirely");
        assert_eq!(mag[1].description, "delay 30f → 15f");
    }

    #[test]
    fn pure_timeout_failures_never_shrink_the_budget() {
        let s = base_scenario();
        let f = FaultSpec::None;
        let no_violation = Anchor {
            violation_frame: None,
            final_frame: 900,
        };
        assert!(
            propose(&s, &f, &no_violation)
                .iter()
                .all(|c| c.axis != Axis::TimeBudget),
            "budget cuts trivially preserve timeouts — must not be proposed"
        );
        assert!(
            propose(&s, &f, &anchor())
                .iter()
                .any(|c| c.axis == Axis::TimeBudget),
            "violation-anchored failures do shrink the budget"
        );
    }

    #[test]
    fn onset_moves_toward_anchor_and_window_closes_past_violation() {
        let s = base_scenario();
        let f = FaultSpec::Input(InputFault::from_frame(ImageFault::gaussian(0.08), 100));
        let cands = propose(&s, &f, &anchor());
        let onset = cands
            .iter()
            .find(|c| c.axis == Axis::FaultOnset)
            .expect("onset candidate");
        assert_eq!(onset.description, "trigger from 100 → from 200");
        let window = cands
            .iter()
            .find(|c| c.axis == Axis::TriggerWindow)
            .expect("window candidate");
        assert_eq!(window.description, "trigger from 100 → window 100..301");
        // Bernoulli triggers have no onset to move.
        let bern = with_trigger(&f, Trigger::Bernoulli { p: 0.2 });
        assert!(propose(&s, &bern, &anchor())
            .iter()
            .all(|c| c.axis != Axis::FaultOnset && c.axis != Axis::TriggerWindow));
    }

    /// Synthetic oracle: the run "fails" in a fixed class iff the
    /// candidate keeps at least `required` NPC vehicles.
    struct NpcThresholdOracle {
        required: usize,
        class: FailureClass,
    }

    impl ShrinkOracle for NpcThresholdOracle {
        fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<CandidateEval> {
            candidates
                .iter()
                .map(|c| CandidateEval {
                    class: (c.scenario.npc_vehicles >= self.required).then(|| self.class.clone()),
                    anchor: None,
                })
                .collect()
        }

        fn verify(&mut self, _index: usize, _candidate: &Candidate) -> bool {
            true
        }
    }

    #[test]
    fn loop_never_shrinks_below_the_required_npcs() {
        let class = FailureClass {
            outcome: "stuck".to_string(),
            first_violation: Some("collision-vehicle".to_string()),
            causal_channel: Some("image".to_string()),
        };
        let mut oracle = NpcThresholdOracle {
            required: 2,
            class: class.clone(),
        };
        let s = base_scenario().to_builder().npc_vehicles(9).build();
        let result = shrink_with_oracle(
            &s,
            &FaultSpec::None,
            &class,
            anchor(),
            &mut oracle,
            &ShrinkConfig::default(),
        );
        assert_eq!(
            result.scenario.npc_vehicles, 2,
            "minimum is exactly the required count"
        );
        assert!(result.runs_spent > 0);
        assert!(result
            .log
            .iter()
            .any(|s| s.verdict == ShrinkVerdict::Accepted));
    }

    #[test]
    fn rejecting_oracle_accepts_nothing_and_stops() {
        struct NeverFails;
        impl ShrinkOracle for NeverFails {
            fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<CandidateEval> {
                candidates
                    .iter()
                    .map(|_| CandidateEval {
                        class: None,
                        anchor: None,
                    })
                    .collect()
            }
            fn verify(&mut self, _index: usize, _candidate: &Candidate) -> bool {
                false
            }
        }
        let class = FailureClass {
            outcome: "timeout".to_string(),
            first_violation: None,
            causal_channel: None,
        };
        let s = base_scenario();
        let result = shrink_with_oracle(
            &s,
            &FaultSpec::None,
            &class,
            anchor(),
            &mut NeverFails,
            &ShrinkConfig::default(),
        );
        assert_eq!(result.iterations, 1, "one round of rejections, then stop");
        assert_eq!(result.scenario, s);
        assert!(result
            .log
            .iter()
            .all(|s| s.verdict == ShrinkVerdict::RejectedNoFailure));
    }

    #[test]
    fn diverging_replay_blocks_acceptance() {
        // Class always matches, but verification always fails: nothing
        // may be accepted no matter how attractive the candidate.
        struct AlwaysDiverges(FailureClass);
        impl ShrinkOracle for AlwaysDiverges {
            fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<CandidateEval> {
                candidates
                    .iter()
                    .map(|_| CandidateEval {
                        class: Some(self.0.clone()),
                        anchor: None,
                    })
                    .collect()
            }
            fn verify(&mut self, _index: usize, _candidate: &Candidate) -> bool {
                false
            }
        }
        let class = FailureClass {
            outcome: "timeout".to_string(),
            first_violation: None,
            causal_channel: None,
        };
        let s = base_scenario();
        let result = shrink_with_oracle(
            &s,
            &FaultSpec::None,
            &class,
            anchor(),
            &mut AlwaysDiverges(class.clone()),
            &ShrinkConfig::default(),
        );
        assert_eq!(result.scenario, s, "nothing verified, nothing accepted");
        assert!(result
            .log
            .iter()
            .all(|s| s.verdict == ShrinkVerdict::RejectedReplayDiverged));
    }
}
