//! Fault localization: *where* to inject.
//!
//! AVFI campaigns first select fault locations — "e.g., choosing specific
//! neurons and layers in the IL-CNN" — then apply a fault model there.
//! This module provides the selection strategies: parameter-name
//! selectors for weight faults, layer/unit sampling for neuron faults, and
//! bit-position sampling for hardware faults.

use avfi_agent::IlNetwork;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Selects which named parameters of the network are fault-eligible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamSelector {
    /// Every parameter.
    All,
    /// Parameters whose qualified name starts with a prefix, e.g.
    /// `"trunk.conv0"` or `"head1."`.
    Prefix(String),
    /// Only weight matrices (excludes biases).
    WeightsOnly,
}

impl ParamSelector {
    /// Whether a qualified parameter name is selected.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            ParamSelector::All => true,
            ParamSelector::Prefix(p) => name.starts_with(p.as_str()),
            ParamSelector::WeightsOnly => name.ends_with(".weight"),
        }
    }
}

/// A fully resolved neuron fault site in the trunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuronSite {
    /// Trunk layer index.
    pub layer: usize,
    /// Flat unit index within that layer's output.
    pub unit: usize,
}

/// Enumerates the qualified parameter names of a network (the localizer's
/// "map" of the IL-CNN).
pub fn parameter_names(net: &mut IlNetwork) -> Vec<String> {
    net.params().iter().map(|p| p.name.clone()).collect()
}

/// Sizes of the trunk layer outputs of the default IL architecture, used
/// to sample valid neuron sites. Index = trunk layer.
fn trunk_output_sizes() -> Vec<usize> {
    // conv(8@12x16), relu, conv(16@6x8), relu, flatten, dense 64, relu.
    vec![
        8 * 12 * 16,
        8 * 12 * 16,
        16 * 6 * 8,
        16 * 6 * 8,
        16 * 6 * 8,
        64,
        64,
    ]
}

/// Samples a random neuron site in the trunk, uniformly over layers then
/// units (matching the paper's per-layer selection step).
pub fn sample_neuron_site(rng: &mut StdRng) -> NeuronSite {
    let sizes = trunk_output_sizes();
    let layer = rng.random_range(0..sizes.len());
    let unit = rng.random_range(0..sizes[layer]);
    NeuronSite { layer, unit }
}

/// Samples a neuron site in a *specific* trunk layer.
///
/// # Panics
///
/// Panics if `layer` is out of range for the default architecture.
pub fn sample_neuron_in_layer(layer: usize, rng: &mut StdRng) -> NeuronSite {
    let sizes = trunk_output_sizes();
    assert!(layer < sizes.len(), "layer {layer} out of range");
    NeuronSite {
        layer,
        unit: rng.random_range(0..sizes[layer]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfi_sim::rng::stream_rng;

    #[test]
    fn selector_semantics() {
        assert!(ParamSelector::All.matches("trunk.conv0.weight"));
        assert!(ParamSelector::Prefix("trunk.".into()).matches("trunk.dense5.bias"));
        assert!(!ParamSelector::Prefix("trunk.".into()).matches("head0.dense0.weight"));
        assert!(ParamSelector::WeightsOnly.matches("head2.dense0.weight"));
        assert!(!ParamSelector::WeightsOnly.matches("head2.dense0.bias"));
    }

    #[test]
    fn parameter_names_cover_trunk_and_heads() {
        let mut net = IlNetwork::new(1);
        let names = parameter_names(&mut net);
        assert!(names.iter().any(|n| n.starts_with("trunk.conv")));
        assert!(names.iter().any(|n| n.starts_with("trunk.dense")));
        for h in 0..4 {
            assert!(
                names.iter().any(|n| n.starts_with(&format!("head{h}."))),
                "missing head{h}"
            );
        }
    }

    #[test]
    fn neuron_sites_are_valid_overrides() {
        // Installing a sampled site must actually affect the network (the
        // override indices must be in range of the real layer outputs).
        use avfi_nn::Tensor;
        use avfi_sim::map::route::Command;
        let mut rng = stream_rng(1, 0);
        for _ in 0..10 {
            let site = sample_neuron_site(&mut rng);
            let mut net = IlNetwork::new(2);
            let img = Tensor::zeros(vec![1, 24, 32]);
            let clean = net.forward(&img, 0.1, Command::Follow, false);
            net.add_trunk_override(site.layer, site.unit, 99.0);
            let faulty = net.forward(&img, 0.1, Command::Follow, false);
            assert_ne!(clean.data(), faulty.data(), "site {site:?} had no effect");
            net.clear_overrides();
        }
    }

    #[test]
    fn per_layer_sampling_respects_layer() {
        let mut rng = stream_rng(2, 0);
        for layer in 0..7 {
            let site = sample_neuron_in_layer(layer, &mut rng);
            assert_eq!(site.layer, layer);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_layer_panics() {
        let _ = sample_neuron_in_layer(99, &mut stream_rng(3, 0));
    }
}
