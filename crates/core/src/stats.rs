//! Statistical analysis of campaign results: summary statistics,
//! percentiles, histograms, and bootstrap confidence intervals.

use avfi_sim::rng::stream_rng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Five-number summary plus mean/std of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample. Returns a zeroed summary for an
    /// empty sample.
    pub fn of(data: &[f64]) -> Summary {
        if data.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
            };
        }
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[n - 1],
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolated percentile of an already sorted sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted sample.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    percentile_sorted(&sorted, p)
}

/// Bootstrap confidence interval for the mean: resamples with replacement
/// `iters` times and reports the `(lo, hi)` percentile interval at the
/// given confidence level (e.g. `0.95`).
///
/// Returns `(mean, mean)` for samples of size < 2.
pub fn bootstrap_mean_ci(data: &[f64], iters: usize, confidence: f64, seed: u64) -> (f64, f64) {
    if data.len() < 2 {
        let m = data.first().copied().unwrap_or(0.0);
        return (m, m);
    }
    let mut rng = stream_rng(seed, 0xB007);
    let mut means: Vec<f64> = (0..iters)
        .map(|_| {
            let mut sum = 0.0;
            for _ in 0..data.len() {
                sum += data[rng.random_range(0..data.len())];
            }
            sum / data.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    (
        percentile_sorted(&means, alpha * 100.0),
        percentile_sorted(&means, (1.0 - alpha) * 100.0),
    )
}

/// A histogram over equal-width bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Bin width.
    pub width: f64,
    /// Counts per bin.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning the data
    /// range. Empty data yields one empty bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn of(data: &[f64], bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        if data.is_empty() {
            return Histogram {
                lo: 0.0,
                width: 1.0,
                counts: vec![0; bins],
            };
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / bins as f64).max(1e-12);
        let mut counts = vec![0usize; bins];
        for &x in data {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram { lo, width, counts }
    }

    /// Total count.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 40.0);
        assert_eq!(percentile(&data, 50.0), 25.0);
    }

    #[test]
    fn bootstrap_brackets_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let (lo, hi) = bootstrap_mean_ci(&data, 500, 0.95, 1);
        let mean = 4.5;
        assert!(lo < mean && mean < hi, "({lo}, {hi})");
        assert!(hi - lo < 1.5, "CI too wide: ({lo}, {hi})");
    }

    #[test]
    fn bootstrap_deterministic() {
        let data = [1.0, 5.0, 3.0, 8.0, 2.0, 9.0];
        assert_eq!(
            bootstrap_mean_ci(&data, 200, 0.9, 42),
            bootstrap_mean_ci(&data, 200, 0.9, 42)
        );
    }

    #[test]
    fn histogram_counts() {
        // Range [0, 1], two bins of width 0.5; 0.5 lands in the upper bin.
        let h = Histogram::of(&[0.0, 0.1, 0.9, 1.0, 0.5], 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts, vec![2, 3]);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::of(&[], 4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.counts.len(), 4);
    }
}
