//! Paired campaign comparison: quantify how much a fault degrades the
//! system relative to a baseline, with bootstrap confidence on the
//! difference.
//!
//! AVFI "provides methods for statistical analysis of traffic violations";
//! this module implements the paired design its campaigns enable: because
//! runs are seeded, the *same* missions can be driven under two fault
//! plans, and per-mission differences cancel scenario difficulty.

use crate::campaign::{CampaignResult, RunResult};
use crate::metrics;
use crate::stats::bootstrap_mean_ci;
use serde::{Deserialize, Serialize};

/// Paired comparison of one metric between a baseline and a treatment
/// campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairedComparison {
    /// Metric name.
    pub metric: String,
    /// Baseline fault label.
    pub baseline: String,
    /// Treatment fault label.
    pub treatment: String,
    /// Number of paired runs.
    pub n: usize,
    /// Mean of (treatment − baseline) per paired run.
    pub mean_delta: f64,
    /// Bootstrap 95% CI on the mean delta.
    pub ci95: (f64, f64),
}

impl PairedComparison {
    /// `true` when the 95% CI excludes zero (the fault effect is
    /// statistically distinguishable at that level).
    pub fn is_significant(&self) -> bool {
        self.ci95.0 > 0.0 || self.ci95.1 < 0.0
    }
}

fn paired_deltas(
    baseline: &CampaignResult,
    treatment: &CampaignResult,
    metric: impl Fn(&RunResult) -> f64,
) -> Vec<f64> {
    baseline
        .runs()
        .iter()
        .zip(treatment.runs())
        .filter(|(b, t)| b.seed == t.seed)
        .map(|(b, t)| metric(t) - metric(b))
        .collect()
}

/// Compares violations-per-km between two campaigns run on the same seeds.
///
/// # Panics
///
/// Panics if the campaigns share no seeds (they were not paired).
pub fn compare_vpk(baseline: &CampaignResult, treatment: &CampaignResult) -> PairedComparison {
    compare_metric("VPK", baseline, treatment, metrics::violations_per_km)
}

/// Compares accidents-per-km between two paired campaigns.
///
/// # Panics
///
/// Panics if the campaigns share no seeds.
pub fn compare_apk(baseline: &CampaignResult, treatment: &CampaignResult) -> PairedComparison {
    compare_metric("APK", baseline, treatment, metrics::accidents_per_km)
}

/// Compares mission success (0/1 per run) between two paired campaigns;
/// `mean_delta` is the success-probability difference.
///
/// # Panics
///
/// Panics if the campaigns share no seeds.
pub fn compare_success(baseline: &CampaignResult, treatment: &CampaignResult) -> PairedComparison {
    compare_metric("success", baseline, treatment, |r| {
        if r.outcome.is_success() {
            1.0
        } else {
            0.0
        }
    })
}

/// Generic paired comparison of a per-run metric.
///
/// # Panics
///
/// Panics if the campaigns share no seeds.
pub fn compare_metric(
    name: &str,
    baseline: &CampaignResult,
    treatment: &CampaignResult,
    metric: impl Fn(&RunResult) -> f64,
) -> PairedComparison {
    let deltas = paired_deltas(baseline, treatment, metric);
    assert!(
        !deltas.is_empty(),
        "campaigns are not paired (no shared seeds)"
    );
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let ci = bootstrap_mean_ci(&deltas, 2000, 0.95, 0xC0FFEE);
    PairedComparison {
        metric: name.to_string(),
        baseline: baseline.fault.clone(),
        treatment: treatment.fault.clone(),
        n: deltas.len(),
        mean_delta: mean,
        ci95: ci,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AgentSpec, Campaign, CampaignConfig};
    use crate::fault::timing::TimingFault;
    use crate::fault::FaultSpec;
    use avfi_sim::scenario::{Scenario, TownSpec};

    fn campaign(fault: FaultSpec) -> CampaignResult {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        let scenario = Scenario::builder(town)
            .seed(5)
            .npc_vehicles(0)
            .pedestrians(0)
            .time_budget(30.0)
            .min_route_length(60.0)
            .build();
        Campaign::new(
            CampaignConfig::builder(vec![scenario])
                .runs_per_scenario(4)
                .fault(fault)
                .agent(AgentSpec::Expert)
                .build(),
        )
        .run()
    }

    #[test]
    fn identical_campaigns_have_zero_delta() {
        let a = campaign(FaultSpec::None);
        let b = campaign(FaultSpec::None);
        let cmp = compare_vpk(&a, &b);
        assert_eq!(cmp.n, 4);
        assert_eq!(cmp.mean_delta, 0.0);
        assert!(!cmp.is_significant());
    }

    #[test]
    fn severe_delay_shows_positive_vpk_delta() {
        let base = campaign(FaultSpec::None);
        let hurt = campaign(FaultSpec::Timing(TimingFault::OutputDelay { frames: 30 }));
        let cmp = compare_vpk(&base, &hurt);
        assert!(cmp.mean_delta > 0.0, "delta={}", cmp.mean_delta);
        let s = compare_success(&base, &hurt);
        assert!(s.mean_delta <= 0.0);
    }

    #[test]
    #[should_panic(expected = "not paired")]
    fn unpaired_campaigns_rejected() {
        let a = campaign(FaultSpec::None);
        let mut b = campaign(FaultSpec::None);
        // Forge different seeds.
        let runs = b.runs().to_vec();
        let _ = runs;
        // Easiest unpaired case: compare against a campaign built from a
        // different scenario seed.
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        let other = Campaign::new(
            CampaignConfig::builder(vec![Scenario::builder(town)
                .seed(999)
                .npc_vehicles(0)
                .pedestrians(0)
                .time_budget(10.0)
                .min_route_length(60.0)
                .build()])
            .runs_per_scenario(2)
            .agent(AgentSpec::Expert)
            .build(),
        )
        .run();
        b = other;
        let _ = compare_vpk(&a, &b);
    }
}
