//! The adaptive planner's determinism contract, end to end: arbitrary
//! outcome sequences folded in flat-plan order are a pure function of
//! (seed, outcomes); a full engine-backed search is byte-identical for
//! `--workers 1` vs `--workers 8`; and a fixed-seed trajectory is pinned
//! as a regression.

use avfi_core::adaptive::{
    drive, run_adaptive, AdaptiveConfig, AdaptiveOracle, AdaptivePlanner, AdaptiveSpace,
    FaultChannel, Observation, Proposal,
};
use avfi_core::campaign::AgentSpec;
use avfi_core::engine::Engine;
use avfi_core::fault::hardware::HardwareTarget;
use avfi_core::fault::input::ImageFault;
use avfi_sim::scenario::{Scenario, TownSpec};
use proptest::prelude::*;

/// Cheap deterministic scenario: tiny unsignalized grid, no actors, so
/// the expert-agent engine runs finish in milliseconds.
fn tiny_scenario(seed: u64) -> Scenario {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(15.0)
        .min_route_length(50.0)
        .build()
}

/// A small search space with one channel (stuck brake at magnitude 1)
/// guaranteed to fail, so both benign and failing outcomes occur.
fn tiny_space() -> AdaptiveSpace {
    AdaptiveSpace {
        scenarios: vec![tiny_scenario(31), tiny_scenario(37)],
        channels: vec![
            FaultChannel::Camera(ImageFault::gaussian(0.05)),
            FaultChannel::HardwareStuck {
                target: HardwareTarget::ControlBrake,
                value: 1.0,
            },
        ],
        magnitudes: vec![0.5, 1.0],
        onsets: vec![0],
    }
}

/// Scripted oracle: outcome of the i-th pull (in flat-plan order) is
/// bit i of a fixed pattern — the planner never sees anything but this
/// sequence, so two drives over the same pattern must agree everywhere.
struct PatternOracle {
    pattern: Vec<bool>,
    cursor: usize,
}

impl AdaptiveOracle for PatternOracle {
    fn evaluate(&mut self, proposals: &[Proposal]) -> Vec<Observation> {
        proposals
            .iter()
            .map(|_| {
                let failed = self.pattern[self.cursor % self.pattern.len()];
                self.cursor += 1;
                Observation {
                    failed,
                    class: failed.then(|| "timeout / none / none".to_string()),
                }
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any outcome sequence and any seed, folding observations in
    /// flat-plan order yields identical batches, posteriors, and report
    /// on every drive — the planner state is a pure function of
    /// (seed, outcome history), never of scheduling.
    #[test]
    fn trajectory_is_a_pure_function_of_seed_and_outcomes(
        pattern in proptest::collection::vec(any::<bool>(), 1..48),
        seed in 0u64..1_000_000,
        batch in 1usize..9,
    ) {
        let space = tiny_space();
        let config = AdaptiveConfig { budget: 36, batch, seed };
        let run = || {
            let mut planner = AdaptivePlanner::new(&space, config.clone());
            let mut oracle = PatternOracle { pattern: pattern.clone(), cursor: 0 };
            drive(&mut planner, &mut oracle);
            serde_json::to_string_pretty(&planner.trajectory()).unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// Splitting the same outcome sequence into different batch sizes
    /// changes *which* arms get proposed (the posterior evolves at batch
    /// boundaries) but never breaks bookkeeping: budget accounting and
    /// per-arm pull/failure counts always reconcile.
    #[test]
    fn bookkeeping_reconciles_for_any_batch_size(
        pattern in proptest::collection::vec(any::<bool>(), 1..32),
        batch in 1usize..13,
    ) {
        let space = tiny_space();
        let config = AdaptiveConfig { budget: 24, batch, seed: 99 };
        let mut planner = AdaptivePlanner::new(&space, config);
        let mut oracle = PatternOracle { pattern, cursor: 0 };
        drive(&mut planner, &mut oracle);
        let trajectory = planner.trajectory();
        let pulls: usize = trajectory.batches.iter().map(|b| b.pulls.len()).sum();
        prop_assert_eq!(pulls, 24);
        prop_assert_eq!(trajectory.report.spent, 24);
        let failures: usize = trajectory
            .batches
            .iter()
            .flat_map(|b| &b.pulls)
            .filter(|p| p.failed)
            .count();
        prop_assert_eq!(trajectory.report.failures, failures);
        let last = trajectory.batches.last().unwrap();
        let posterior_pulls: usize = last.posteriors.iter().map(|p| p.pulls).sum();
        let posterior_failures: usize = last.posteriors.iter().map(|p| p.failures).sum();
        prop_assert_eq!(posterior_pulls, 24);
        prop_assert_eq!(posterior_failures, failures);
    }
}

/// The headline contract: a full engine-backed adaptive search — every
/// batch, posterior state, and the report — is byte-identical whether
/// the engine runs 1 worker or 8.
#[test]
fn engine_trajectory_is_byte_identical_workers_1_vs_8() {
    let space = tiny_space();
    let config = AdaptiveConfig {
        budget: 14,
        batch: 4,
        seed: 2018,
    };
    let run = |workers: usize| {
        run_adaptive(
            &Engine::new().workers(workers),
            &space,
            config.clone(),
            &AgentSpec::Expert,
            "adaptive-it",
        )
    };
    let o1 = run(1);
    let o8 = run(8);
    assert_eq!(
        serde_json::to_string_pretty(&o1.trajectory).unwrap(),
        serde_json::to_string_pretty(&o8.trajectory).unwrap(),
        "adaptive trajectory must be worker-count invariant"
    );
    // Captured failure traces must agree too (same pulls, same runs).
    let keys = |traces: &[(usize, avfi_trace::RunTrace)]| {
        traces
            .iter()
            .map(|(i, t)| (*i, t.header.seed))
            .collect::<Vec<_>>()
    };
    assert_eq!(keys(&o1.traces), keys(&o8.traces));
    // The stuck-brake channel guarantees the search actually finds
    // failures in this space.
    assert!(o1.trajectory.report.failures > 0);
}

/// Fixed-seed regression: the pinned trajectory shape for seed 2018 over
/// the scripted oracle. If the RNG stream, arm order, or fold order ever
/// changes, this breaks loudly.
#[test]
fn fixed_seed_trajectory_regression() {
    let space = tiny_space();
    let config = AdaptiveConfig {
        budget: 12,
        batch: 4,
        seed: 2018,
    };
    let mut planner = AdaptivePlanner::new(&space, config);
    // Fail exactly the stuck-brake magnitude-1.0 arms (indices 3 and 7:
    // scenario-major, camera arms first, stuck-brake 0.5 then 1.0).
    struct BrakeOracle;
    impl AdaptiveOracle for BrakeOracle {
        fn evaluate(&mut self, proposals: &[Proposal]) -> Vec<Observation> {
            proposals
                .iter()
                .map(|p| Observation {
                    failed: p.arm == 3 || p.arm == 7,
                    class: None,
                })
                .collect()
        }
    }
    drive(&mut planner, &mut BrakeOracle);
    let trajectory = planner.trajectory();

    assert_eq!(trajectory.arms.len(), 8);
    assert_eq!(trajectory.batches.len(), 3);
    assert_eq!(trajectory.report.spent, 12);

    // The pinned pull sequence for this seed. Recomputing it: the first
    // batch is prior-uniform (pure RNG), later batches steer toward the
    // failing arms.
    let pulled: Vec<usize> = trajectory
        .batches
        .iter()
        .flat_map(|b| b.pulls.iter().map(|p| p.arm))
        .collect();
    let expected = vec![7, 2, 3, 2, 6, 6, 7, 3, 5, 0, 5, 5];
    assert_eq!(
        pulled, expected,
        "pinned seed-2018 trajectory changed — RNG stream or fold order broke"
    );
    // And the search must have locked onto a failing arm.
    let top = &trajectory.report.top_arms[0];
    assert!(top.arm == 3 || top.arm == 7);
    assert!(top.failures > 0);
}
