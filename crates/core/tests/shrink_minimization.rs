//! End-to-end shrink tests: worker-count invariance of the whole shrink
//! trajectory, minimized repros that still fail in the same triage class
//! and replay bit-identically, and a lattice-floor property — a failure
//! that needs N actors is never shrunk below them.

use avfi_core::campaign::{run_single_traced, AgentSpec, TraceSpec};
use avfi_core::engine::Engine;
use avfi_core::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
use avfi_core::fault::FaultSpec;
use avfi_core::replay::{replay_trace, ReplayVerdict};
use avfi_core::shrink::{
    shrink_trace, shrink_with_oracle, Anchor, Candidate, CandidateEval, ShrinkConfig, ShrinkOracle,
    ShrinkVerdict,
};
use avfi_core::triage::{failure_class, FailureClass};
use avfi_sim::recorder::Recorder;
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_sim::weather::Weather;
use avfi_trace::{RunTrace, TraceLevel};
use proptest::prelude::*;

/// A deliberately over-provisioned scenario: every axis has headroom, so
/// the shrinker has real work to do.
fn fat_scenario(seed: u64) -> Scenario {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .weather(Weather::Overcast)
        .time_budget(20.0)
        .min_route_length(60.0)
        .build()
}

/// Stuck brake ⇒ the ego never moves and the run times out, in any
/// reduction that keeps the fault active from the start.
fn stuck_brake() -> FaultSpec {
    FaultSpec::Hardware(HardwareFault::always(
        HardwareTarget::ControlBrake,
        BitFaultModel::StuckAt { value: 1.0 },
    ))
}

/// Records one guaranteed-failing run exactly the way a blackbox
/// campaign would (no disk round-trip needed).
fn failing_trace() -> RunTrace {
    let spec = TraceSpec {
        level: TraceLevel::Blackbox,
        study: "shrink-it".to_string(),
        blackbox_frames: 60,
        weights_fingerprint: None,
    };
    let mut recorder = Recorder::ring(60);
    let (_, trace) = run_single_traced(
        &fat_scenario(71),
        1,
        2,
        &stuck_brake(),
        &AgentSpec::Expert,
        &spec,
        &mut recorder,
    );
    trace.expect("a stuck brake must fail the mission")
}

fn quick_config() -> ShrinkConfig {
    ShrinkConfig {
        max_iterations: 12,
        ..ShrinkConfig::default()
    }
}

#[test]
fn shrink_outcome_is_byte_identical_for_any_worker_count() {
    let trace = failing_trace();
    let config = quick_config();
    let o1 = shrink_trace(
        &Engine::new().workers(1),
        "run-000007.avtr",
        &trace,
        None,
        &config,
    )
    .expect("shrinkable");
    let o8 = shrink_trace(
        &Engine::new().workers(8),
        "run-000007.avtr",
        &trace,
        None,
        &config,
    )
    .expect("shrinkable");
    assert_eq!(
        serde_json::to_string_pretty(&o1).unwrap(),
        serde_json::to_string_pretty(&o8).unwrap(),
        "the whole shrink trajectory must be worker-count invariant"
    );
}

#[test]
fn minimized_repro_reproduces_the_class_and_replays_bit_identically() {
    let trace = failing_trace();
    let original = trace.header.scenario.clone();
    let outcome = shrink_trace(
        &Engine::new().workers(4),
        "run-000007.avtr",
        &trace,
        None,
        &quick_config(),
    )
    .expect("shrinkable");
    let repro = &outcome.repro;

    assert!(
        !repro.reductions.is_empty(),
        "an over-provisioned scenario must shrink on at least one axis"
    );
    assert!(
        repro.scenario.time_budget < original.time_budget
            || repro.scenario.min_route_length < original.min_route_length
            || repro.scenario.npc_vehicles < original.npc_vehicles
            || repro.fault != stuck_brake(),
        "the minimum must be strictly smaller on some lattice axis"
    );
    assert_eq!(repro.seed, trace.header.seed, "the seed never shrinks");
    // Every accepted step must be visible in the log too.
    assert_eq!(
        outcome
            .log
            .iter()
            .filter(|s| s.verdict == ShrinkVerdict::Accepted)
            .count(),
        repro.reductions.len()
    );

    // Re-execute the repro standalone: same class, bit-identical replay.
    let spec = TraceSpec {
        level: TraceLevel::Blackbox,
        study: repro.study.clone(),
        blackbox_frames: trace.header.blackbox_frames,
        weights_fingerprint: None,
    };
    let mut recorder = Recorder::ring(trace.header.blackbox_frames);
    let (_, rerun) = run_single_traced(
        &repro.scenario,
        repro.scenario_index,
        repro.run_index,
        &repro.fault,
        &AgentSpec::Expert,
        &spec,
        &mut recorder,
    );
    let rerun = rerun.expect("the minimized repro must still fail");
    assert_eq!(
        failure_class(&rerun).as_ref(),
        Some(&repro.expected),
        "the minimized run must land in the recorded failure class"
    );
    assert!(
        matches!(
            replay_trace(&rerun, None).expect("replayable"),
            ReplayVerdict::Match { .. }
        ),
        "the minimized repro must replay bit-identically"
    );
}

/// Synthetic oracle: the failure needs at least `required` NPC vehicles
/// (think: a collision that takes two cars to stage).
struct NpcThresholdOracle {
    required: usize,
    class: FailureClass,
}

impl ShrinkOracle for NpcThresholdOracle {
    fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<CandidateEval> {
        candidates
            .iter()
            .map(|c| CandidateEval {
                class: (c.scenario.npc_vehicles >= self.required).then(|| self.class.clone()),
                anchor: None,
            })
            .collect()
    }

    fn verify(&mut self, _index: usize, _candidate: &Candidate) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over the whole lattice: a failure requiring `required` NPCs is
    /// never shrunk below them, and always shrunk exactly to them.
    #[test]
    fn shrink_never_drops_a_required_npc(extra in 0usize..12, required in 2usize..8) {
        let start = required + extra;
        let class = FailureClass {
            outcome: "timeout".to_string(),
            first_violation: Some("collision-vehicle".to_string()),
            causal_channel: Some("image".to_string()),
        };
        let mut oracle = NpcThresholdOracle { required, class: class.clone() };
        let scenario = fat_scenario(5).to_builder().npc_vehicles(start).build();
        let result = shrink_with_oracle(
            &scenario,
            &FaultSpec::None,
            &class,
            Anchor { violation_frame: Some(120), final_frame: 300 },
            &mut oracle,
            &ShrinkConfig::default(),
        );
        for step in result
            .log
            .iter()
            .filter(|s| s.verdict == ShrinkVerdict::Accepted && s.axis == "npc-vehicles")
        {
            // "npc_vehicles {old} → {new}": every accepted step must
            // stay at or above the threshold.
            let target: usize = step
                .candidate
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("npc step description ends with the new count");
            prop_assert!(target >= required, "accepted npc step below threshold");
        }
        // The lattice must bottom out exactly at the required count.
        prop_assert_eq!(result.scenario.npc_vehicles, required);
    }
}
