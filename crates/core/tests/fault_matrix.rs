//! Smoke matrix: every fault class × every trigger kind runs a short
//! mission end-to-end without panics, records sane run results, and
//! reports injection times consistent with its trigger.

use avfi_core::campaign::{run_single, AgentSpec};
use avfi_core::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
use avfi_core::fault::input::{GpsFault, ImageFault, InputFault, LidarFault, SpeedFault};
use avfi_core::fault::ml::MlFault;
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::localizer::ParamSelector;
use avfi_core::trigger::Trigger;
use avfi_sim::scenario::{Scenario, TownSpec};

fn scenario() -> Scenario {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    Scenario::builder(town)
        .seed(404)
        .npc_vehicles(1)
        .pedestrians(1)
        .time_budget(15.0)
        .min_route_length(60.0)
        .build()
}

fn all_triggers() -> Vec<Trigger> {
    vec![
        Trigger::Always,
        Trigger::From { frame: 30 },
        Trigger::Window { start: 15, end: 60 },
        Trigger::Bernoulli { p: 0.2 },
    ]
}

#[test]
fn input_faults_with_every_trigger() {
    for model in ImageFault::paper_suite() {
        for trigger in all_triggers() {
            let spec = FaultSpec::Input(InputFault {
                trigger,
                ..InputFault::always(model)
            });
            let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
            assert!(r.duration > 0.0, "{spec:?}");
            assert!(r.distance_km.is_finite());
            if let Some(t) = r.injection_time {
                assert!(t >= 0.0 && t <= r.duration + 1e-9, "{spec:?}: t={t}");
            }
        }
    }
}

#[test]
fn composite_input_fault_all_sensors() {
    let spec = FaultSpec::Input(
        InputFault::always(ImageFault::gaussian(0.1))
            .with_gps(GpsFault {
                bias_x: 10.0,
                bias_y: -5.0,
                sigma: 2.0,
            })
            .with_speed(SpeedFault::Scale(0.5))
            .with_lidar(LidarFault::Ghost {
                count: 4,
                range: 2.0,
            }),
    );
    let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
    assert_eq!(r.injection_time, Some(0.0));
    assert!(r.duration > 1.0);
}

#[test]
fn hardware_faults_every_target() {
    for target in HardwareTarget::ALL {
        for model in [
            BitFaultModel::SingleBitFlip { bit: 63 },
            BitFaultModel::MultiBitFlip { bits: vec![50, 60] },
            BitFaultModel::StuckAt { value: 0.25 },
        ] {
            let spec = FaultSpec::Hardware(HardwareFault {
                target,
                model: model.clone(),
                trigger: Trigger::Bernoulli { p: 0.3 },
            });
            let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
            assert!(r.distance_km.is_finite(), "{target:?} {model:?}");
            assert!(r.violations.iter().all(|v| v.time <= r.duration + 1e-9));
        }
    }
}

#[test]
fn timing_faults_all_variants() {
    // A 7-frame pipe delivers stale coast commands from frame 0 while the
    // expert asks for throttle, so injection is recorded immediately.
    let spec = FaultSpec::Timing(TimingFault::OutputDelay { frames: 7 });
    let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
    assert_eq!(r.injection_time, Some(0.0), "{spec:?}");
    assert!(r.duration > 1.0);

    // Probabilistic/windowed channels mark injection the first time the
    // delivered command actually differs from the requested one — some
    // time within the run, not necessarily frame 0.
    for fault in [
        TimingFault::DropFrames { p: 0.4 },
        TimingFault::Reorder { window: 5 },
    ] {
        let spec = FaultSpec::Timing(fault);
        let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
        let t = r.injection_time.expect("channel perturbed the stream");
        assert!(t >= 0.0 && t <= r.duration + 1e-9, "{spec:?}: t={t}");
        assert!(r.duration > 1.0);
    }
}

#[test]
fn transparent_timing_fault_reports_no_injection() {
    // A zero-frame output delay never alters any command (see
    // `zero_delay_is_transparent`), so it must not claim an injection time
    // — phantom injections would pollute time-to-violation statistics.
    let spec = FaultSpec::Timing(TimingFault::OutputDelay { frames: 0 });
    let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
    assert_eq!(r.injection_time, None, "{spec:?}");
    assert!(r.duration > 1.0);
}

#[test]
fn ml_faults_all_variants_on_neural_agent() {
    let mut net = avfi_agent::IlNetwork::new(77);
    let agent = AgentSpec::neural(&mut net);
    for fault in [
        MlFault::WeightNoise {
            sigma: 0.1,
            fraction: 0.5,
            selector: ParamSelector::Prefix("trunk.".into()),
        },
        MlFault::WeightBitFlip {
            flips: 3,
            selector: ParamSelector::WeightsOnly,
        },
        MlFault::NeuronStuckAt {
            layer: 3,
            unit: 7,
            value: 10.0,
        },
    ] {
        let spec = FaultSpec::Ml(fault);
        let r = run_single(&scenario(), 0, 0, &spec, &agent);
        assert_eq!(r.injection_time, Some(0.0), "{spec:?}");
        assert_eq!(r.agent, "il-cnn");
    }
}

#[test]
fn run_results_serialize_to_json() {
    let spec = FaultSpec::Input(InputFault::always(ImageFault::salt_pepper(0.05)));
    let r = run_single(&scenario(), 0, 0, &spec, &AgentSpec::Expert);
    let json = serde_json::to_string(&r).expect("serializable");
    let back: avfi_core::campaign::RunResult = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back.fault, r.fault);
    assert_eq!(back.violations.len(), r.violations.len());
}
