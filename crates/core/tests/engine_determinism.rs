//! The engine's scheduling must never leak into results: the same seeded
//! multi-study plan must serialize to byte-identical JSON whether it runs
//! on one worker or eight. Seeds are derived from (campaign seed,
//! scenario index, run index), and results are reassembled into flat-plan
//! order, so worker count and steal order are unobservable.

use avfi_agent::IlNetwork;
use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::engine::TraceConfig;
use avfi_core::fault::input::{GpsFault, ImageFault, InputFault};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::{Engine, WorkPlan};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::TraceLevel;
use std::path::PathBuf;

fn scenarios() -> Vec<Scenario> {
    (0..2u64)
        .map(|i| {
            let mut town = TownSpec::grid(2, 2);
            town.signalized = false;
            Scenario::builder(town)
                .seed(900 + i)
                .npc_vehicles(1)
                .pedestrians(1)
                .time_budget(10.0)
                .min_route_length(40.0)
                .build()
        })
        .collect()
}

fn campaign(fault: FaultSpec) -> CampaignConfig {
    CampaignConfig::builder(scenarios())
        .runs_per_scenario(2)
        .fault(fault)
        .agent(AgentSpec::Expert)
        .build()
}

fn plan() -> WorkPlan {
    WorkPlan::new()
        .with_study(
            "input-faults",
            vec![
                campaign(FaultSpec::None),
                campaign(FaultSpec::Input(InputFault::always(ImageFault::gaussian(
                    0.1,
                )))),
                campaign(FaultSpec::Input(InputFault::scalar_only().with_gps(
                    GpsFault {
                        bias_x: 4.0,
                        bias_y: -3.0,
                        sigma: 1.0,
                    },
                ))),
            ],
        )
        .with_study(
            "output-delay",
            vec![campaign(FaultSpec::Timing(TimingFault::OutputDelay {
                frames: 5,
            }))],
        )
}

#[test]
fn one_worker_and_eight_workers_serialize_identically() {
    let plan = plan();
    assert_eq!(plan.total_campaigns(), 4);
    assert_eq!(plan.total_runs(), 16);

    let serial = Engine::new().workers(1).execute(&plan);
    let stolen = Engine::new().workers(8).execute(&plan);

    let serial_json = serde_json::to_string(&serial).expect("serializable");
    let stolen_json = serde_json::to_string(&stolen).expect("serializable");
    assert_eq!(
        serial_json, stolen_json,
        "worker count must not affect results"
    );

    // Sanity: results are real, not identically empty.
    assert_eq!(serial.len(), 2);
    assert_eq!(serial[0].campaigns.len(), 3);
    assert!(serial.iter().flat_map(|s| &s.campaigns).all(|c| c
        .runs()
        .iter()
        .all(|r| r.duration > 0.0 && r.distance_km.is_finite())));
}

/// With the IL-CNN agent the camera image is load-bearing: every frame is
/// span-rendered, corrupted by the image fault, and consumed by the
/// network, whose outputs steer the ego. Any scheduling sensitivity in the
/// span renderer (per-thread scratch reuse, material-cursor state, fog
/// tables) — or any perturbation from the flight recorder — would change
/// trajectories and therefore the serialized results. This pins the image
/// path end to end: results are byte-identical across worker counts and
/// across trace levels (off / summary / blackbox).
#[test]
fn image_fault_campaign_is_invariant_under_workers_and_trace_level() {
    let agent = AgentSpec::neural(&mut IlNetwork::new(41));
    let image_scenarios: Vec<Scenario> = (0..2u64)
        .map(|i| {
            let mut town = TownSpec::grid(2, 2);
            town.signalized = false;
            Scenario::builder(town)
                .seed(310 + i)
                .npc_vehicles(1)
                .pedestrians(1)
                .time_budget(6.0)
                .min_route_length(40.0)
                .build()
        })
        .collect();
    let campaign = |fault: ImageFault| {
        CampaignConfig::builder(image_scenarios.clone())
            .runs_per_scenario(1)
            .fault(FaultSpec::Input(InputFault::always(fault)))
            .agent(agent.clone())
            .build()
    };
    let plan = WorkPlan::new().with_study(
        "image-faults",
        vec![
            campaign(ImageFault::gaussian(0.25)),
            campaign(ImageFault::salt_pepper(0.05)),
            campaign(ImageFault::solid_occlusion(0.4)),
        ],
    );

    let baseline = Engine::new().workers(1).execute(&plan);
    let baseline_json = serde_json::to_string(&baseline).expect("serializable");

    // Worker sweep, untraced.
    let stolen = Engine::new().workers(5).execute(&plan);
    assert_eq!(
        baseline_json,
        serde_json::to_string(&stolen).unwrap(),
        "worker count must not affect an image-fault campaign"
    );

    // Trace-level sweep on a work-stealing engine.
    for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Blackbox] {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("avfi-imgdet-{}-{level:?}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let traced = Engine::new()
            .workers(3)
            .with_trace(TraceConfig {
                dir: dir.clone(),
                level,
                blackbox_seconds: 3.0,
            })
            .execute(&plan);
        assert_eq!(
            baseline_json,
            serde_json::to_string(&traced).unwrap(),
            "trace level {level:?} must not affect an image-fault campaign"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Sanity: the CNN actually drove (nonzero durations, finite odometry).
    assert!(baseline.iter().flat_map(|s| &s.campaigns).all(|c| {
        c.runs()
            .iter()
            .all(|r| r.agent == "il-cnn" && r.duration > 0.0 && r.distance_km.is_finite())
    }));
}
