//! End-to-end flight-recorder tests: campaign tracing through the
//! engine, worker-count invariance of the emitted file set, bit-identical
//! replay, corruption detection, and bounded black-box memory.

use avfi_agent::IlNetwork;
use avfi_core::campaign::{AgentSpec, CampaignConfig};
use avfi_core::engine::{Engine, TraceConfig, WorkPlan};
use avfi_core::fault::hardware::{BitFaultModel, HardwareFault, HardwareTarget};
use avfi_core::fault::input::{ImageFault, InputFault};
use avfi_core::fault::timing::TimingFault;
use avfi_core::fault::FaultSpec;
use avfi_core::replay::{replay_trace, ReplayVerdict};
use avfi_sim::scenario::{Scenario, TownSpec};
use avfi_trace::{list_trace_files, read_trace_file, TraceLevel};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn quick_scenario(seed: u64) -> Scenario {
    let mut town = TownSpec::grid(2, 2);
    town.signalized = false;
    Scenario::builder(town)
        .seed(seed)
        .npc_vehicles(0)
        .pedestrians(0)
        .time_budget(20.0)
        .min_route_length(60.0)
        .build()
}

/// A plan mixing a guaranteed-failure campaign (stuck brake ⇒ the ego
/// never moves and the run times out), a perturbing timing fault, and a
/// clean baseline.
fn traced_plan() -> WorkPlan {
    let stuck_brake = FaultSpec::Hardware(HardwareFault::always(
        HardwareTarget::ControlBrake,
        BitFaultModel::StuckAt { value: 1.0 },
    ));
    let delay = FaultSpec::Timing(TimingFault::OutputDelay { frames: 30 });
    let campaign = |fault: FaultSpec| {
        CampaignConfig::builder(vec![quick_scenario(71), quick_scenario(72)])
            .runs_per_scenario(2)
            .fault(fault)
            .agent(AgentSpec::Expert)
            .build()
    };
    WorkPlan::new()
        .with_study("faulted", vec![campaign(stuck_brake), campaign(delay)])
        .with_study("baseline", vec![campaign(FaultSpec::None)])
}

fn temp_trace_dir(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avfi-trace-it-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn blackbox_config(dir: &Path) -> TraceConfig {
    // A 4 s window against 20 s runs: the ring must wrap (bounded
    // memory is actually exercised, not just configured).
    TraceConfig {
        dir: dir.to_path_buf(),
        level: TraceLevel::Blackbox,
        blackbox_seconds: 4.0,
    }
}

#[test]
fn trace_file_set_is_identical_for_any_worker_count() {
    let plan = traced_plan();
    let dir1 = temp_trace_dir("w1");
    let dir8 = temp_trace_dir("w8");
    let r1 = Engine::new()
        .workers(1)
        .with_trace(blackbox_config(&dir1))
        .execute(&plan);
    let r8 = Engine::new()
        .workers(8)
        .with_trace(blackbox_config(&dir8))
        .execute(&plan);
    assert_eq!(
        serde_json::to_string(&r1).unwrap(),
        serde_json::to_string(&r8).unwrap(),
        "tracing must not perturb results"
    );

    let f1 = list_trace_files(&dir1).unwrap();
    let f8 = list_trace_files(&dir8).unwrap();
    assert!(!f1.is_empty(), "stuck-brake campaign must emit traces");
    let names = |files: &[PathBuf]| -> Vec<String> {
        files
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect()
    };
    assert_eq!(names(&f1), names(&f8), "flat-index routing broke");
    for (a, b) in f1.iter().zip(&f8) {
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "trace {} differs between worker counts",
            a.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
}

#[test]
fn every_emitted_trace_replays_bit_identically() {
    let plan = traced_plan();
    let dir = temp_trace_dir("replay");
    Engine::new()
        .workers(4)
        .with_trace(blackbox_config(&dir))
        .execute(&plan);
    let files = list_trace_files(&dir).unwrap();
    assert!(!files.is_empty());
    for path in &files {
        let trace = read_trace_file(path).unwrap();
        assert!(trace.is_failure(), "blackbox emits only failed runs");
        let verdict = replay_trace(&trace, None).expect("replayable");
        match verdict {
            ReplayVerdict::Match { frames_checked, .. } => {
                assert_eq!(frames_checked, trace.frames.len());
            }
            ReplayVerdict::Diverged(d) => {
                panic!("{} diverged: {d}", path.display());
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_trace_is_detected_not_misreplayed() {
    let plan = traced_plan();
    let dir = temp_trace_dir("corrupt");
    Engine::new()
        .workers(2)
        .with_trace(blackbox_config(&dir))
        .execute(&plan);
    let files = list_trace_files(&dir).unwrap();
    let victim = &files[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(victim, &bytes).unwrap();
    let err = read_trace_file(victim).expect_err("corruption must not decode");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blackbox_window_bounds_frames_and_counts_drops() {
    let plan = traced_plan();
    let dir = temp_trace_dir("bounded");
    let cfg = blackbox_config(&dir);
    let cap = cfg.blackbox_frames();
    Engine::new().workers(1).with_trace(cfg).execute(&plan);
    let mut wrapped = 0usize;
    for path in list_trace_files(&dir).unwrap() {
        let trace = read_trace_file(&path).unwrap();
        assert!(
            trace.frames.len() <= cap,
            "{}: ring held {} frames, cap {cap}",
            path.display(),
            trace.frames.len()
        );
        assert_eq!(trace.header.blackbox_frames, cap);
        if trace.dropped_frames > 0 {
            wrapped += 1;
            // The retained window is the *tail*: last frame is the run's
            // final recorded frame and the window is contiguous.
            let frames = &trace.frames;
            assert_eq!(frames.len(), cap, "a wrapped ring must be full");
            for pair in frames.windows(2) {
                assert_eq!(pair[1].frame, pair[0].frame + 1);
            }
        }
    }
    assert!(
        wrapped > 0,
        "20 s runs against a 4 s window must wrap the ring"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summary_level_traces_every_run_without_frames() {
    let plan = traced_plan();
    let dir = temp_trace_dir("summary");
    Engine::new()
        .workers(3)
        .with_trace(TraceConfig {
            dir: dir.clone(),
            level: TraceLevel::Summary,
            blackbox_seconds: 4.0,
        })
        .execute(&plan);
    let files = list_trace_files(&dir).unwrap();
    assert_eq!(files.len(), plan.total_runs(), "summary traces every run");
    let mut failures = 0usize;
    for path in &files {
        let trace = read_trace_file(path).unwrap();
        assert!(trace.frames.is_empty(), "summary traces carry no frames");
        assert_eq!(trace.dropped_frames, 0);
        if trace.is_failure() {
            failures += 1;
        }
        // Summary traces replay too (events + outcome are still checked).
        assert!(replay_trace(&trace, None).unwrap().is_match());
    }
    assert!(failures > 0, "plan contains guaranteed failures");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Image-fault campaign through the flight recorder, end to end: the
/// IL-CNN consumes span-rendered, fault-corrupted camera frames, the
/// black box records the failures, and replay re-executes each run —
/// re-rendering every camera frame through the span path. The emitted
/// file set must be worker-count invariant byte for byte, and every
/// trace must replay bit-identically. A camera whose output depended on
/// thread, scratch-buffer history, or recorder state would fail here.
#[test]
fn image_fault_campaign_traces_are_worker_invariant_and_replay() {
    let mut net = IlNetwork::new(41);
    let weights = net.to_weights();
    let agent = AgentSpec::Neural {
        weights: Arc::new(weights.clone()),
    };
    let scenario = |seed: u64| {
        let mut town = TownSpec::grid(2, 2);
        town.signalized = false;
        Scenario::builder(town)
            .seed(seed)
            .npc_vehicles(1)
            .pedestrians(0)
            .time_budget(8.0)
            .min_route_length(40.0)
            .build()
    };
    let campaign = |fault: ImageFault| {
        CampaignConfig::builder(vec![scenario(81), scenario(82)])
            .runs_per_scenario(1)
            .fault(FaultSpec::Input(InputFault::always(fault)))
            .agent(agent.clone())
            .build()
    };
    let plan = WorkPlan::new().with_study(
        "image-faults",
        vec![
            campaign(ImageFault::gaussian(0.3)),
            campaign(ImageFault::solid_occlusion(0.5)),
        ],
    );

    let dir1 = temp_trace_dir("img-w1");
    let dir5 = temp_trace_dir("img-w5");
    let r1 = Engine::new()
        .workers(1)
        .with_trace(blackbox_config(&dir1))
        .execute(&plan);
    let r5 = Engine::new()
        .workers(5)
        .with_trace(blackbox_config(&dir5))
        .execute(&plan);
    assert_eq!(
        serde_json::to_string(&r1).unwrap(),
        serde_json::to_string(&r5).unwrap(),
        "worker count must not affect the image-fault campaign"
    );

    let f1 = list_trace_files(&dir1).unwrap();
    let f5 = list_trace_files(&dir5).unwrap();
    assert!(
        !f1.is_empty(),
        "an untrained CNN on corrupted images must miss its 40 m mission"
    );
    let name = |p: &PathBuf| p.file_name().unwrap().to_string_lossy().into_owned();
    assert_eq!(
        f1.iter().map(name).collect::<Vec<_>>(),
        f5.iter().map(name).collect::<Vec<_>>()
    );
    for (a, b) in f1.iter().zip(&f5) {
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "trace {} differs between worker counts",
            a.display()
        );
    }

    for path in &f1 {
        let trace = read_trace_file(path).unwrap();
        assert_eq!(trace.header.agent, "il-cnn");
        match replay_trace(&trace, Some(&weights)).expect("replayable") {
            ReplayVerdict::Match { frames_checked, .. } => {
                assert_eq!(frames_checked, trace.frames.len());
            }
            ReplayVerdict::Diverged(d) => panic!("{} diverged: {d}", path.display()),
        }
    }
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir5);
}

#[test]
fn triage_attributes_stuck_brake_failures() {
    let plan = traced_plan();
    let dir = temp_trace_dir("triage");
    Engine::new()
        .workers(2)
        .with_trace(blackbox_config(&dir))
        .execute(&plan);
    let report = avfi_core::triage::TriageReport::from_dir(&dir).unwrap();
    assert!(!report.campaigns.is_empty());
    let stuck = report
        .campaigns
        .iter()
        .find(|c| c.fault.contains("stuck"))
        .expect("stuck-brake campaign triaged");
    assert_eq!(stuck.failures, 4, "all stuck-brake runs fail");
    for entry in &stuck.entries {
        assert_eq!(entry.outcome, "timeout", "an immobile ego times out");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
