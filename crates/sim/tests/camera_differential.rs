//! Differential oracle for the span-based camera ground pass.
//!
//! The default renderer ([`Camera::render_into`]) classifies each image
//! row analytically and fills constant-material spans; the reference
//! renderer ([`Camera::render_into_reference`]) queries the map per pixel.
//! These tests drive thousands of randomized and adversarially chosen
//! (town, camera, weather, pose) combinations through both paths and
//! require bit-identical output — any divergence is a bug in the span
//! math's root finding, probe bracketing, or tie-breaking.

use avfi_sim::map::town::{TownConfig, TownGenerator};
use avfi_sim::map::Map;
use avfi_sim::math::{Pose, Vec2};
use avfi_sim::sensors::{Camera, CameraConfig, RenderScene};
use avfi_sim::weather::Weather;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Towns with distinct band geometry: defaults, unsignalized 3×3, and
/// non-default lane/sidewalk widths (moves every material threshold).
fn maps() -> &'static [Map] {
    static MAPS: OnceLock<Vec<Map>> = OnceLock::new();
    MAPS.get_or_init(|| {
        let mut unsignalized = TownConfig::grid(3, 3);
        unsignalized.signalized = false;
        let mut wide_roads = TownConfig::grid(2, 3);
        wide_roads.lane_width = 4.25;
        wide_roads.sidewalk = 2.75;
        vec![
            TownGenerator::new(TownConfig::grid(2, 2)).generate(),
            TownGenerator::new(unsignalized).generate(),
            TownGenerator::new(wide_roads).generate(),
        ]
    })
}

/// Camera variants: defaults, wide high-FOV, and a shallow pitch whose
/// bottom rows graze the far clip (long span lines, haze boundaries).
fn cameras() -> &'static [Camera] {
    static CAMS: OnceLock<Vec<Camera>> = OnceLock::new();
    CAMS.get_or_init(|| {
        vec![
            Camera::new(CameraConfig::default()),
            Camera::new(CameraConfig {
                width: 96,
                height: 64,
                fov_deg: 120.0,
                ..CameraConfig::default()
            }),
            Camera::new(CameraConfig {
                pitch_deg: 2.0,
                ..CameraConfig::default()
            }),
        ]
    })
}

/// First differing pixel between the two renders, if any.
fn first_diff(map: &Map, cam: &Camera, weather: Weather, pose: Pose) -> Option<String> {
    let scene = RenderScene {
        map,
        weather,
        billboards: &[],
    };
    let span = cam.render(&scene, pose);
    let reference = cam.render_reference(&scene, pose);
    let w = span.width();
    span.data()
        .chunks_exact(3)
        .zip(reference.data().chunks_exact(3))
        .position(|(a, b)| a != b)
        .map(|i| {
            format!(
                "pixel ({}, {}): span {:?} != reference {:?} at pose {:?}",
                i % w,
                i / w,
                &span.data()[i * 3..i * 3 + 3],
                &reference.data()[i * 3..i * 3 + 3],
                pose,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1200))]

    /// Fully random poses (including far off the map), all towns, all
    /// camera variants, all weathers.
    #[test]
    fn span_matches_reference_for_random_poses(
        map_i in 0usize..3,
        cam_i in 0usize..3,
        weather_i in 0usize..5,
        x in -60.0f64..260.0,
        y in -60.0f64..260.0,
        heading in -3.2f64..3.2,
    ) {
        let map = &maps()[map_i];
        let cam = &cameras()[cam_i];
        let weather = Weather::ALL[weather_i];
        let pose = Pose::new(Vec2::new(x, y), heading);
        let diff = first_diff(map, cam, weather, pose);
        prop_assert!(diff.is_none(), "{}", diff.unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// Adversarial lateral offsets: the ego sits exactly on (or a hair
    /// away from) a material band threshold of a real road axis, with the
    /// heading aligned with the axis (near-degenerate quadratics: the
    /// row line runs almost parallel to the band boundaries).
    #[test]
    fn span_matches_reference_at_band_boundaries(
        map_i in 0usize..3,
        axis_pick in 0usize..64,
        t in 0.0f64..1.0,
        offset_i in 0usize..5,
        jitter_i in 0usize..5,
        heading_i in 0usize..4,
        weather_i in 0usize..5,
    ) {
        let map = &maps()[map_i];
        let axes = map.road_axes();
        let axis = &axes[axis_pick % axes.len()];
        let half_road = axis.half_road;
        let walk = half_road + axis.sidewalk;
        // Exact band thresholds of the material classifier.
        let offset = [0.0, 0.15, half_road - 0.3, half_road, walk][offset_i];
        let jitter = [0.0, 1e-9, -1e-9, 1e-6, -1e-6][jitter_i];
        let along = axis.axis.point_at(t);
        let dir = axis.axis.direction();
        let normal = Vec2::new(-dir.y, dir.x);
        let pos = along + normal * (offset + jitter);
        let axis_heading = dir.y.atan2(dir.x);
        let heading = [
            axis_heading,
            axis_heading + std::f64::consts::FRAC_PI_2,
            axis_heading + 1e-7,
            axis_heading + 0.3,
        ][heading_i];
        let diff = first_diff(map, &cameras()[0], Weather::ALL[weather_i], Pose::new(pos, heading));
        prop_assert!(diff.is_none(), "{}", diff.unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Horizon-row adversary: random shallow pitches put rows right at the
    /// sky/ground and ground/far-clip transitions, where per-row ground
    /// runs are empty or clipped.
    #[test]
    fn span_matches_reference_near_horizon(
        pitch in 0.0f64..4.0,
        fov in 40.0f64..150.0,
        x in -20.0f64..180.0,
        y in -20.0f64..180.0,
        heading in -3.2f64..3.2,
        weather_i in 0usize..5,
    ) {
        let cam = Camera::new(CameraConfig {
            pitch_deg: pitch,
            fov_deg: fov,
            ..CameraConfig::default()
        });
        let map = &maps()[0];
        let pose = Pose::new(Vec2::new(x, y), heading);
        let diff = first_diff(map, &cam, Weather::ALL[weather_i], pose);
        prop_assert!(diff.is_none(), "{}", diff.unwrap());
    }
}

/// Extreme pitches (horizontal camera through nearly straight-down): the
/// per-row metadata must stay consistent with the ray table at both ends.
#[test]
fn extreme_pitches_match() {
    let map = &maps()[0];
    for pitch in [0.0, 0.05, 1.0, 10.0, 45.0, 80.0] {
        let cam = Camera::new(CameraConfig {
            pitch_deg: pitch,
            ..CameraConfig::default()
        });
        for (x, y, h) in [(40.0, 6.0, 0.0), (80.0, 80.0, 2.2), (-30.0, -30.0, -1.0)] {
            let diff = first_diff(map, &cam, Weather::ClearNoon, Pose::new(Vec2::new(x, y), h));
            assert!(diff.is_none(), "pitch {pitch}: {}", diff.unwrap());
        }
    }
}

/// Headings exactly aligned with the world axes make the row line exactly
/// parallel to half the band boundaries (zero leading quadratic
/// coefficient) and exactly perpendicular to the rest.
#[test]
fn axis_aligned_headings_match() {
    use std::f64::consts::{FRAC_PI_2, PI};
    let cam = &cameras()[0];
    for map in maps() {
        for heading in [0.0, FRAC_PI_2, PI, -FRAC_PI_2, PI / 4.0] {
            for (x, y) in [(40.0, 3.5), (40.0, 0.0), (42.0, 40.0), (6.0, 40.0)] {
                for weather in [Weather::ClearNoon, Weather::Fog] {
                    let diff = first_diff(map, cam, weather, Pose::new(Vec2::new(x, y), heading));
                    assert!(diff.is_none(), "heading {heading}: {}", diff.unwrap());
                }
            }
        }
    }
}

/// Minimized regression for the cursor-cache fix that unblocked the span
/// renderer: `MaterialCursor` used to cache the resolved cell's *world
/// bounds* and re-resolve only when the query left them, so classification
/// near a cell boundary could depend on the query history (a point
/// epsilon-inside a cached cell per the bounds compare could land in the
/// neighboring cell through fresh floor-resolution, and vice versa).
/// Cell resolution is now a pure function of the point; interleaving
/// queries from both sides of cell boundaries must match the stateless
/// path exactly.
#[test]
fn cursor_is_history_free_at_cell_boundaries() {
    let map = &maps()[0];
    let b = *map.bounds();
    let mut cursor = map.material_cursor();
    // Walk cell-boundary multiples (the material grid uses 16 m cells
    // anchored at the map bounds origin) and probe each side in an order
    // designed to keep stale cached cells "covering" the query point.
    let mut k = 0.0;
    while b.min.x + k <= b.max.x {
        let bx = b.min.x + k;
        for dy in [0.0, 7.9, 16.0, 24.1] {
            let y = b.min.y + dy;
            for dx in [16.0, -1e-9, 0.0, 1e-9, -16.0, f64::EPSILON * bx.abs()] {
                let p = Vec2::new(bx + dx, y);
                assert_eq!(
                    cursor.material_at(p),
                    map.material_at(p),
                    "cursor/history divergence at {p:?}"
                );
            }
        }
        k += 16.0;
    }
}
